//! The paper's headline claims, as one assertion each — a reading guide
//! to the reproduction.

use twostep::core::{ObjectConsensus, TaskConsensus};
use twostep::sim::SyncRunner;
use twostep::types::{ProcessId, ProcessSet, ProtocolKind, SystemConfig, Time};
use twostep::verify::{object_below_bound, task_below_bound};

/// §1: "at least max{2e+f+1, 2f+1} processes are required ... matched by
/// the classical Fast Paxos protocol" — the comparison baseline.
#[test]
fn claim_lamports_bound_formula() {
    assert_eq!(ProtocolKind::FastPaxos.min_processes(2, 2), 7);
    assert_eq!(ProtocolKind::FastPaxos.min_processes(1, 3), 7); // 2f+1 binds
}

/// §1: "Egalitarian Paxos decides within two message delays under
/// e = ⌈(f+1)/2⌉ failures while using only 2f+1 = 2e+f-1 processes."
#[test]
fn claim_epaxos_identity() {
    for f in [2usize, 4] {
        // The identity 2f+1 = 2e+f-1 holds exactly when 2e = f+2.
        let e = (f + 2) / 2;
        assert_eq!(2 * f + 1, 2 * e + f - 1);
        assert_eq!(ProtocolKind::ObjectTwoStep.min_processes(e, f), 2 * f + 1);
    }
}

/// Theorem 5: a task protocol exists at n = max{2e+f, 2f+1} …
#[test]
fn claim_theorem5_if() {
    let cfg = SystemConfig::minimal_task(2, 2).unwrap();
    assert_eq!(cfg.n(), 6);
    let crashed: ProcessSet = [0u32, 1].into_iter().map(ProcessId::new).collect();
    let witness = ProcessId::new(5);
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .favoring(witness)
        .run(|p| TaskConsensus::new(cfg, p, u64::from(p.as_u32())));
    assert!(outcome.fast_deciders().0.contains(witness));
    assert!(outcome.agreement());
}

/// … and none exists below it (mechanized §B.1 splice).
#[test]
fn claim_theorem5_only_if() {
    let report = task_below_bound(2, 2); // n = 5 = 2e+f-1
    assert!(report.agreement_violated, "{}", report.narrative);
}

/// Theorem 6: an object protocol exists at n = max{2e+f-1, 2f+1} …
#[test]
fn claim_theorem6_if() {
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    assert_eq!(cfg.n(), 5); // one fewer than the task bound
    let crashed: ProcessSet = [0u32, 1].into_iter().map(ProcessId::new).collect();
    let proposer = ProcessId::new(4);
    let outcome = SyncRunner::new(cfg).crashed(crashed).run_object(
        |p| ObjectConsensus::<u64>::new(cfg, p),
        vec![(proposer, 9, Time::ZERO)],
    );
    assert!(outcome.fast_deciders().0.contains(proposer));
    assert!(outcome.agreement());
}

/// … and none exists below it (mechanized §B.2 splice).
#[test]
fn claim_theorem6_only_if() {
    let report = object_below_bound(3, 3); // n = 7 = 2e+f-2
    assert!(report.agreement_violated, "{}", report.narrative);
}

/// §2: "Paxos is not e-two-step for any e > 0" — with the leader in E,
/// nobody decides by 2Δ.
#[test]
fn claim_paxos_not_two_step() {
    use twostep::baselines::Paxos;
    let cfg = SystemConfig::new(5, 1, 2).unwrap();
    let crashed: ProcessSet = [ProcessId::new(0)].into_iter().collect();
    let outcome = SyncRunner::new(cfg)
        .crashed(crashed)
        .horizon(twostep::types::Duration::deltas(60))
        .run(|p| Paxos::new(cfg, p, u64::from(p.as_u32())));
    assert!(outcome.fast_deciders().0.is_empty());
    assert!(
        outcome.all_correct_decided(),
        "but f-resilience still holds"
    );
}

/// The bound hierarchy of the abstract: object ≤ task ≤ Fast Paxos,
/// separated by exactly one process each when the two-step term binds.
#[test]
fn claim_bound_hierarchy() {
    for f in 1..=6usize {
        for e in 1..=f {
            let o = ProtocolKind::ObjectTwoStep.min_processes(e, f);
            let t = ProtocolKind::TaskTwoStep.min_processes(e, f);
            let fp = ProtocolKind::FastPaxos.min_processes(e, f);
            assert!(o <= t && t <= fp);
            if 2 * e + f > 2 * f + 1 {
                assert_eq!((t - o, fp - t), (1, 1), "e={e} f={f}");
            }
        }
    }
}
