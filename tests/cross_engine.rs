//! Cross-engine consistency: the same protocol code must behave
//! identically whether driven by the deterministic simulator, the
//! manual step executor, or real threads — that is the architectural
//! bet of this repository.

use std::time::Duration as WallDuration;

use twostep::core::{Msg, ObjectConsensus, OmegaMode, TaskConsensus, TwoStepBuilder};
use twostep::runtime::Cluster;
use twostep::sim::{ManualExecutor, SyncRunner};
use twostep::types::protocol::Protocol;
use twostep::types::{ProcessId, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// The same favored fast path, in the simulator and replayed manually,
/// reaches the same decision with the same vote structure.
#[test]
fn simulator_and_manual_agree_on_the_fast_path() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let witness = p(2);

    // Simulator.
    let sim_outcome = SyncRunner::new(cfg)
        .favoring(witness)
        .run(|q| TaskConsensus::new(cfg, q, 10 * (u64::from(q.as_u32()) + 1)));
    assert_eq!(sim_outcome.decision_of(witness), Some(&30));
    assert_eq!(
        sim_outcome.decision_time_of(witness),
        Some(Time::ZERO + twostep::types::Duration::deltas(2))
    );

    // Manual replay of the same schedule.
    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(p(0)))
            .task(q, 10 * (u64::from(q.as_u32()) + 1))
    });
    ex.start_all();
    for target in [p(0), p(1)] {
        for id in ex.pending_matching(|m| {
            m.from == witness && m.to == target && matches!(m.msg, Msg::Propose(_))
        }) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| {
            m.from == target && m.to == witness && matches!(m.msg, Msg::TwoB(..))
        }) {
            ex.deliver(id);
        }
    }
    assert_eq!(ex.decision_of(witness), Some(&30));
    // White-box: same final vote state for the witness in both engines.
    let sim_proc = &sim_outcome.procs[witness.index()];
    assert_eq!(sim_proc.inner().decided_value(), Some(&30));
    assert_eq!(ex.process(witness).inner().decided_value(), Some(&30));
}

/// The threaded runtime reaches the same decision as the simulator on
/// the lone-proposer object scenario.
#[test]
fn simulator_and_threads_agree_on_object_consensus() {
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    let proposer = p(4);

    let sim_outcome = SyncRunner::new(cfg).run_object(
        |q| ObjectConsensus::<u64>::new(cfg, q),
        vec![(proposer, 42, Time::ZERO)],
    );
    assert_eq!(sim_outcome.decision_of(proposer), Some(&42));

    let cluster: Cluster<u64> = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| {
        ObjectConsensus::new(cfg, q)
    });
    cluster.propose(proposer, 42);
    assert_eq!(
        cluster.await_decision(proposer, WallDuration::from_secs(5)),
        Some(42)
    );
    assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(5)));
    assert!(cluster.agreement());
}

/// TCP and in-memory transports produce identical decisions for the
/// same scenario.
#[test]
fn transports_agree() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    for tcp in [false, true] {
        let cluster: Cluster<u64> = if tcp {
            Cluster::tcp(cfg, WallDuration::from_millis(10), |q| {
                ObjectConsensus::new(cfg, q)
            })
            .expect("tcp cluster")
        } else {
            Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| {
                ObjectConsensus::new(cfg, q)
            })
        };
        cluster.propose(p(1), 77);
        assert_eq!(
            cluster.await_decision(p(1), WallDuration::from_secs(10)),
            Some(77),
            "tcp={tcp}"
        );
        assert!(cluster.agreement(), "tcp={tcp}");
    }
}

/// Crash-under-load over threads: the object protocol keeps its
/// guarantees with e processes crashed at startup.
#[test]
fn threaded_cluster_with_crashes_decides() {
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    let mut cluster: Cluster<u64> = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| {
        ObjectConsensus::new(cfg, q)
    });
    cluster.crash(p(0));
    cluster.crash(p(1));
    cluster.propose(p(4), 9);
    for i in 2..5u32 {
        assert_eq!(
            cluster.await_decision(p(i), WallDuration::from_secs(10)),
            Some(9),
            "p{i}"
        );
    }
    assert!(cluster.agreement());
}

/// Replays the synchronous-round schedule on a [`ManualExecutor`]:
/// round `k` delivers exactly the messages pending at its start (new
/// sends wait for round `k+1`), with `victim` crashing right before its
/// crash round's deliveries — the manual mirror of
/// `SimulationBuilder::crash_at` just below a round boundary.
fn drain_rounds<V: twostep::types::Value, P: Protocol<V>>(
    ex: &mut ManualExecutor<V, P>,
    crash: Option<(usize, ProcessId)>,
    max_rounds: usize,
) {
    for round in 0..max_rounds {
        if let Some((crash_round, victim)) = crash {
            if round == crash_round {
                ex.crash(victim);
            }
        }
        let pending = ex.pending_matching(|_| true);
        if pending.is_empty() {
            break;
        }
        for id in pending {
            ex.deliver(id);
        }
    }
}

/// The first decision of every process, as the simulator's trace
/// records it — the comparison key for cross-engine equivalence.
fn decision_table<P: Protocol<u64>>(
    outcome: &twostep::sim::RunOutcome<u64, P>,
) -> Vec<Option<u64>> {
    (0..outcome.cfg.n() as u32)
        .map(|i| outcome.trace.first_decision(p(i)).map(|(v, _)| v))
        .collect()
}

/// The object variant under a *seeded* schedule — proposer, crash
/// victim and crash round all derived from the seed — produces the same
/// decision trace whether the synchronous-round simulator or the manual
/// executor drives it. A failing seed is replayable alone via
/// TWOSTEP_SEED=<seed>.
#[test]
fn seeded_object_schedules_match_across_engines() {
    use twostep::sim::SimulationBuilder;
    use twostep::types::{Duration, DELTA};

    for seed in twostep::sim::test_seeds(0..8) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let n = cfg.n() as u64;
        let proposer = p((seed % n) as u32);
        let victim = p(((seed + 2) % n) as u32);
        let crash_round = 1 + (seed % 3) as usize;
        let value = 100 + seed;
        // Manual drain round k delivers what the simulator delivers at
        // (k+1)Δ — the proposal broadcast lands at Δ. Crash one unit
        // below that boundary so the victim still processes the
        // previous round's deliveries but none of this round's;
        // `drain_rounds` crashes at the same point.
        let crash_time = Time::from_units((crash_round as u64 + 1) * DELTA.units() - 1);

        let mut sim = SimulationBuilder::new(cfg)
            .crash_at(victim, crash_time)
            .build(|q| ObjectConsensus::<u64>::new(cfg, q));
        sim.schedule_propose(proposer, value, Time::ZERO);
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(60));
        assert!(
            outcome.agreement(),
            "seed {seed}: simulator violated agreement"
        );

        let mut ex = ManualExecutor::new(cfg, |q| ObjectConsensus::<u64>::new(cfg, q));
        ex.start_all();
        ex.propose(proposer, value);
        drain_rounds(&mut ex, Some((crash_round, victim)), 20);
        assert!(ex.agreement(), "seed {seed}: manual run violated agreement");

        let manual: Vec<Option<u64>> = ex.decisions().iter().map(|d| d.as_ref().copied()).collect();
        assert_eq!(
            decision_table(&outcome),
            manual,
            "seed {seed}: engines diverged (proposer {proposer}, victim {victim} \
             crashing before round {crash_round})"
        );
    }
}

/// The Paxos baseline under the same seeded schedule shape also matches
/// across engines: a seeded non-coordinator crashes at the start
/// (Definition 2 style) and every survivor must converge on the
/// coordinator's value in both engines.
#[test]
fn seeded_paxos_schedules_match_across_engines() {
    use twostep::baselines::Paxos;
    use twostep::types::ProcessSet;

    for seed in twostep::sim::test_seeds(0..8) {
        let cfg = SystemConfig::minimal_task(2, 2).unwrap();
        let n = cfg.n() as u64;
        // p0 is Paxos's ballot-0 coordinator; crash anyone else.
        let victim = p((1 + seed % (n - 1)) as u32);
        let values: Vec<u64> = (0..n).map(|i| 10 * (i + 1) + seed % 7).collect();

        let crashed: ProcessSet = [victim].into_iter().collect();
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .run(|q| Paxos::new(cfg, q, values[q.index()]));
        assert!(outcome.agreement(), "seed {seed}");

        let mut ex = ManualExecutor::new(cfg, |q| Paxos::new(cfg, q, values[q.index()]));
        ex.crash(victim);
        ex.start_all();
        drain_rounds(&mut ex, None, 20);
        assert!(ex.agreement(), "seed {seed}");

        let manual: Vec<Option<u64>> = ex.decisions().iter().map(|d| d.as_ref().copied()).collect();
        assert_eq!(
            decision_table(&outcome),
            manual,
            "seed {seed}: engines diverged (victim {victim})"
        );
        // Both engines must have decided the coordinator's value.
        assert_eq!(ex.decision_of(p(0)), Some(&values[0]), "seed {seed}");
    }
}

/// A batched SMR proposal decides identically in the simulator and on
/// the manual executor: same log (same batches in the same slots), same
/// applied command stream, same final KV state.
#[test]
fn batched_smr_agrees_across_engines() {
    use twostep::sim::SimulationBuilder;
    use twostep::smr::{KvCommand, KvStore, SmrReplicaBuilder};
    use twostep::types::Duration;

    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let batch = 4usize;
    let cmds: Vec<KvCommand> = (0..batch)
        .map(|i| KvCommand::put(format!("k{i}"), format!("v{i}")))
        .collect();
    let make = |q: ProcessId| {
        SmrReplicaBuilder::new(cfg, q)
            .batch(batch)
            .build::<KvCommand, KvStore>()
    };

    // Simulator: the burst fills one batch, which flushes immediately.
    let mut sim = SimulationBuilder::new(cfg).build(make);
    for c in &cmds {
        sim.schedule_propose(p(0), c.clone(), Time::ZERO);
    }
    let outcome = sim.run_until(Time::ZERO + Duration::deltas(60), |s| {
        (0..3).all(|i| s.process(p(i)).applied() >= batch as u64)
    });

    // Manual executor: same burst, rounds drained to quiescence.
    let mut ex = ManualExecutor::new(cfg, make);
    ex.start_all();
    for c in &cmds {
        ex.propose(p(0), c.clone());
    }
    drain_rounds(&mut ex, None, 20);

    for q in cfg.process_ids() {
        let sim_r = &outcome.procs[q.index()];
        let man_r = ex.process(q);
        assert_eq!(man_r.applied(), batch as u64, "{q}: applied commands");
        assert_eq!(sim_r.applied(), man_r.applied(), "{q}: applied diverged");
        assert_eq!(sim_r.log(), man_r.log(), "{q}: logs diverged");
        for (i, _) in cmds.iter().enumerate() {
            assert_eq!(
                sim_r.state().get(&format!("k{i}")),
                man_r.state().get(&format!("k{i}")),
                "{q}: state diverged at k{i}"
            );
        }
    }
}

/// Four independent consensus groups — one per shard, each with its
/// rotated leader, exactly as [`twostep::runtime::ShardedCluster`]
/// deploys them — driven by the manual executor under seeded
/// schedules. Two guarantees are pinned per seed: every group reaches
/// Agreement on its own log (survivor logs and applied streams are
/// identical, even with a seeded non-leader replica crashing
/// mid-schedule), and no command ever surfaces in a group other than
/// the one its key routes to.
#[test]
fn seeded_sharded_groups_agree_without_leakage() {
    use twostep::runtime::ShardRouter;
    use twostep::smr::{KvCommand, KvStore, SmrReplicaBuilder};

    const SHARDS: usize = 4;
    let router = ShardRouter::new(SHARDS);

    for seed in twostep::sim::test_seeds(0..6) {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let n = cfg.n();

        let mut groups: Vec<_> = (0..SHARDS as u32)
            .map(|s| {
                ManualExecutor::new(cfg, move |q| {
                    SmrReplicaBuilder::new(cfg, q)
                        .pipeline(16)
                        .leader_rotation(s)
                        .build::<KvCommand, KvStore>()
                })
            })
            .collect();
        for g in &mut groups {
            g.start_all();
        }

        // Seeded command population, partitioned by the real router:
        // each command is proposed only at its shard's group leader,
        // mirroring the sharded cluster's leader-routed client.
        let mut expected: Vec<Vec<(String, String)>> = vec![Vec::new(); SHARDS];
        for i in 0..12u64 {
            let key = format!("s{seed}-k{i}");
            let value = format!("v{}", seed * 100 + i);
            let shard = router.route(key.as_bytes()) as usize;
            let leader = p((shard % n) as u32);
            groups[shard].propose(leader, KvCommand::put(key.as_str(), value.as_str()));
            expected[shard].push((key, value));
        }

        // A seeded non-leader replica of one seeded group crashes mid-
        // schedule; with f = 1 the group keeps both its quorums, so the
        // schedule must still drain to a full commit.
        let crash_shard = (seed as usize) % SHARDS;
        let leader_ix = crash_shard % n;
        let victim = p(((leader_ix + 1 + seed as usize % (n - 1)) % n) as u32);
        let crash_round = 1 + (seed % 3) as usize;

        // (`ManualExecutor::agreement` is the single-decree check — all
        // decide events equal — which doesn't apply to a multi-slot
        // log; SMR Agreement is per-slot log equality, asserted below.)
        for (s, g) in groups.iter_mut().enumerate() {
            let crash = (s == crash_shard).then_some((crash_round, victim));
            drain_rounds(g, crash, 40);
        }

        for (s, g) in groups.iter().enumerate() {
            let survivors: Vec<ProcessId> = cfg
                .process_ids()
                .filter(|&q| !(s == crash_shard && q == victim))
                .collect();
            let reference = g.process(survivors[0]);
            assert_eq!(
                reference.applied(),
                expected[s].len() as u64,
                "seed {seed}: shard {s} applied the wrong number of commands"
            );
            for &q in &survivors[1..] {
                let replica = g.process(q);
                assert_eq!(
                    reference.log(),
                    replica.log(),
                    "seed {seed}: shard {s} logs diverged at {q}"
                );
                assert_eq!(
                    reference.applied(),
                    replica.applied(),
                    "seed {seed}: shard {s} applied stream diverged at {q}"
                );
            }
            // No leakage: a shard's state holds exactly the keys the
            // router sends it; every other shard's keys are absent.
            for (t, cmds) in expected.iter().enumerate() {
                for (key, value) in cmds {
                    let got = reference.state().get(key);
                    if t == s {
                        assert_eq!(
                            got,
                            Some(value.as_str()),
                            "seed {seed}: shard {s} lost its own key {key}"
                        );
                    } else {
                        assert!(
                            got.is_none(),
                            "seed {seed}: key {key} of shard {t} leaked into shard {s}"
                        );
                    }
                }
            }
        }
    }
}

/// The protocol state machine is engine-agnostic by construction: this
/// asserts the Protocol trait object view used by all engines exposes
/// the same decision.
#[test]
fn protocol_trait_surface_is_consistent() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let outcome = SyncRunner::new(cfg)
        .favoring(p(2))
        .run(|q| TaskConsensus::new(cfg, q, u64::from(q.as_u32())));
    for q in cfg.process_ids() {
        let via_trait = outcome.procs[q.index()].decision();
        let via_outcome = outcome.decision_of(q).copied();
        assert_eq!(via_trait, via_outcome, "{q}");
    }
}
