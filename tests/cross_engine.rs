//! Cross-engine consistency: the same protocol code must behave
//! identically whether driven by the deterministic simulator, the
//! manual step executor, or real threads — that is the architectural
//! bet of this repository.

use std::time::Duration as WallDuration;

use twostep::core::{Ablations, Msg, ObjectConsensus, OmegaMode, TaskConsensus};
use twostep::runtime::Cluster;
use twostep::sim::{ManualExecutor, SyncRunner};
use twostep::types::protocol::Protocol;
use twostep::types::{ProcessId, SystemConfig, Time};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// The same favored fast path, in the simulator and replayed manually,
/// reaches the same decision with the same vote structure.
#[test]
fn simulator_and_manual_agree_on_the_fast_path() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let witness = p(2);

    // Simulator.
    let sim_outcome = SyncRunner::new(cfg)
        .favoring(witness)
        .run(|q| TaskConsensus::new(cfg, q, 10 * (u64::from(q.as_u32()) + 1)));
    assert_eq!(sim_outcome.decision_of(witness), Some(&30));
    assert_eq!(
        sim_outcome.decision_time_of(witness),
        Some(Time::ZERO + twostep::types::Duration::deltas(2))
    );

    // Manual replay of the same schedule.
    let mut ex = ManualExecutor::new(cfg, |q| {
        TaskConsensus::with_options(
            cfg,
            q,
            10 * (u64::from(q.as_u32()) + 1),
            OmegaMode::Static(p(0)),
            Ablations::NONE,
        )
    });
    ex.start_all();
    for target in [p(0), p(1)] {
        for id in ex.pending_matching(|m| m.from == witness && m.to == target && matches!(m.msg, Msg::Propose(_))) {
            ex.deliver(id);
        }
        for id in ex.pending_matching(|m| m.from == target && m.to == witness && matches!(m.msg, Msg::TwoB(..))) {
            ex.deliver(id);
        }
    }
    assert_eq!(ex.decision_of(witness), Some(&30));
    // White-box: same final vote state for the witness in both engines.
    let sim_proc = &sim_outcome.procs[witness.index()];
    assert_eq!(sim_proc.inner().decided_value(), Some(&30));
    assert_eq!(ex.process(witness).inner().decided_value(), Some(&30));
}

/// The threaded runtime reaches the same decision as the simulator on
/// the lone-proposer object scenario.
#[test]
fn simulator_and_threads_agree_on_object_consensus() {
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    let proposer = p(4);

    let sim_outcome = SyncRunner::new(cfg).run_object(
        |q| ObjectConsensus::<u64>::new(cfg, q),
        vec![(proposer, 42, Time::ZERO)],
    );
    assert_eq!(sim_outcome.decision_of(proposer), Some(&42));

    let cluster: Cluster<u64> = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| {
        ObjectConsensus::new(cfg, q)
    });
    cluster.propose(proposer, 42);
    assert_eq!(
        cluster.await_decision(proposer, WallDuration::from_secs(5)),
        Some(42)
    );
    assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(5)));
    assert!(cluster.agreement());
}

/// TCP and in-memory transports produce identical decisions for the
/// same scenario.
#[test]
fn transports_agree() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    for tcp in [false, true] {
        let cluster: Cluster<u64> = if tcp {
            Cluster::tcp(cfg, WallDuration::from_millis(10), |q| {
                ObjectConsensus::new(cfg, q)
            })
            .expect("tcp cluster")
        } else {
            Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| {
                ObjectConsensus::new(cfg, q)
            })
        };
        cluster.propose(p(1), 77);
        assert_eq!(
            cluster.await_decision(p(1), WallDuration::from_secs(10)),
            Some(77),
            "tcp={tcp}"
        );
        assert!(cluster.agreement(), "tcp={tcp}");
    }
}

/// Crash-under-load over threads: the object protocol keeps its
/// guarantees with e processes crashed at startup.
#[test]
fn threaded_cluster_with_crashes_decides() {
    let cfg = SystemConfig::minimal_object(2, 2).unwrap();
    let mut cluster: Cluster<u64> =
        Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| {
            ObjectConsensus::new(cfg, q)
        });
    cluster.crash(p(0));
    cluster.crash(p(1));
    cluster.propose(p(4), 9);
    for i in 2..5u32 {
        assert_eq!(
            cluster.await_decision(p(i), WallDuration::from_secs(10)),
            Some(9),
            "p{i}"
        );
    }
    assert!(cluster.agreement());
}

/// The protocol state machine is engine-agnostic by construction: this
/// asserts the Protocol trait object view used by all engines exposes
/// the same decision.
#[test]
fn protocol_trait_surface_is_consistent() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let outcome = SyncRunner::new(cfg)
        .favoring(p(2))
        .run(|q| TaskConsensus::new(cfg, q, u64::from(q.as_u32())));
    for q in cfg.process_ids() {
        let via_trait = outcome.procs[q.index()].decision();
        let via_outcome = outcome.decision_of(q).copied();
        assert_eq!(via_trait, via_outcome, "{q}");
    }
}
