//! Workspace-level property tests spanning several crates: randomized
//! whole-system scenarios checked with the verification toolkit.

use proptest::prelude::*;

use twostep::core::{ObjectConsensus, TaskConsensus};
use twostep::sim::{DeliveryOrder, RandomDelay, SimulationBuilder};
use twostep::smr::{KvCommand, KvStore, SmrReplicaBuilder};
use twostep::types::{Duration, ProcessId, SystemConfig, Time};
use twostep::verify::{check_agreement, check_integrity, check_validity};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Task consensus: random configs, delays, orders and crash
    /// schedules never violate Agreement/Validity/Integrity, and always
    /// terminate when crashes stay within f.
    #[test]
    fn task_consensus_safety_under_chaos(
        grid in 0usize..4,
        seed in 0u64..10_000,
        crashes in proptest::collection::vec((0u32..16, 0u64..4000), 0..3),
    ) {
        let (e, f) = [(1usize, 1), (1, 2), (2, 2), (2, 3)][grid];
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let n = cfg.n();
        let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

        let mut builder = SimulationBuilder::new(cfg)
            .delay_model(RandomDelay::sub_delta(seed))
            .delivery_order(DeliveryOrder::randomized(seed));
        let mut victims = std::collections::BTreeSet::new();
        for (raw, when) in crashes.iter().take(f) {
            let victim = (raw % n as u32, *when);
            if victims.insert(victim.0) {
                builder = builder.crash_at(p(victim.0), Time::from_units(victim.1));
            }
        }
        let outcome = builder
            .build(|q| TaskConsensus::new(cfg, q, props[q.index()]))
            .run_until_all_decided(Time::ZERO + Duration::deltas(150));

        prop_assert!(check_agreement(&outcome.trace).is_ok());
        prop_assert!(check_validity(&outcome.trace, &props).is_ok());
        prop_assert!(check_integrity(&outcome.trace).is_ok());
        prop_assert!(outcome.all_correct_decided(), "stalled: {:?}", outcome.decisions);
    }

    /// Object consensus: random proposer subsets under chaos stay safe
    /// and wait-free for correct proposers.
    #[test]
    fn object_consensus_safety_under_chaos(
        seed in 0u64..10_000,
        proposer_mask in 1u32..32,
    ) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let n = cfg.n();
        let mut sim = SimulationBuilder::new(cfg)
            .delay_model(RandomDelay::sub_delta(seed))
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| ObjectConsensus::<u64>::new(cfg, q));
        let mut proposed = vec![];
        for i in 0..n as u32 {
            if proposer_mask & (1 << i) != 0 {
                let v = 100 + u64::from(i);
                proposed.push(v);
                sim.schedule_propose(p(i), v, Time::from_units(u64::from(i) * 137));
            }
        }
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(150));
        prop_assert!(check_agreement(&outcome.trace).is_ok());
        prop_assert!(check_validity(&outcome.trace, &proposed).is_ok());
        prop_assert!(outcome.all_correct_decided());
    }

    /// SMR: replicas' committed logs are always prefix-compatible and
    /// every submitted command commits exactly once (no loss, no
    /// duplication), under random proxies and schedules.
    #[test]
    fn smr_log_consistency(
        seed in 0u64..10_000,
        cmds in proptest::collection::vec((0u32..3, 0u64..50), 1..5),
    ) {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let mut sim = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| SmrReplicaBuilder::new(cfg, q).build::<KvCommand, KvStore>());
        let total = cmds.len() as u64;
        for (k, (proxy, key)) in cmds.iter().enumerate() {
            sim.schedule_propose(
                p(proxy % 3),
                KvCommand::put(format!("k{key}-{k}"), format!("v{k}")),
                Time::from_units(k as u64 * 211),
            );
        }
        let outcome = sim.run_until(Time::ZERO + Duration::deltas(250), |s| {
            (0..3).all(|i| s.process(p(i)).applied() >= total)
        });

        let longest = outcome.procs.iter().max_by_key(|r| r.applied()).unwrap();
        prop_assert!(
            longest.applied() >= total,
            "only {}/{} commands applied",
            longest.applied(),
            total
        );
        // Prefix compatibility + exactly-once.
        for r in &outcome.procs {
            for (slot, cmd) in r.log() {
                prop_assert_eq!(longest.log().get(slot), Some(cmd));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for cmd in longest.log().values().flat_map(|b| b.iter()) {
            prop_assert!(seen.insert(cmd.clone()), "duplicated commit: {cmd:?}");
        }
    }
}
