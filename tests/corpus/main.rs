//! Regression corpus: minimized counterexample schedules, replayed.
//!
//! Each schedule here was found by `twostep-fuzz` against a deliberately
//! ablated protocol and minimized by its ddmin shrinker; the test pins
//! it as a permanent regression check. Every entry is asserted twice:
//! the ablated protocol must still violate the stated property, and the
//! *correct* protocol must survive the identical schedule — so each test
//! localizes the blame to the ablated rule, not to the schedule.
//!
//! To reproduce or extend an entry, paste the printed replay line, e.g.:
//!
//! ```text
//! cargo run -p twostep-fuzz -- --protocol task --e 2 --f 2 --n 6 \
//!     --ablate no_max_tiebreak --replay '<schedule>' --values 1,0,0,2,0,0 --leader 2
//! ```

use twostep_core::Ablations;
use twostep_fuzz::{
    check_safety, fuzz_byzantine, fuzz_sharded, run_case, ByzFuzzConfig, FuzzCase, FuzzProtocol,
    Schedule, ShardFuzzConfig,
};
use twostep_telemetry::ObserverHandle;
use twostep_types::{ByzConfig, ByzVariant, ProcessId, SystemConfig};

/// Builds a corpus case from its replay-line ingredients.
fn corpus_case(
    protocol: FuzzProtocol,
    (n, e, f): (usize, usize, usize),
    values: &[u64],
    leader: u32,
    ablations: Ablations,
    schedule: &str,
) -> FuzzCase {
    let schedule: Schedule = schedule.parse().expect("corpus schedule must parse");
    FuzzCase {
        protocol,
        cfg: SystemConfig::new(n, e, f).expect("corpus configuration must be valid"),
        values: values.to_vec(),
        leader: ProcessId::new(leader),
        ablations,
        schedule,
    }
}

/// Asserts the ablated replay violates `property` and the unablated
/// replay of the same schedule is clean.
fn assert_blames_ablation(case: FuzzCase, property: &str) {
    let verdict = check_safety(case.protocol, &run_case(&case))
        .unwrap_or_else(|| panic!("corpus schedule no longer reproduces a violation"));
    assert_eq!(
        verdict.property(),
        property,
        "corpus schedule now violates {} ({}), expected {property}",
        verdict.property(),
        verdict.detail()
    );

    let mut correct = case;
    correct.ablations = Ablations::NONE;
    let verdict = check_safety(correct.protocol, &run_case(&correct));
    assert_eq!(
        verdict, None,
        "the correct protocol must survive the corpus schedule"
    );
}

/// §4's recovery rule breaks when its max-value tie-break is flipped to
/// min. Minimal configuration n = 2e + f at (e, f) = (2, 2): the winner
/// p3 fast-decides 2 with voters {p3, p0, p1, p4}, its Decide broadcasts
/// are dropped, and leader p2's recovery quorum {p1, p2, p4, p5} tallies
/// {2: 2, 1: 2} at the exact n-f-e = 2 threshold — min picks 1.
/// Found at seed 1, iteration 12; shrunk 59 → 21 actions. Notably the
/// minimal schedule needs no crashes at all: message drops alone
/// desynchronize the winner from the recovery quorum.
#[test]
fn tiebreak_flip_splits_recovery_quorum() {
    let case = corpus_case(
        FuzzProtocol::Task,
        (6, 2, 2),
        &[1, 0, 0, 2, 0, 0],
        2,
        Ablations {
            no_max_tiebreak: true,
            ..Ablations::NONE
        },
        "d:3>1 d:3>4 d:3>0 D:3 x:3>1 x:3>2 x:3>2 x:3>4 x:3>5 x:3>5 \
         T:2 D:4 D:1 D:2 D:5 D:2 D:2 D:1 D:4 D:5 D:2",
    );
    assert_blames_ablation(case, "agreement");
}

/// The object variant's extra vote guard (only the designated opener's
/// proposal may be fast-voted) is load-bearing at n = 2e + f - 1.
/// Without it two concurrent openers both assemble fast quorums.
/// Found at seed 1, iteration 1; shrunk 57 → 19 actions.
#[test]
fn object_guard_removal_allows_double_fast_decide() {
    let case = corpus_case(
        FuzzProtocol::Object,
        (5, 2, 2),
        &[0, 1, 0, 0, 2],
        0,
        Ablations {
            no_object_guard: true,
            ..Ablations::NONE
        },
        "p:4=2 p:1=1 d:4>3 d:4>1 D:4 x:4>0 x:4>0 x:4>2 x:4>2 x:4>3 \
         T:0 D:2 D:3 D:0 D:0 D:2 D:0 D:3 D:0",
    );
    assert_blames_ablation(case, "agreement");
}

/// Clean-pass witness for the sharded campaign: 60 seeded iterations of
/// 4 object-consensus groups on 3 shared nodes, each iteration crashing
/// and restarting a shard-leader node mid-load, found no violation —
/// per-shard Agreement/Validity/Integrity hold and no value ever leaked
/// across shards. The decide-event count is pinned exactly: the
/// campaign is deterministic, so any drift in the generator, the
/// executor or the protocols shows up here as a count change before it
/// can silently shrink the corpus's coverage.
///
/// Reproduce with:
///
/// ```text
/// cargo run -p twostep-fuzz -- --shards 4 --seed 42 --iters 60
/// ```
#[test]
fn sharded_leader_crash_restart_campaign_is_clean() {
    let cfg = SystemConfig::minimal_object(1, 1).expect("minimal object configuration");
    let out = fuzz_sharded(&ShardFuzzConfig::new(4, cfg, 42, 60));
    assert!(
        out.is_clean(),
        "sharded campaign found a violation: {:?}",
        out.failure
    );
    assert_eq!(out.iterations_run, 60);
    assert_eq!(
        out.decisions, 575,
        "campaign coverage drifted: expected the pinned decide-event count"
    );
}

/// The two-shard edge of the same campaign — the smallest deployment
/// where leaders actually spread: the leader of one group is a follower
/// of the other, so every crash exercises both roles at once.
#[test]
fn two_shard_leader_crash_restart_campaign_is_clean() {
    let cfg = SystemConfig::minimal_object(1, 1).expect("minimal object configuration");
    let out = fuzz_sharded(&ShardFuzzConfig::new(2, cfg, 7, 60));
    assert!(
        out.is_clean(),
        "two-shard campaign found a violation: {:?}",
        out.failure
    );
    assert_eq!(out.decisions, 292, "campaign coverage drifted");
}

/// Clean-pass witness for the Byzantine campaign: 60 seeded iterations
/// of FastBft at FaB's minimal fast-live size (n = 5f+1 = 6), each with
/// a victim drawn from all four malicious behaviors — equivocate,
/// forge, lie-ballot, silence — (never the coordinator — the
/// unsigned-BFT caveat), found no Agreement/Validity/Integrity
/// violation among the honest processes. The honest decide-event count
/// is pinned exactly: the campaign is deterministic, so drift in the
/// injector, the executor, or FastBft shows up here before it can
/// silently shrink coverage.
///
/// Reproduce with:
///
/// ```text
/// cargo run -p twostep-fuzz -- --byzantine --f 1 --seed 42 --iters 60
/// ```
#[test]
fn byzantine_malicious_coalition_campaign_is_clean() {
    let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1).expect("minimal FaB configuration");
    let fc = ByzFuzzConfig {
        byz,
        seed: 42,
        iters: 60,
    };
    let out = fuzz_byzantine(&fc, &ObserverHandle::none());
    assert!(
        out.is_clean(),
        "byzantine campaign found a violation: {:?}",
        out.failure
    );
    assert_eq!(out.iterations_run, 60);
    assert_eq!(
        out.decisions, 300,
        "campaign coverage drifted: expected the pinned honest decide-event count"
    );
}

/// The Tight (5f−1) edge of the same campaign at f = 2: coalitions of
/// up to two victims attack the narrower fast quorum, whose recovery
/// certification deliberately trades the maxcount obligation (B6) for
/// honest-proposer conditioning.
///
/// Reproduce with:
///
/// ```text
/// cargo run -p twostep-fuzz -- --byzantine --variant tight --f 2 --seed 7 --iters 25
/// ```
#[test]
fn byzantine_tight_variant_campaign_is_clean() {
    let byz = ByzConfig::minimal_fast(ByzVariant::Tight, 2).expect("minimal Tight configuration");
    let fc = ByzFuzzConfig {
        byz,
        seed: 7,
        iters: 25,
    };
    let out = fuzz_byzantine(&fc, &ObserverHandle::none());
    assert!(
        out.is_clean(),
        "tight byzantine campaign found a violation: {:?}",
        out.failure
    );
    assert_eq!(out.decisions, 189, "campaign coverage drifted");
}

/// The `n = 3f+1` floor of the Byzantine campaign, both variants — the
/// REVIEW.md corner where an accepting quorum and a later promise
/// quorum intersect in just `n−2f = 2` processes, only `n−3f = 1` of
/// them guaranteed honest. A clean pass pins the two repairs: slow
/// `Promise` reports are certificate-backed (a Forge victim in the
/// intersection cannot strand a slow-decided value), and Tight
/// recovery waits for the coordinator's report instead of counting
/// witnesses it may not have.
///
/// Reproduce with:
///
/// ```text
/// cargo run -p twostep-fuzz -- --byzantine --n 4 --f 1 --seed 21 --iters 30
/// cargo run -p twostep-fuzz -- --byzantine --variant tight --n 4 --f 1 --seed 21 --iters 30
/// ```
#[test]
fn byzantine_floor_campaigns_are_clean_for_both_variants() {
    for variant in [ByzVariant::Fab, ByzVariant::Tight] {
        let byz = ByzConfig::new(4, 1, variant).expect("3f+1 floor configuration");
        let fc = ByzFuzzConfig {
            byz,
            seed: 21,
            iters: 30,
        };
        let out = fuzz_byzantine(&fc, &ObserverHandle::none());
        assert!(
            out.is_clean(),
            "{variant:?} floor campaign found a violation: {:?}",
            out.failure
        );
        assert_eq!(
            out.decisions, 90,
            "{variant:?} floor campaign coverage drifted"
        );
    }
}

/// The paper's §B.1 adversary, re-encoded as a schedule: a fast decision
/// forms, the winner and one voter crash, and the recovery leader must
/// reconstruct the decided value from a quorum that saw only a partial
/// vote. The correct recovery rule decides the fast value; the test pins
/// that end-to-end agreement across fast path and recovery.
#[test]
fn fast_decide_then_crash_recovers_the_decided_value() {
    let case = corpus_case(
        FuzzProtocol::Task,
        (6, 2, 2),
        &[1, 0, 0, 2, 0, 0],
        2,
        Ablations::NONE,
        // p3's Propose reaches everyone; p0's votes make the fast quorum.
        "d:3>0 d:3>1 d:3>2 d:3>4 d:3>5 D:3 \
         c:3 c:0 T:2 D:1 D:2 D:4 D:5 D:2 D:2 D:1 D:4 D:5 D:1 D:4 D:5 D:2",
    );
    let report = run_case(&case);
    assert_eq!(check_safety(case.protocol, &report), None);
    // The winner fast-decided before crashing, so the surviving quorum's
    // recovery must converge on the same value.
    assert!(
        report
            .decide_log
            .iter()
            .any(|&(p, _)| p == ProcessId::new(3)),
        "p3 should have fast-decided before its crash: {:?}",
        report.decide_log
    );
    let values: Vec<u64> = report.decide_log.iter().map(|&(_, v)| v).collect();
    assert!(
        values.iter().all(|&v| v == values[0]),
        "all decisions must match the fast-decided value: {:?}",
        report.decide_log
    );
}
