//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-tree serde
//! stub. No `syn`/`quote`: the item is parsed directly from the token
//! stream and the impls are emitted as strings.
//!
//! Supported shapes (everything this workspace derives on): unit /
//! newtype / tuple / named-field structs; enums whose variants are unit,
//! newtype, tuple, or struct-like; type parameters with declared bounds;
//! the `#[serde(bound(serialize = "...", deserialize = "..."))]`
//! attribute. Lifetimes, const generics, `where` clauses on the item and
//! enum discriminants are rejected with a panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Param {
    name: String,
    /// Declared bounds as written, e.g. `Ord`, without the leading `:`.
    bounds: String,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    #[allow(dead_code)] // kept for error messages / future shapes
    is_enum: bool,
    name: String,
    params: Vec<Param>,
    bound_ser: Option<String>,
    bound_de: Option<String>,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = gen_serialize(&input);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive stub emitted invalid Serialize impl: {e}\n{code}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = gen_deserialize(&input);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive stub emitted invalid Deserialize impl: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

fn ident_at(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected {what}, found {other:?}"),
    }
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;
    let mut bound_ser = None;
    let mut bound_de = None;

    // Outer attributes (doc comments arrive as `#[doc = "..."]`).
    while is_punct(toks.get(i), '#') {
        match toks.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                scan_serde_attr(g.stream(), &mut bound_ser, &mut bound_de);
                i += 2;
            }
            other => panic!("serde_derive stub: malformed attribute, found {other:?}"),
        }
    }

    // Visibility.
    if is_ident(toks.get(i), "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let is_enum = if is_ident(toks.get(i), "struct") {
        false
    } else if is_ident(toks.get(i), "enum") {
        true
    } else {
        panic!(
            "serde_derive stub: expected `struct` or `enum`, found {:?}",
            toks.get(i)
        );
    };
    i += 1;

    let name = ident_at(&toks, i, "item name");
    i += 1;

    // Generic parameters.
    let mut params = Vec::new();
    if is_punct(toks.get(i), '<') {
        i += 1;
        loop {
            if is_punct(toks.get(i), '>') {
                i += 1;
                break;
            }
            if is_punct(toks.get(i), ',') {
                i += 1;
                continue;
            }
            if is_punct(toks.get(i), '\'') {
                panic!("serde_derive stub: lifetime parameters are not supported");
            }
            if is_ident(toks.get(i), "const") {
                panic!("serde_derive stub: const generics are not supported");
            }
            let pname = ident_at(&toks, i, "generic parameter");
            i += 1;
            let mut bounds = String::new();
            if is_punct(toks.get(i), ':') {
                i += 1;
                let mut depth = 0i64;
                let mut parts: Vec<String> = Vec::new();
                loop {
                    match toks.get(i) {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            depth += 1;
                            parts.push("<".into());
                            i += 1;
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                            parts.push(">".into());
                            i += 1;
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                        Some(t) => {
                            parts.push(t.to_string());
                            i += 1;
                        }
                        None => panic!("serde_derive stub: unexpected end inside generics"),
                    }
                }
                bounds = parts.join(" ");
            }
            params.push(Param {
                name: pname,
                bounds,
            });
        }
    }

    if is_ident(toks.get(i), "where") {
        panic!("serde_derive stub: `where` clauses on the item are not supported");
    }

    let data = if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, found {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => panic!("serde_derive stub: expected struct body, found {other:?}"),
        }
    };

    Input {
        is_enum,
        name,
        params,
        bound_ser,
        bound_de,
        data,
    }
}

/// Extracts `bound(serialize = "...", deserialize = "...")` from one
/// `#[serde(...)]` attribute body. Other serde attributes are rejected so
/// they cannot be silently mis-serialized.
fn scan_serde_attr(
    ts: TokenStream,
    bound_ser: &mut Option<String>,
    bound_de: &mut Option<String>,
) {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if !is_ident(toks.first(), "serde") {
        return;
    }
    let args = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut j = 0usize;
    while j < args.len() {
        if is_ident(args.get(j), "bound") {
            if let Some(TokenTree::Group(bg)) = args.get(j + 1) {
                let bts: Vec<TokenTree> = bg.stream().into_iter().collect();
                let mut k = 0usize;
                while k < bts.len() {
                    if let TokenTree::Ident(id) = &bts[k] {
                        let which = id.to_string();
                        if is_punct(bts.get(k + 1), '=') {
                            if let Some(TokenTree::Literal(lit)) = bts.get(k + 2) {
                                let s = unquote(&lit.to_string());
                                match which.as_str() {
                                    "serialize" => *bound_ser = Some(s),
                                    "deserialize" => *bound_de = Some(s),
                                    other => panic!(
                                        "serde_derive stub: unsupported bound key `{other}`"
                                    ),
                                }
                            }
                            k += 3;
                            if is_punct(bts.get(k), ',') {
                                k += 1;
                            }
                            continue;
                        }
                    }
                    k += 1;
                }
                j += 2;
                continue;
            }
        } else if !is_punct(args.get(j), ',') {
            panic!(
                "serde_derive stub: unsupported serde attribute starting at {:?}",
                args.get(j)
            );
        }
        j += 1;
    }
}

fn unquote(lit: &str) -> String {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive stub: expected string literal, got {lit}"));
    inner.replace("\\\"", "\"").replace("\\\\", "\\")
}

fn parse_named(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;
    let mut names = Vec::new();
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        if is_ident(toks.get(i), "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = ident_at(&toks, i, "field name");
        i += 1;
        if !is_punct(toks.get(i), ':') {
            panic!("serde_derive stub: expected `:` after field `{name}`");
        }
        i += 1;
        // Skip the field type: a balanced token run up to a top-level `,`.
        let mut depth = 0i64;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    i += 1;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    i += 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        names.push(name);
    }
    names
}

/// Counts tuple-struct / tuple-variant fields: top-level commas delimit
/// fields, commas inside `<...>` do not (`BTreeMap<String, u64>` is one).
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i, "variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        if is_punct(toks.get(i), '=') {
            panic!("serde_derive stub: explicit enum discriminants are not supported");
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        out.push((name, fields));
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

/// `<'de, V: Ord + ::serde::de::DeserializeOwned>` — declared bounds are
/// kept; `default_bound` is appended per type parameter unless the item
/// carries an explicit `#[serde(bound(...))]` override.
fn impl_generics(input: &Input, lifetime: Option<&str>, default_bound: Option<&str>) -> String {
    let mut items = Vec::new();
    if let Some(lt) = lifetime {
        items.push(lt.to_string());
    }
    for p in &input.params {
        let mut bounds = Vec::new();
        if !p.bounds.is_empty() {
            bounds.push(p.bounds.clone());
        }
        if let Some(db) = default_bound {
            bounds.push(db.to_string());
        }
        if bounds.is_empty() {
            items.push(p.name.clone());
        } else {
            items.push(format!("{}: {}", p.name, bounds.join(" + ")));
        }
    }
    if items.is_empty() {
        String::new()
    } else {
        format!("<{}>", items.join(", "))
    }
}

/// `<V, C>` (or empty).
fn type_generics(input: &Input) -> String {
    if input.params.is_empty() {
        String::new()
    } else {
        let names: Vec<&str> = input.params.iter().map(|p| p.name.as_str()).collect();
        format!("<{}>", names.join(", "))
    }
}

fn visitor_struct(vn: &str, input: &Input) -> String {
    if input.params.is_empty() {
        format!("struct {vn};\n")
    } else {
        let names: Vec<&str> = input.params.iter().map(|p| p.name.as_str()).collect();
        format!(
            "struct {vn}<{0}>(::std::marker::PhantomData<({0},)>);\n",
            names.join(", ")
        )
    }
}

fn visitor_expr(vn: &str, input: &Input) -> String {
    if input.params.is_empty() {
        vn.to_string()
    } else {
        format!("{vn}(::std::marker::PhantomData)")
    }
}

fn str_slice(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("&[{}]", quoted.join(", "))
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let default_bound = if input.bound_ser.is_none() {
        Some("::serde::Serialize")
    } else {
        None
    };
    let ig = impl_generics(input, None, default_bound);
    let tg = type_generics(input);
    let wc = match &input.bound_ser {
        Some(b) => format!(" where {b}"),
        None => String::new(),
    };

    let body = match &input.data {
        Data::Struct(Fields::Unit) => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Data::Struct(Fields::Tuple(1)) => format!(
            "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Data::Struct(Fields::Tuple(n)) => {
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for k in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{k})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            s
        }
        Data::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(__st)");
            s
        }
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for (idx, (v, fields)) in variants.iter().enumerate() {
                match fields {
                    Fields::Unit => s.push_str(&format!(
                        "{name}::{v} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{v}\"),\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{v}\", __f0),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        s.push_str(&format!(
                            "{name}::{v}({binds}) => {{\nlet mut __st = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{v}\", {n})?;\n",
                            binds = binds.join(", ")
                        ));
                        for b in &binds {
                            s.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __st, {b})?;\n"
                            ));
                        }
                        s.push_str("::serde::ser::SerializeTupleVariant::end(__st)\n}\n");
                    }
                    Fields::Named(fs) => {
                        s.push_str(&format!(
                            "{name}::{v} {{ {fields} }} => {{\nlet mut __st = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{v}\", {len})?;\n",
                            fields = fs.join(", "),
                            len = fs.len()
                        ));
                        for f in fs {
                            s.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __st, \"{f}\", {f})?;\n"
                            ));
                        }
                        s.push_str("::serde::ser::SerializeStructVariant::end(__st)\n}\n");
                    }
                }
            }
            s.push('}');
            s
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, non_snake_case, unused_mut, unused_variables)]\n\
         impl{ig} ::serde::Serialize for {name}{tg}{wc} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn read_fields(n: usize, ctor: &str) -> String {
    let mut s = String::new();
    for k in 0..n {
        s.push_str(&format!(
            "let __f{k} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{ \
             ::std::option::Option::Some(__v) => __v, \
             ::std::option::Option::None => return ::std::result::Result::Err(<__A::Error as ::serde::de::Error>::custom(\"invalid length\")), \
             }};\n"
        ));
    }
    s.push_str(&format!("::std::result::Result::Ok({ctor})\n"));
    s
}

fn tuple_ctor(path: &str, n: usize) -> String {
    let args: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
    format!("{path}({})", args.join(", "))
}

fn named_ctor(path: &str, fields: &[String]) -> String {
    let args: Vec<String> = fields
        .iter()
        .enumerate()
        .map(|(k, f)| format!("{f}: __f{k}"))
        .collect();
    format!("{path} {{ {} }}", args.join(", "))
}

fn visit_seq_method(body: &str) -> String {
    format!(
        "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n{body}}}\n"
    )
}

fn visitor_impl(
    vn: &str,
    input: &Input,
    ig: &str,
    wc: &str,
    value_ty: &str,
    expecting: &str,
    methods: &str,
) -> String {
    let tg = type_generics(input);
    format!(
        "impl{ig} ::serde::de::Visitor<'de> for {vn}{tg}{wc} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{ __f.write_str(\"{expecting}\") }}\n\
         {methods}\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let default_bound = if input.bound_de.is_none() {
        Some("::serde::de::DeserializeOwned")
    } else {
        None
    };
    let ig = impl_generics(input, Some("'de"), default_bound);
    let tg = type_generics(input);
    let wc = match &input.bound_de {
        Some(b) => format!(" where {b}"),
        None => String::new(),
    };
    let value_ty = format!("{name}{tg}");

    // Helper items (visitor structs + impls) defined inside `deserialize`,
    // followed by the driving `Deserializer` call.
    let mut items = String::new();
    let driver;

    match &input.data {
        Data::Struct(Fields::Unit) => {
            items.push_str(&visitor_struct("__Visitor", input));
            let methods = format!(
                "fn visit_unit<__E: ::serde::de::Error>(self) -> ::std::result::Result<Self::Value, __E> {{ ::std::result::Result::Ok({name}) }}\n"
            );
            items.push_str(&visitor_impl(
                "__Visitor",
                input,
                &ig,
                &wc,
                &value_ty,
                &format!("struct {name}"),
                &methods,
            ));
            driver = format!(
                "::serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", {})",
                visitor_expr("__Visitor", input)
            );
        }
        Data::Struct(Fields::Tuple(1)) => {
            items.push_str(&visitor_struct("__Visitor", input));
            let methods = format!(
                "fn visit_newtype_struct<__E: ::serde::Deserializer<'de>>(self, __d: __E) -> ::std::result::Result<Self::Value, __E::Error> {{\n\
                 ::serde::Deserialize::deserialize(__d).map({name})\n\
                 }}\n"
            );
            items.push_str(&visitor_impl(
                "__Visitor",
                input,
                &ig,
                &wc,
                &value_ty,
                &format!("struct {name}"),
                &methods,
            ));
            driver = format!(
                "::serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", {})",
                visitor_expr("__Visitor", input)
            );
        }
        Data::Struct(Fields::Tuple(n)) => {
            items.push_str(&visitor_struct("__Visitor", input));
            let methods = visit_seq_method(&read_fields(*n, &tuple_ctor(name, *n)));
            items.push_str(&visitor_impl(
                "__Visitor",
                input,
                &ig,
                &wc,
                &value_ty,
                &format!("struct {name}"),
                &methods,
            ));
            driver = format!(
                "::serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}, {})",
                visitor_expr("__Visitor", input)
            );
        }
        Data::Struct(Fields::Named(fields)) => {
            items.push_str(&visitor_struct("__Visitor", input));
            let methods = visit_seq_method(&read_fields(fields.len(), &named_ctor(name, fields)));
            items.push_str(&visitor_impl(
                "__Visitor",
                input,
                &ig,
                &wc,
                &value_ty,
                &format!("struct {name}"),
                &methods,
            ));
            driver = format!(
                "::serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", {}, {})",
                str_slice(fields),
                visitor_expr("__Visitor", input)
            );
        }
        Data::Enum(variants) => {
            // One helper visitor per tuple/struct variant.
            for (idx, (v, fields)) in variants.iter().enumerate() {
                let vn = format!("__Variant{idx}");
                match fields {
                    Fields::Unit | Fields::Tuple(1) => {}
                    Fields::Tuple(n) => {
                        items.push_str(&visitor_struct(&vn, input));
                        let methods =
                            visit_seq_method(&read_fields(*n, &tuple_ctor(&format!("{name}::{v}"), *n)));
                        items.push_str(&visitor_impl(
                            &vn,
                            input,
                            &ig,
                            &wc,
                            &value_ty,
                            &format!("tuple variant {name}::{v}"),
                            &methods,
                        ));
                    }
                    Fields::Named(fs) => {
                        items.push_str(&visitor_struct(&vn, input));
                        let methods = visit_seq_method(&read_fields(
                            fs.len(),
                            &named_ctor(&format!("{name}::{v}"), fs),
                        ));
                        items.push_str(&visitor_impl(
                            &vn,
                            input,
                            &ig,
                            &wc,
                            &value_ty,
                            &format!("struct variant {name}::{v}"),
                            &methods,
                        ));
                    }
                }
            }

            items.push_str(&visitor_struct("__Visitor", input));
            let mut arms = String::new();
            for (idx, (v, fields)) in variants.iter().enumerate() {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{{ ::serde::de::VariantAccess::unit_variant(__variant)?; ::std::result::Result::Ok({name}::{v}) }}"
                    ),
                    Fields::Tuple(1) => format!(
                        "::serde::de::VariantAccess::newtype_variant(__variant).map({name}::{v})"
                    ),
                    Fields::Tuple(n) => format!(
                        "::serde::de::VariantAccess::tuple_variant(__variant, {n}, {})",
                        visitor_expr(&format!("__Variant{idx}"), input)
                    ),
                    Fields::Named(fs) => format!(
                        "::serde::de::VariantAccess::struct_variant(__variant, {}, {})",
                        str_slice(fs),
                        visitor_expr(&format!("__Variant{idx}"), input)
                    ),
                };
                arms.push_str(&format!("{idx}u32 => {arm},\n"));
            }
            let methods = format!(
                "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 let (__idx, __variant) = ::serde::de::EnumAccess::variant::<u32>(__data)?;\n\
                 match __idx {{\n\
                 {arms}\
                 _ => ::std::result::Result::Err(<__A::Error as ::serde::de::Error>::custom(\"variant index out of range\")),\n\
                 }}\n\
                 }}\n"
            );
            items.push_str(&visitor_impl(
                "__Visitor",
                input,
                &ig,
                &wc,
                &value_ty,
                &format!("enum {name}"),
                &methods,
            ));
            let vnames: Vec<String> = variants.iter().map(|(v, _)| v.clone()).collect();
            driver = format!(
                "::serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", {}, {})",
                str_slice(&vnames),
                visitor_expr("__Visitor", input)
            );
        }
    }

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, non_snake_case, unused_mut, unused_variables)]\n\
         impl{ig} ::serde::Deserialize<'de> for {name}{tg}{wc} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::std::result::Result<Self, __D::Error> {{\n\
         {items}\
         {driver}\n\
         }}\n\
         }}\n"
    )
}
