//! Minimal API-compatible stub of `proptest`: a deterministic
//! property-testing runner covering exactly the surface this workspace
//! uses (`proptest!`, `prop_assert*`, `prop_oneof!`, `Just`, `any`,
//! ranges, tuples, string patterns, `collection::{vec, btree_map}`,
//! `option::of`, `prop_map`, `prop_recursive`).
//!
//! Unlike real proptest there is no shrinking of failing cases; instead
//! every run is reproducible from a printed seed. The base seed derives
//! from the test name, so runs are stable across processes, and can be
//! overridden with the `TWOSTEP_SEED` environment variable to replay a
//! failure.
#![allow(clippy::all)]

pub mod strategy {
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// Deterministic generator state (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.generate(rng))
        }

        /// Depth-bounded recursive strategy. `_desired_size` and
        /// `_expected_branch` are accepted for API compatibility; only
        /// `depth` limits recursion here.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current.clone()).boxed();
                let l = leaf.clone();
                current = BoxedStrategy::new(move |rng: &mut TestRng| {
                    if rng.below(4) == 0 {
                        l.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                });
            }
            current
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> BoxedStrategy<T> {
        pub fn new<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
            BoxedStrategy(Rc::new(f))
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-typed strategies (see `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.0.len() as u64) as usize;
            self.0[k].generate(rng)
        }
    }

    /// Primitive types generable by `any::<T>()`.
    pub trait ArbitraryPrimitive {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {
            $(impl ArbitraryPrimitive for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })+
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryPrimitive for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryPrimitive> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let lo = self.start as i128;
                        let hi = self.end as i128;
                        assert!(lo < hi, "empty range strategy");
                        let span = (hi - lo) as u128;
                        (lo + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let lo = *self.start() as i128;
                        let hi = *self.end() as i128;
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi - lo) as u128 + 1;
                        (lo + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
            )+
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// `&'static str` acts as a regex-lite pattern strategy producing
    /// `String`s. Supported: literal chars, `[a-z0-9 ]` char classes
    /// (with unicode ranges), and `{n}` / `{m,n}` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut out = String::new();
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(a <= b, "inverted char range in pattern {pattern:?}");
                        for u in a..=b {
                            if let Some(c) = char::from_u32(u) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                i += 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad quantifier"),
                        b.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let k = rng.below(set.len() as u64) as usize;
                out.push(set[k]);
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicate keys collapse, so the result may be smaller than
            // the picked size — same as real proptest.
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `Option` strategy: `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property failed; the run aborts with this message.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Base seed for a property: the `TWOSTEP_SEED` env var when set,
    /// otherwise a stable hash of the test name.
    pub fn base_seed(name: &str) -> u64 {
        match std::env::var("TWOSTEP_SEED") {
            Ok(v) => v
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("TWOSTEP_SEED must be a u64, got {v:?}")),
            Err(_) => fnv1a(name),
        }
    }

    fn case_seed(base: u64, attempt: u64) -> u64 {
        base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
    }

    /// Drives one property: runs `config.cases` generated cases, retrying
    /// rejected ones, and panics with seed + inputs on the first failure.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
    {
        let base = base_seed(name);
        let mut executed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = (config.cases as u64).saturating_mul(20).max(100);
        while executed < config.cases {
            if attempts >= max_attempts {
                panic!(
                    "[{name}] gave up after {attempts} attempts: \
                     {executed}/{} cases passed, the rest were rejected by prop_assume! \
                     (base seed {base})",
                    config.cases
                );
            }
            let mut rng = TestRng::new(case_seed(base, attempts));
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err((TestCaseError::Reject(_), _)) => {}
                Err((TestCaseError::Fail(msg), inputs)) => {
                    panic!(
                        "[{name}] property failed after {executed} passing case(s): {msg}\n\
                         \x20 inputs: {inputs}\n\
                         \x20 base seed: {base} — replay with TWOSTEP_SEED={base}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                let __vals = ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                let __inputs = ::std::format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result.map_err(|__e| (__e, __inputs))
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}` ({} == {})",
                    __l, __r, stringify!($left), stringify!($right)
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l, __r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
