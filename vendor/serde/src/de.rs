//! The deserialization half of the serde data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error type contract for deserializers.
pub trait Error: Sized + std::error::Error {
    /// Builds a deserializer error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value constructible from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful deserialization entry point (serde's seed mechanism).
pub trait DeserializeSeed<'de>: Sized {
    /// The value produced.
    type Value;
    /// Deserializes using this seed.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize the serde data model.
///
/// Unlike real serde, every `deserialize_*` method has a default that
/// forwards to [`Deserializer::deserialize_any`]; full formats (like the
/// workspace codec) override all of them, while trivial single-value
/// deserializers only provide `deserialize_any`.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes whatever the input contains next (self-describing
    /// formats only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a borrowed or copied string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes a struct field name or enum variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserializes and discards whatever comes next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! default_visit {
    ($($(#[$doc:meta])* fn $name:ident($ty:ty);)*) => {$(
        $(#[$doc])*
        fn $name<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom(concat!("unexpected ", stringify!($name))))
        }
    )*};
}

/// Drives construction of a value from deserializer callbacks.
pub trait Visitor<'de>: Sized {
    /// The value being produced.
    type Value;

    /// Writes a description of what this visitor expects.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    default_visit! {
        /// Visits a `bool`.
        fn visit_bool(bool);
        /// Visits an `i8`.
        fn visit_i8(i8);
        /// Visits an `i16`.
        fn visit_i16(i16);
        /// Visits an `i32`.
        fn visit_i32(i32);
        /// Visits an `i64`.
        fn visit_i64(i64);
        /// Visits a `u8`.
        fn visit_u8(u8);
        /// Visits a `u16`.
        fn visit_u16(u16);
        /// Visits a `u32`.
        fn visit_u32(u32);
        /// Visits a `u64`.
        fn visit_u64(u64);
        /// Visits an `f32`.
        fn visit_f32(f32);
        /// Visits an `f64`.
        fn visit_f64(f64);
        /// Visits a `char`.
        fn visit_char(char);
    }

    /// Visits a string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected string"))
    }

    /// Visits a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a byte slice.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected bytes"))
    }

    /// Visits bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }

    /// Visits `Option::Some`, deserializing the payload.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected some"))
    }

    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }

    /// Visits a newtype struct, deserializing the inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected newtype struct"))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom("unexpected sequence"))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom("unexpected map"))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes the next element with an explicit seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>
    where
        Self: Sized,
    {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes the next key with an explicit seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the next value with an explicit seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>
    where
        Self: Sized,
    {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>
    where
        Self: Sized,
    {
        self.next_value_seed(PhantomData)
    }

    /// Deserializes the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error>
    where
        Self: Sized,
    {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// Accessor for the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant identifier with an explicit seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant identifier.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant being deserialized.
pub trait VariantAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant payload with an explicit seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant payload.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a deserializer yielding it.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Converts `self` into a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = value::U32Deserializer<E>;
    fn into_deserializer(self) -> value::U32Deserializer<E> {
        value::U32Deserializer::new(self)
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u64 {
    type Deserializer = value::U64Deserializer<E>;
    fn into_deserializer(self) -> value::U64Deserializer<E> {
        value::U64Deserializer::new(self)
    }
}

/// Trivial single-value deserializers.
pub mod value {
    use super::{Deserializer, Visitor};
    use std::fmt;
    use std::marker::PhantomData;

    /// Plain string-message error for the value deserializers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! primitive_deserializer {
        ($name:ident, $ty:ty, $visit:ident) => {
            /// Deserializer yielding a single primitive value.
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<E> $name<E> {
                /// Wraps `value`.
                pub fn new(value: $ty) -> Self {
                    $name { value, marker: PhantomData }
                }
            }

            impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                type Error = E;
                fn deserialize_any<V: Visitor<'de>>(
                    self,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    visitor.$visit(self.value)
                }
            }
        };
    }

    primitive_deserializer!(U32Deserializer, u32, visit_u32);
    primitive_deserializer!(U64Deserializer, u64, visit_u64);
}
