//! Minimal API-compatible stub of `serde`: the full serialization /
//! deserialization data-model traits as exercised by this workspace
//! (notably `twostep-runtime`'s hand-rolled binary codec), plus impls
//! for the std types the workspace serializes.
//!
//! Not a general replacement for serde — see `vendor/README.md`.
#![allow(clippy::all)]

pub mod de;
pub mod ser;

mod impls;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};

// The derive macros live in the same-named companion crate, exactly as
// with real serde; the name collision with the traits is fine because
// macros occupy a separate namespace.
pub use serde_derive::{Deserialize, Serialize};
