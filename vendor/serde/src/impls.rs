//! `Serialize`/`Deserialize` impls for the std types this workspace
//! serializes.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

use crate::de::{self, Deserialize, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer,
};

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! impl_primitive {
    ($ty:ty, $ser:ident, $de:ident, $visit:ident, $exp:expr) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($exp)
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    };
}

impl_primitive!(bool, serialize_bool, deserialize_bool, visit_bool, "a bool");
impl_primitive!(i8, serialize_i8, deserialize_i8, visit_i8, "an i8");
impl_primitive!(i16, serialize_i16, deserialize_i16, visit_i16, "an i16");
impl_primitive!(i32, serialize_i32, deserialize_i32, visit_i32, "an i32");
impl_primitive!(i64, serialize_i64, deserialize_i64, visit_i64, "an i64");
impl_primitive!(u8, serialize_u8, deserialize_u8, visit_u8, "a u8");
impl_primitive!(u16, serialize_u16, deserialize_u16, visit_u16, "a u16");
impl_primitive!(u32, serialize_u32, deserialize_u32, visit_u32, "a u32");
impl_primitive!(u64, serialize_u64, deserialize_u64, visit_u64, "a u64");
impl_primitive!(f32, serialize_f32, deserialize_f32, visit_f32, "an f32");
impl_primitive!(f64, serialize_f64, deserialize_f64, visit_f64, "an f64");
impl_primitive!(char, serialize_char, deserialize_char, visit_char, "a char");

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---------------------------------------------------------------------------
// Unit, references, boxes
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T> Serialize for PhantomData<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit_struct("PhantomData")
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T> Visitor<'de> for V<T> {
            type Value = PhantomData<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("phantom data")
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(PhantomData)
            }
        }
        deserializer.deserialize_unit_struct("PhantomData", V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Option
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($len:expr => $(($idx:tt $name:ident $field:ident)),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                SerializeTuple::end(tup)
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(concat!("a tuple of length ", $len))
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $field = match seq.next_element()? {
                                Some(v) => v,
                                None => return Err(de::Error::custom("tuple too short")),
                            };
                        )+
                        Ok(($($field,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

impl_tuple!(1 => (0 T0 t0));
impl_tuple!(2 => (0 T0 t0), (1 T1 t1));
impl_tuple!(3 => (0 T0 t0), (1 T1 t1), (2 T2 t2));
impl_tuple!(4 => (0 T0 t0), (1 T1 t1), (2 T2 t2), (3 T3 t3));
impl_tuple!(5 => (0 T0 t0), (1 T1 t1), (2 T2 t2), (3 T3 t3), (4 T4 t4));

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        SerializeSeq::serialize_element(&mut seq, &item)?;
    }
    SerializeSeq::end(seq)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for V<T> {
            type Value = BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Eq + Hash> Visitor<'de> for V<T> {
            type Value = HashSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = HashSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

macro_rules! impl_map {
    ($map:ident, $($kbound:tt)+) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V>
        where
            K: $($kbound)+,
        {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut m = serializer.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    SerializeMap::serialize_key(&mut m, k)?;
                    SerializeMap::serialize_value(&mut m, v)?;
                }
                SerializeMap::end(m)
            }
        }

        impl<'de, K, V: Deserialize<'de>> Deserialize<'de> for $map<K, V>
        where
            K: Deserialize<'de> + $($kbound)+,
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct Vis<K, V>(PhantomData<(K, V)>);
                impl<'de, K, V: Deserialize<'de>> Visitor<'de> for Vis<K, V>
                where
                    K: Deserialize<'de> + $($kbound)+,
                {
                    type Value = $map<K, V>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a map")
                    }
                    fn visit_map<A: MapAccess<'de>>(
                        self,
                        mut map: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = $map::new();
                        while let Some((k, v)) = map.next_entry()? {
                            out.insert(k, v);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_map(Vis(PhantomData))
            }
        }
    };
}

impl_map!(BTreeMap, Ord);
impl_map!(HashMap, Eq + Hash);
