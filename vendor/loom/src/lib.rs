//! Offline stub of the [loom](https://docs.rs/loom) concurrency model
//! checker, API-compatible with the subset this workspace uses.
//!
//! [`model`] runs a closure under **every** sequentially-consistent
//! interleaving of its threads' synchronization operations. Execution is
//! serialized: exactly one model thread runs at a time, and every
//! operation on a [`sync::atomic`] type, every [`sync::Mutex`]
//! acquisition, [`thread::spawn`], [`thread::yield_now`] and
//! `JoinHandle::join` is a *scheduling point* where the explorer may
//! switch threads. The explorer walks the schedule tree depth-first,
//! re-running the closure once per distinct schedule; an assertion
//! failure on any schedule panics with the failing schedule attached.
//!
//! Differences from real loom, which matter for reading results:
//!
//! * only sequentially-consistent outcomes are explored — `Ordering`
//!   arguments are accepted but ignored, so relaxed/acquire-release
//!   reorderings invisible under SC are **not** covered;
//! * no partial-order reduction: equivalent schedules are re-executed;
//!   keep models to a handful of scheduling points per thread;
//! * plain (non-atomic) shared memory is not instrumented; models must
//!   route shared state through the types in [`sync`].

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex};

/// Hard ceiling on schedules per [`model`] call. Exceeding it panics
/// (never silently truncates): a model that large needs to shrink, not
/// to pretend it was exhaustively checked.
pub const MAX_SCHEDULES: usize = 500_000;

// ---------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    BlockedOnLock(usize),
    BlockedOnJoin(usize),
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    total: usize,
}

struct ExecState {
    threads: Vec<Run>,
    /// Loom-thread id currently allowed to run; `usize::MAX` once the
    /// execution has completed.
    active: usize,
    /// Index of the next decision to replay/record.
    depth: usize,
    trail: Vec<Decision>,
    locks: HashMap<usize, usize>, // object id -> owner tid
    next_object: usize,
    aborted: Option<String>,
    done: bool,
}

struct Execution {
    state: StdMutex<ExecState>,
    cond: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(StdArc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> (StdArc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

impl Execution {
    fn new(trail: Vec<Decision>) -> StdArc<Self> {
        StdArc::new(Execution {
            state: StdMutex::new(ExecState {
                threads: vec![Run::Runnable],
                active: 0,
                depth: 0,
                trail,
                locks: HashMap::new(),
                next_object: 0,
                aborted: None,
                done: false,
            }),
            cond: Condvar::new(),
        })
    }

    /// Picks the next thread to run. Called with the state lock held.
    fn schedule(&self, st: &mut ExecState) {
        if st.aborted.is_some() {
            // Wake everyone so blocked threads can unwind.
            st.done = st.threads.iter().all(|t| *t == Run::Finished);
            return;
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == Run::Runnable)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| *t == Run::Finished) {
                st.active = usize::MAX;
                st.done = true;
            } else {
                st.aborted = Some(format!(
                    "deadlock: no runnable thread (threads: {:?})",
                    st.threads
                ));
            }
            return;
        }
        let choice = if runnable.len() == 1 {
            0
        } else if st.depth < st.trail.len() {
            let d = st.trail[st.depth];
            if d.total != runnable.len() {
                st.aborted = Some(format!(
                    "nondeterministic model: replay expected {} runnable threads, found {}",
                    d.total,
                    runnable.len()
                ));
                return;
            }
            st.depth += 1;
            d.chosen
        } else {
            st.trail.push(Decision {
                chosen: 0,
                total: runnable.len(),
            });
            st.depth += 1;
            0
        };
        st.active = runnable[choice];
    }

    /// Blocks the calling loom thread until the scheduler hands it the
    /// token again (or the execution aborts, in which case it panics to
    /// unwind out of the model closure).
    fn wait_for_turn(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.aborted.is_some() {
                drop(st);
                self.cond.notify_all();
                panic!("loom execution aborted");
            }
            if st.active == tid && st.threads[tid] == Run::Runnable {
                return;
            }
            st = self.cond.wait(st).unwrap();
        }
    }

    /// A scheduling point: lets the explorer pick who runs next.
    fn yield_point(self: &StdArc<Self>, tid: usize) {
        {
            let mut st = self.state.lock().unwrap();
            self.schedule(&mut st);
        }
        self.cond.notify_all();
        self.wait_for_turn(tid);
    }

    fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid] = Run::Finished;
        if let Some(msg) = panic_msg {
            st.aborted.get_or_insert(msg);
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedOnJoin(tid) {
                st.threads[t] = Run::Runnable;
            }
        }
        self.schedule(&mut st);
        drop(st);
        self.cond.notify_all();
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Explores every interleaving of `f`'s threads; panics on the first
/// schedule whose execution panics (assertion failure, deadlock, …),
/// with the failing schedule rendered into the message.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let mut trail: Vec<Decision> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "loom model exceeded {MAX_SCHEDULES} schedules; shrink the model"
        );

        let exec = Execution::new(trail.clone());
        let exec0 = StdArc::clone(&exec);
        let f0 = StdArc::clone(&f);
        let root = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec0), 0)));
            exec0.wait_for_turn(0);
            let r = panic::catch_unwind(AssertUnwindSafe(|| f0()));
            exec0.finish_thread(0, r.as_ref().err().map(|e| panic_message(&**e)));
            CURRENT.with(|c| *c.borrow_mut() = None);
        });

        // Drive: wait until every loom thread of this execution is done.
        {
            let mut st = exec.state.lock().unwrap();
            while !st.done {
                st = exec.cond.wait(st).unwrap();
            }
        }
        let _ = root.join();

        let st = exec.state.lock().unwrap();
        if let Some(msg) = &st.aborted {
            let schedule: Vec<usize> = st.trail.iter().map(|d| d.chosen).collect();
            panic!(
                "loom: model failed after {schedules} schedule(s): {msg}\n  failing schedule (choice per decision point): {schedule:?}"
            );
        }
        trail = st.trail.clone();
        drop(st);

        // Depth-first advance to the next unexplored schedule.
        while let Some(last) = trail.last() {
            if last.chosen + 1 < last.total {
                break;
            }
            trail.pop();
        }
        match trail.last_mut() {
            Some(last) => last.chosen += 1,
            None => break, // schedule tree exhausted
        }
    }
}

// ---------------------------------------------------------------------
// Public API surface
// ---------------------------------------------------------------------

/// Model-aware replacement for `std::thread`.
pub mod thread {
    use super::*;

    /// Handle to a model thread; `join` is a scheduling point.
    pub struct JoinHandle<T> {
        tid: usize,
        result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
        os: std::thread::JoinHandle<()>,
    }

    /// Spawns a model thread participating in the exploration.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, tid) = current();
        let new_tid = {
            let mut st = exec.state.lock().unwrap();
            st.threads.push(Run::Runnable);
            st.threads.len() - 1
        };
        let result = StdArc::new(StdMutex::new(None));
        let result2 = StdArc::clone(&result);
        let exec2 = StdArc::clone(&exec);
        let os = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec2), new_tid)));
            exec2.wait_for_turn(new_tid);
            let r = panic::catch_unwind(AssertUnwindSafe(f));
            let msg = r.as_ref().err().map(|e| panic_message(&**e));
            *result2.lock().unwrap() = Some(r);
            exec2.finish_thread(new_tid, msg);
            CURRENT.with(|c| *c.borrow_mut() = None);
        });
        // Spawning is itself a scheduling point: the child may run first.
        exec.yield_point(tid);
        JoinHandle {
            tid: new_tid,
            result,
            os,
        }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the thread finishes.
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = current();
            loop {
                {
                    let mut st = exec.state.lock().unwrap();
                    if st.aborted.is_some() {
                        drop(st);
                        exec.cond.notify_all();
                        panic!("loom execution aborted");
                    }
                    if st.threads[self.tid] == Run::Finished {
                        break;
                    }
                    st.threads[me] = Run::BlockedOnJoin(self.tid);
                    exec.schedule(&mut st);
                }
                exec.cond.notify_all();
                exec.wait_for_turn(me);
            }
            let _ = self.os.join();
            let r = self.result.lock().unwrap().take();
            r.expect("joined thread stored no result")
        }
    }

    /// An explicit scheduling point.
    pub fn yield_now() {
        let (exec, tid) = current();
        exec.yield_point(tid);
    }
}

/// Model-aware replacements for `std::sync` types.
pub mod sync {
    use super::*;

    pub use std::sync::Arc;

    /// Model-aware mutex: acquisition is a scheduling point and
    /// contention blocks the model thread (never the explorer).
    pub struct Mutex<T> {
        data: StdMutex<T>,
        id: std::sync::atomic::AtomicUsize, // 0 = unassigned
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        mutex: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a model mutex.
        pub fn new(data: T) -> Self {
            Mutex {
                data: StdMutex::new(data),
                id: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        fn object_id(&self, st: &mut ExecState) -> usize {
            use std::sync::atomic::Ordering::SeqCst;
            let id = self.id.load(SeqCst);
            if id != 0 {
                return id;
            }
            st.next_object += 1;
            self.id.store(st.next_object, SeqCst);
            st.next_object
        }

        /// Acquires the mutex, exploring contention interleavings.
        ///
        /// The `Err` arm exists only to mirror loom's `LockResult`
        /// signature shape; this stub never poisons, so `lock()` never
        /// returns it.
        #[allow(clippy::result_unit_err)]
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, ()> {
            let (exec, tid) = current();
            loop {
                exec.yield_point(tid);
                {
                    let mut st = exec.state.lock().unwrap();
                    let id = self.object_id(&mut st);
                    if let std::collections::hash_map::Entry::Vacant(v) = st.locks.entry(id) {
                        v.insert(tid);
                        drop(st);
                        let inner = self.data.lock().unwrap_or_else(|p| p.into_inner());
                        return Ok(MutexGuard {
                            inner: Some(inner),
                            mutex: self,
                        });
                    }
                    st.threads[tid] = Run::BlockedOnLock(id);
                    exec.schedule(&mut st);
                }
                exec.cond.notify_all();
                exec.wait_for_turn(tid);
            }
        }
    }

    impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard active")
        }
    }

    impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard active")
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            self.inner = None; // release the std lock first
            let (exec, _tid) = current();
            let mut st = exec.state.lock().unwrap();
            let id = self.mutex.id.load(std::sync::atomic::Ordering::SeqCst);
            st.locks.remove(&id);
            for t in 0..st.threads.len() {
                if st.threads[t] == Run::BlockedOnLock(id) {
                    st.threads[t] = Run::Runnable;
                }
            }
            drop(st);
            exec.cond.notify_all();
        }
    }

    /// Model-aware atomics: every operation is a scheduling point.
    pub mod atomic {
        use super::super::current;

        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_stub {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-aware atomic; operations are scheduling points
                /// and execute with sequentially-consistent semantics
                /// regardless of the `Ordering` passed.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates the atomic.
                    pub fn new(v: $prim) -> Self {
                        Self(<$std>::new(v))
                    }

                    fn at_yield(&self) {
                        let (exec, tid) = current();
                        exec.yield_point(tid);
                    }

                    /// Scheduling point + SC load.
                    pub fn load(&self, _o: Ordering) -> $prim {
                        self.at_yield();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Scheduling point + SC store.
                    pub fn store(&self, v: $prim, _o: Ordering) {
                        self.at_yield();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Scheduling point + SC swap.
                    pub fn swap(&self, v: $prim, _o: Ordering) -> $prim {
                        self.at_yield();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Scheduling point + SC compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        cur: $prim,
                        new: $prim,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.at_yield();
                        self.0
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_stub!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_stub!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_stub!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        atomic_stub!(AtomicBool, std::sync::atomic::AtomicBool, bool);

        macro_rules! atomic_arith {
            ($name:ident, $prim:ty) => {
                impl $name {
                    /// Scheduling point + SC fetch-add.
                    pub fn fetch_add(&self, v: $prim, _o: Ordering) -> $prim {
                        self.at_yield();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Scheduling point + SC fetch-sub.
                    pub fn fetch_sub(&self, v: $prim, _o: Ordering) -> $prim {
                        self.at_yield();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }
                }
            };
        }
        atomic_arith!(AtomicUsize, usize);
        atomic_arith!(AtomicU64, u64);
        atomic_arith!(AtomicU32, u32);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn explores_all_two_thread_interleavings() {
        // Store-buffer litmus (SC version): t1 stores x then loads y,
        // t2 stores y then loads x. Under sequential consistency
        // (0, 0) is impossible; the three other outcomes must all be
        // observed across the exploration.
        let seen: std::sync::Arc<StdMutex<HashSet<(usize, usize)>>> =
            std::sync::Arc::new(StdMutex::new(HashSet::new()));
        let seen2 = std::sync::Arc::clone(&seen);
        super::model(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = super::thread::spawn(move || {
                x1.store(1, Ordering::SeqCst);
                y1.load(Ordering::SeqCst)
            });
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = super::thread::spawn(move || {
                y2.store(1, Ordering::SeqCst);
                x2.load(Ordering::SeqCst)
            });
            let r1 = t1.join().unwrap();
            let r2 = t2.join().unwrap();
            assert!(!(r1 == 0 && r2 == 0), "SC forbids both threads reading 0");
            seen2.lock().unwrap().insert((r1, r2));
        });
        let seen = seen.lock().unwrap();
        for want in [(0, 1), (1, 0), (1, 1)] {
            assert!(seen.contains(&want), "outcome {want:?} never explored");
        }
    }

    #[test]
    fn lost_update_is_found() {
        // Unsynchronized read-modify-write: the classic lost update must
        // be discovered by some schedule.
        let found = std::sync::Arc::new(StdMutex::new(false));
        let found2 = std::sync::Arc::clone(&found);
        super::model(move || {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            if c.load(Ordering::SeqCst) == 1 {
                *found2.lock().unwrap() = true;
            }
        });
        assert!(
            *found.lock().unwrap(),
            "exploration missed the lost-update interleaving"
        );
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        super::model(|| {
            let m = Arc::new(Mutex::new((0usize, 0usize)));
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let m = Arc::clone(&m);
                    super::thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        // Non-atomic two-field update: must never be
                        // observed torn.
                        g.0 += i + 1;
                        g.1 += i + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let g = m.lock().unwrap();
            assert_eq!(g.0, g.1, "critical section interleaved");
            assert_eq!(g.0, 3);
        });
    }

    #[test]
    #[should_panic(expected = "model failed")]
    fn failing_schedule_is_reported() {
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c1 = Arc::clone(&c);
            let t = super::thread::spawn(move || c1.store(1, Ordering::SeqCst));
            // Racy assertion: fails on schedules where the child runs
            // first — the explorer must find one.
            assert_eq!(c.load(Ordering::SeqCst), 0);
            t.join().unwrap();
        });
    }
}
