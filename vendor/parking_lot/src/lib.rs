//! Minimal stub of `parking_lot`: non-poisoning wrappers over the
//! standard-library locks with `parking_lot`'s guard-returning API.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}
