//! Minimal stub of the `bytes` crate: a cheaply clonable, immutable
//! byte buffer. Covers only the API this workspace uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable contiguous slice of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// The length of the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::new(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}
