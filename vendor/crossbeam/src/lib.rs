//! Minimal stub of `crossbeam`: MPMC channels plus a polling `select!`
//! macro covering the `recv(..) -> .. => ..` / `default(..)` form.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().unwrap().push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap();
            }
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.0.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.0.queue.lock().unwrap().is_empty()
        }
    }

    /// Polling implementation of `crossbeam::channel::select!` for the
    /// `recv(r) -> v => body` arms (+ mandatory `default(timeout)` arm
    /// or not) used in this workspace. Bodies execute outside any
    /// internal loop so `break`/`continue` bind to the caller's loop.
    #[macro_export]
    macro_rules! select {
        (
            recv($r1:expr) -> $p1:pat => $b1:expr,
            recv($r2:expr) -> $p2:pat => $b2:expr,
            default($wait:expr) => $bd:expr $(,)?
        ) => {{
            let __deadline = ::std::time::Instant::now() + $wait;
            let mut __which: u8 = 255;
            let mut __v1 = ::std::option::Option::None;
            let mut __v2 = ::std::option::Option::None;
            loop {
                match $r1.try_recv() {
                    ::std::result::Result::Ok(v) => {
                        __v1 = ::std::option::Option::Some(::std::result::Result::Ok(v));
                        __which = 1;
                        break;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        __v1 = ::std::option::Option::Some(::std::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                        __which = 1;
                        break;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $r2.try_recv() {
                    ::std::result::Result::Ok(v) => {
                        __v2 = ::std::option::Option::Some(::std::result::Result::Ok(v));
                        __which = 2;
                        break;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        __v2 = ::std::option::Option::Some(::std::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                        __which = 2;
                        break;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                if ::std::time::Instant::now() >= __deadline {
                    break;
                }
                ::std::thread::sleep(::std::time::Duration::from_micros(200));
            }
            if __which == 1 {
                let $p1 = __v1.take().unwrap();
                $b1
            } else if __which == 2 {
                let $p2 = __v2.take().unwrap();
                $b2
            } else {
                $bd
            }
        }};
    }

    // `#[macro_export]` already hoists `select!` to the crate root;
    // this re-export makes `crossbeam::channel::select!` work too.
    pub use crate::select;
}
