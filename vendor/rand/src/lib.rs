//! Minimal stub of `rand` 0.8: a deterministic `StdRng` (xoshiro256++
//! seeded via SplitMix64), the `Rng`/`SeedableRng` traits, and
//! `seq::SliceRandom`. Deterministic across platforms by construction.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types samplable uniformly from a full-range `Rng::gen` call.
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience sampling methods.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 (the standard xoshiro seeding procedure).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5i32..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..20).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
