//! Minimal stub of `criterion`: enough of the harness API for the
//! workspace's `harness = false` benches to build and produce rough
//! timings. No statistics, plots, or CLI parsing.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Opaque value sink (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`] (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (recorded, printed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures passed to [`Bencher::iter`] and friends.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn run<F: FnMut()>(&mut self, mut f: F) {
        // Warm-up pass, then a short timed run.
        f();
        let budget = Duration::from_millis(40);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 100_000 {
            f();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Times `routine` on inputs produced by `setup` (setup untimed in
    /// real criterion; timed here — the stub reports rough numbers only).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("bench {name:<48} {per_iter:>12.0} ns/iter ({} iters)", b.iters);
    if let Some(Throughput::Elements(n)) = throughput {
        let rate = n as f64 / (per_iter / 1e9);
        line.push_str(&format!("  ~{rate:.0} elem/s"));
    }
    println!("{line}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), &b, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
