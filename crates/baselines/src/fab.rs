//! A FaB-Paxos-style fast Byzantine consensus baseline.
//!
//! Martin & Alvisi's *Fast Byzantine Consensus* (FaB Paxos, DSN'05 /
//! TDSC'06) decides in two message delays — proposer broadcast, then
//! one round of acceptor echoes — without signatures in the common
//! case, at the price of larger quorums: fast quorums of
//! `⌈(n+3f+1)/2⌉`, available under `f` Byzantine faults iff
//! `n ≥ 5f+1`. Kuznetsov, Tonkikh & Zhang (arXiv:2102.12825) shave two
//! processes by conditioning the fast path on an honest proposer
//! (`⌈(n+3f−1)/2⌉` quorums, `n ≥ 5f−1` — optimal). [`FastBft`]
//! implements both rules, selected by the
//! [`ByzVariant`] inside its [`ByzConfig`].
//!
//! This is the Byzantine sibling of the crash-model baselines: where
//! the paper's protocol two-steps with `max{2e+f, 2f+1}` crash-prone
//! processes, the same latency under Byzantine faults costs `5f+1`
//! (resp. `5f−1`) — the gap experiment E14 measures.
//!
//! **Scope (unsigned common case, certified recovery).** Like FaB's
//! common case, fast-round messages carry no signatures, so safety
//! against *arbitrary* Byzantine behavior holds for acceptors and
//! learners (equivocation, forged echoes, forged fast-round recovery
//! reports, silence — see obligations B1–B5 in `twostep-analysis`).
//! Recovery, as in FaB proper, leans on *signed progress certificates*:
//! a ballot's [`FabMsg::Slow`] proposal, and any later [`FabMsg::Promise`]
//! report quoting it, are certificate-backed and cannot be fabricated —
//! see the [`Corruptible`] impl for the exact modeled surface. What the
//! certificates cannot stop is a Byzantine *recovery leader* proposing a
//! fabricated value to a ballot it owns, so the fuzz campaigns keep `p0`
//! (the ballot-0 proposer and first Ω leader) honest and attack the
//! other roles, matching the honest-proposer conditioning of the `5f−1`
//! variant.

use serde::{Deserialize, Serialize};

use twostep_telemetry::{ObserverHandle, Path};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::quorum::{Collector, VoteTally};
use twostep_types::relabel::{RelabelHash, Relabeling};
use twostep_types::{
    Ballot, ByzConfig, ByzVariant, Corruptible, Duration, ProcessId, ProcessSet, Value, DELTA,
};

/// FaB wire messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FabMsg<V> {
    /// A non-coordinator's proposal, forwarded to the ballot-0
    /// coordinator `p0`.
    Forward(V),
    /// The coordinator's fast-round proposal, broadcast to all
    /// acceptors.
    Fast(V),
    /// An acceptor's echo, broadcast to all learners. `Accepted(0, v)`
    /// votes count toward fast quorums; slow-ballot echoes toward
    /// `n−f` slow quorums.
    Accepted(Ballot, V),
    /// Recovery phase-1: a new leader opens ballot `b`.
    NewBallot(Ballot),
    /// Recovery phase-1 report.
    Promise {
        /// Ballot being joined.
        bal: Ballot,
        /// Last accepted ballot.
        vbal: Ballot,
        /// Last accepted value.
        vval: Option<V>,
        /// The reporter's own proposal. The *coordinator's* copy is
        /// what the [`ByzVariant::Tight`] certification rule reads —
        /// the honest-proposer conditioning of arXiv:2102.12825.
        proposed: Option<V>,
    },
    /// Recovery phase-2: the leader's certified proposal for ballot
    /// `b`.
    Slow(Ballot, V),
    /// Decision gossip.
    Decide(V),
    /// Ω liveness beacon.
    Heartbeat,
}

impl<V: std::hash::Hash> RelabelHash for FabMsg<V> {
    /// Content hash with every embedded ballot mapped through `rl`.
    /// FaB payloads carry no bare `ProcessId`s; ballots encode their
    /// owner, so a ballot whose owner `rl` moves declines the
    /// permutation (see [`Relabeling::ballot`]). Values are id-free
    /// and hash directly.
    fn relabel_hash(&self, rl: &Relabeling) -> Option<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        match self {
            FabMsg::Forward(v) => {
                0u8.hash(&mut h);
                v.hash(&mut h);
            }
            FabMsg::Fast(v) => {
                1u8.hash(&mut h);
                v.hash(&mut h);
            }
            FabMsg::Accepted(b, v) => {
                2u8.hash(&mut h);
                rl.ballot(*b)?.hash(&mut h);
                v.hash(&mut h);
            }
            FabMsg::NewBallot(b) => {
                3u8.hash(&mut h);
                rl.ballot(*b)?.hash(&mut h);
            }
            FabMsg::Promise {
                bal,
                vbal,
                vval,
                proposed,
            } => {
                4u8.hash(&mut h);
                rl.ballot(*bal)?.hash(&mut h);
                rl.ballot(*vbal)?.hash(&mut h);
                vval.hash(&mut h);
                proposed.hash(&mut h);
            }
            FabMsg::Slow(b, v) => {
                5u8.hash(&mut h);
                rl.ballot(*b)?.hash(&mut h);
                v.hash(&mut h);
            }
            FabMsg::Decide(v) => {
                6u8.hash(&mut h);
                v.hash(&mut h);
            }
            FabMsg::Heartbeat => 7u8.hash(&mut h),
        }
        Some(h.finish())
    }
}

/// [`Corruptible`] plumbing so the `twostep-byz` injector can attack
/// FaB traffic.
///
/// The corruptible surface is exactly the *first-party lies*: a
/// process's own proposals, echoes, fast-round reports, and decide
/// claims — the traffic the `f+1` / quorum thresholds are sized to
/// absorb, since even signatures cannot stop a traitor from signing a
/// lie about its own state. Everything quoting a *ballot leader's*
/// artifact is exempt, because in FaB recovery is backed by *progress
/// certificates* of signed messages a traitor cannot fabricate, and
/// honest processes reject any tampered copy — the injector models
/// that rejection by leaving the fields intact:
///
/// * [`FabMsg::Slow`] entirely: a recovery proposal carries the
///   leader's certificate binding both ballot and value. (Without this
///   a Byzantine recovery leader dictates arbitrary values: Agreement
///   survives but no quorum arithmetic can restore Validity — the
///   Byzantine fuzz campaign demonstrated exactly that before `Slow`
///   was exempted.)
/// * A [`FabMsg::Promise`]'s slow-ballot `(vbal, vval)` pair: the
///   report quotes the certified `Slow(vbal, vval)` it accepted, so a
///   traitor can neither forge the value nor move the ballot. Only its
///   *fast-round* claim (`vbal = 0`, an unsigned echo) and its own
///   `proposed` remain corruptible. This is load-bearing below
///   `n = 4f+1`: the intersection of an accepting quorum with a later
///   promise quorum holds only `n−2f` processes, of which merely
///   `n−3f` are honest — fewer than the `f+1` certification threshold
///   at `n ≤ 4f` — so without the certificate a single forged report
///   could strand an already-decided slow value (the
///   `forged_slow_reports_cannot_break_floor_recovery` test pins the
///   corner).
///
/// Heartbeats carry nothing to corrupt.
impl<V: Corruptible> Corruptible for FabMsg<V> {
    fn forge_value(&mut self, salt: u64) -> bool {
        match self {
            FabMsg::Forward(v) | FabMsg::Fast(v) | FabMsg::Accepted(_, v) | FabMsg::Decide(v) => {
                v.forge_value(salt)
            }
            FabMsg::Promise {
                vbal,
                vval,
                proposed,
                ..
            } => {
                let forged_vval = match vval {
                    // First-party fast-round claim; a slow pair is
                    // pinned to the ballot leader's certificate.
                    Some(v) if vbal.is_fast() => v.forge_value(salt),
                    _ => false,
                };
                let forged_proposed = match proposed {
                    Some(v) => v.forge_value(salt),
                    None => false,
                };
                forged_vval || forged_proposed
            }
            FabMsg::Slow(..) | FabMsg::NewBallot(_) | FabMsg::Heartbeat => false,
        }
    }

    fn lie_ballot(&mut self, salt: u64) -> bool {
        let bump = |b: &mut Ballot| {
            *b = Ballot::new(b.number().wrapping_add(salt % 5 + 1));
        };
        match self {
            FabMsg::Accepted(b, _) | FabMsg::NewBallot(b) => {
                bump(b);
                true
            }
            // Promise: the certificate binds `vbal` to `vval` (see
            // `forge_value`); Slow's certificate binds the ballot as
            // well as the value.
            FabMsg::Promise { .. }
            | FabMsg::Slow(..)
            | FabMsg::Forward(_)
            | FabMsg::Fast(_)
            | FabMsg::Decide(_)
            | FabMsg::Heartbeat => false,
        }
    }
}

/// FaB-style fast Byzantine consensus over `n ≥ 3f+1` processes.
///
/// Every process plays acceptor and learner; `p0` is the ballot-0
/// proposer (FaB's distinguished coordinator) and the first Ω leader:
///
/// * **fast round (ballot 0)** — the coordinator broadcasts its value;
///   an acceptor echoes the first coordinator value it receives to
///   every learner; a learner decides `v` upon a *fast quorum*
///   ([`ByzConfig::fast_quorum`]) of ballot-0 echoes for `v`. With a
///   correct coordinator and ≤ `f` faults this takes two message
///   delays whenever [`ByzConfig::fast_path_live`] holds.
/// * **recovery (slow ballots)** — the Ω leader collects `n−f`
///   [`FabMsg::Promise`] reports (under [`ByzVariant::Tight`], waiting
///   until the coordinator's report is among them) and *certifies* a
///   value: the highest slow ballot with at least `f+1` matching
///   certificate-backed reports wins; otherwise the fast-round value —
///   for [`ByzVariant::Fab`] the one with the most reporters (at least
///   `f+1`), for [`ByzVariant::Tight`] the coordinator's own reported
///   value; otherwise the leader's own proposal. A slow quorum of
///   `n−f` ballot-`b` echoes decides. The `f+1` floor means no
///   collection of first-party lies can certify a value, and the FaB
///   fast-quorum size guarantees a fast-decided value out-counts any
///   forgery.
/// * **decide gossip** — deciders periodically rebroadcast
///   [`FabMsg::Decide`]; a learner adopts a gossiped value only after
///   `f+1` distinct senders report it, so forged decide claims from up
///   to `f` traitors are inert.
///
/// # Example
///
/// ```rust
/// use twostep_baselines::FastBft;
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ByzConfig, ByzVariant, SystemConfig};
///
/// let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1)?; // n = 6
/// let sim = SystemConfig::new(6, 1, 1)?;
/// let outcome = SyncRunner::new(sim).run(|p| FastBft::new(byz, p, 7u64));
/// let (fast, v) = outcome.fast_deciders();
/// assert_eq!(v, Some(7));
/// assert_eq!(fast.len(), 6, "all learners decide in two steps");
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FastBft<V> {
    cfg: ByzConfig,
    me: ProcessId,
    initial: Option<V>,
    fast_sent: bool,
    // Acceptor state.
    bal: Ballot,
    vbal: Ballot,
    val: Option<V>,
    // Learner state.
    fast_tally: VoteTally<V>,
    slow_ballot_seen: Ballot,
    slow_tally: VoteTally<V>,
    decide_tally: VoteTally<V>,
    decided: Option<V>,
    // Recovery-leader state.
    my_ballot: Option<Ballot>,
    promises: Collector<(Ballot, Option<V>, Option<V>)>,
    phase_one_done: bool,
    // Ω.
    heard: ProcessSet,
    suspected: ProcessSet,
    /// `Some(l)`: Ω is pinned to `l` and the heartbeat substrate is
    /// disabled — the model-checking analogue of the two-step
    /// protocols' `OmegaMode::Static`. Without it every delivery
    /// mutates `heard`, which makes otherwise-identical states
    /// distinct and defeats both the inert-mail scrub and the
    /// symmetry reduction.
    pinned: Option<ProcessId>,
    obs: ObserverHandle,
}

const HEARTBEAT_PERIOD: Duration = DELTA;
const SUSPECT_PERIOD: Duration = Duration::from_units(3 * DELTA.units());
const INITIAL_TIMEOUT: Duration = Duration::from_units(2 * DELTA.units());
const RETRY_PERIOD: Duration = Duration::from_units(5 * DELTA.units());

/// The ballot-0 coordinator.
const COORDINATOR: ProcessId = ProcessId::new(0);

impl<V: Value> FastBft<V> {
    /// Creates a FaB instance for `me` proposing `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`. (The configuration is
    /// *not* required to satisfy the `5f+1` / `5f−1` fast-path bound:
    /// experiment E14 and the analysis tightness witnesses run `n = 5f`
    /// on purpose, to watch the fast path die.)
    pub fn new(cfg: ByzConfig, me: ProcessId, initial: V) -> Self {
        let mut fb = Self::passive(cfg, me);
        fb.initial = Some(initial);
        fb
    }

    /// Creates a *passive* instance: acceptor, learner, and potential
    /// recovery leader, but proposes nothing until `propose(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`.
    pub fn passive(cfg: ByzConfig, me: ProcessId) -> Self {
        assert!(
            me.index() < cfg.n(),
            "process {me} out of range for {cfg:?}"
        );
        FastBft {
            cfg,
            me,
            initial: None,
            fast_sent: false,
            bal: Ballot::FAST,
            vbal: Ballot::FAST,
            val: None,
            fast_tally: VoteTally::new(),
            slow_ballot_seen: Ballot::FAST,
            slow_tally: VoteTally::new(),
            decide_tally: VoteTally::new(),
            decided: None,
            my_ballot: None,
            promises: Collector::new(),
            phase_one_done: false,
            heard: ProcessSet::new(),
            suspected: ProcessSet::new(),
            pinned: None,
            obs: ObserverHandle::none(),
        }
    }

    /// Pins Ω to `leader` and disables the heartbeat substrate
    /// (builder style): no heartbeat broadcasts, no `HEARTBEAT` /
    /// `SUSPECT` timers, and deliveries no longer feed the `heard`
    /// set. Used by the model checker, where the failure-detector
    /// machinery is replaced by explicit timer-budget exploration.
    #[must_use]
    pub fn pinned_leader(mut self, leader: ProcessId) -> Self {
        self.pinned = Some(leader);
        self
    }

    /// Attaches telemetry hooks (builder style). Fast-quorum decisions
    /// report [`Path::Fast`], slow-quorum decisions [`Path::Slow`],
    /// gossip-learned decisions [`Path::Learned`].
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The Byzantine configuration in force.
    pub fn config(&self) -> ByzConfig {
        self.cfg
    }

    /// The decision, if reached.
    pub fn decided_value(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    fn leader(&self) -> ProcessId {
        if let Some(l) = self.pinned {
            return l;
        }
        self.suspected
            .complement(self.cfg.n())
            .min()
            .unwrap_or(self.me)
    }

    fn record_decision(&mut self, v: V, path: Path, eff: &mut Effects<V, FabMsg<V>>) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.obs.decided(self.me, path);
            eff.decide(v);
        } else if self.decided.as_ref() != Some(&v) {
            eff.decide(v); // surfaced for the checkers
        }
    }

    fn check_learned(&mut self, eff: &mut Effects<V, FabMsg<V>>) {
        if self.decided.is_some() {
            return;
        }
        if let Some(v) = self
            .fast_tally
            .max_value_with_count_at_least(self.cfg.fast_quorum())
            .cloned()
        {
            self.record_decision(v, Path::Fast, eff);
            return;
        }
        if let Some(v) = self
            .slow_tally
            .max_value_with_count_at_least(self.cfg.slow_quorum())
            .cloned()
        {
            self.record_decision(v, Path::Slow, eff);
        }
    }

    /// Slow certification: the highest slow ballot at which at least
    /// `f+1` reporters agree on a value. A slow-decided value's
    /// accepting quorum meets every later promise quorum in
    /// `2·(n−f)−n = n−2f ≥ f+1` reporters (obligation B5), and each of
    /// those reports is pinned to the ballot leader's certificate (see
    /// the [`Corruptible`] impl) — a Byzantine intersection member can
    /// stay silent, which shrinks the quorum rather than the
    /// intersection, but cannot misreport the pair. Conversely `f`
    /// first-party liars alone can never reach the threshold.
    fn certify_slow(&self) -> Option<V> {
        let mut ballots: Vec<Ballot> = self
            .promises
            .iter()
            .map(|(_, (vbal, _, _))| *vbal)
            .filter(|b| b.is_slow())
            .collect();
        ballots.sort_unstable();
        ballots.dedup();
        for b in ballots.into_iter().rev() {
            let mut tally: VoteTally<V> = VoteTally::new();
            for (q, (vbal, vval, _)) in self.promises.iter() {
                if *vbal == b {
                    if let Some(v) = vval {
                        tally.record(q, v.clone());
                    }
                }
            }
            if let Some(v) = tally.max_value_with_count_at_least(self.cfg.cert_threshold()) {
                return Some(v.clone());
            }
        }
        None
    }

    /// Fast certification, per variant.
    ///
    /// * [`ByzVariant::Fab`] — the fast-round value with the most
    ///   distinct reporters, requiring at least `f+1`. The classic
    ///   quorum keeps `fq+sq−n−f ≥ f+1` honest reporters of a
    ///   fast-decided value in every promise quorum (obligation B2),
    ///   and `2·fq > n+3f` (B6) stops any rival from out-counting
    ///   them.
    /// * [`ByzVariant::Tight`] — the coordinator's own report, which
    ///   phase one waited for. Under the honest-proposer conditioning
    ///   of arXiv:2102.12825 the only value the fast round can decide
    ///   is the coordinator's, so that report *is* the certification:
    ///   its fast-round echo if it has one, else its own proposal.
    ///   This is where the two saved processes go — no witness
    ///   counting (and no B6) is needed, at the price of trusting the
    ///   coordinator.
    fn certify_fast(&self) -> Option<V> {
        match self.cfg.variant() {
            ByzVariant::Fab => {
                let mut tally: VoteTally<V> = VoteTally::new();
                for (q, (vbal, vval, _)) in self.promises.iter() {
                    if *vbal == Ballot::FAST {
                        if let Some(v) = vval {
                            tally.record(q, v.clone());
                        }
                    }
                }
                let (count, v) = tally
                    .iter()
                    .map(|(v, set)| (set.len(), v))
                    .max_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)))?;
                (count >= self.cfg.cert_threshold()).then(|| v.clone())
            }
            ByzVariant::Tight => {
                let (vbal, vval, proposed) = self.promises.get(COORDINATOR)?;
                if vbal.is_fast() {
                    vval.clone().or_else(|| proposed.clone())
                } else {
                    proposed.clone()
                }
            }
        }
    }

    fn start_ballot(&mut self, eff: &mut Effects<V, FabMsg<V>>) {
        let b = self.bal.next_owned_by(self.me, self.cfg.n());
        self.obs.slow_path_entered(self.me);
        self.my_ballot = Some(b);
        self.promises.clear();
        self.phase_one_done = false;
        eff.broadcast_all(FabMsg::NewBallot(b), self.cfg.n());
    }
}

impl<V: Value> Protocol<V> for FastBft<V> {
    type Message = FabMsg<V>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, eff: &mut Effects<V, FabMsg<V>>) {
        if self.pinned.is_none() {
            eff.broadcast_others(FabMsg::Heartbeat, self.cfg.n(), self.me);
            eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
        }
        eff.set_timer(TimerId::NEW_BALLOT, INITIAL_TIMEOUT);
        if let Some(v) = self.initial.clone() {
            if self.me == COORDINATOR {
                self.fast_sent = true;
                eff.broadcast_all(FabMsg::Fast(v), self.cfg.n());
            } else {
                eff.send(COORDINATOR, FabMsg::Forward(v));
            }
        }
    }

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, FabMsg<V>>) {
        if self.initial.is_none() {
            self.initial = Some(value.clone());
            if self.me == COORDINATOR && !self.fast_sent {
                self.fast_sent = true;
                eff.broadcast_all(FabMsg::Fast(value), self.cfg.n());
            } else if self.me != COORDINATOR {
                eff.send(COORDINATOR, FabMsg::Forward(value));
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: FabMsg<V>, eff: &mut Effects<V, FabMsg<V>>) {
        if self.pinned.is_none() {
            self.heard.insert(from);
        }
        match msg {
            FabMsg::Heartbeat => {}

            FabMsg::Forward(v) => {
                // Only the coordinator adopts forwarded proposals, and
                // only if its own fast round has not started.
                if self.me == COORDINATOR && !self.fast_sent {
                    self.fast_sent = true;
                    self.initial.get_or_insert(v.clone());
                    eff.broadcast_all(FabMsg::Fast(v), self.cfg.n());
                }
            }

            FabMsg::Fast(v) => {
                // Acceptor: echo the first *coordinator* value of the
                // fast round. The sender check stops non-coordinators
                // from hijacking ballot 0 — a Byzantine coordinator can
                // still equivocate, which is exactly what fast-quorum
                // intersection (B1) must survive.
                if from == COORDINATOR && self.bal == Ballot::FAST && self.val.is_none() {
                    self.vbal = Ballot::FAST;
                    self.val = Some(v.clone());
                    eff.broadcast_all(FabMsg::Accepted(Ballot::FAST, v), self.cfg.n());
                }
            }

            FabMsg::Accepted(b, v) => {
                if b == Ballot::FAST {
                    self.fast_tally.record(from, v);
                } else {
                    if b > self.slow_ballot_seen {
                        self.slow_ballot_seen = b;
                        self.slow_tally.clear();
                    }
                    if b == self.slow_ballot_seen {
                        self.slow_tally.record(from, v);
                    }
                }
                self.check_learned(eff);
            }

            FabMsg::NewBallot(b) => {
                if from == b.owner(self.cfg.n()) && b > self.bal {
                    self.obs.ballot_advanced(self.me);
                    self.bal = b;
                    eff.send(
                        from,
                        FabMsg::Promise {
                            bal: b,
                            vbal: self.vbal,
                            vval: self.val.clone(),
                            proposed: self.initial.clone(),
                        },
                    );
                }
            }

            FabMsg::Promise {
                bal,
                vbal,
                vval,
                proposed,
            } => {
                if self.my_ballot == Some(bal) && !self.phase_one_done {
                    self.promises.insert(from, (vbal, vval, proposed));
                    // Tight certification reads the coordinator's
                    // report, so its phase one additionally waits for
                    // it — the coordinator is correct under the
                    // honest-proposer conditioning, so the report
                    // always arrives.
                    let ready = self.promises.len() >= self.cfg.slow_quorum()
                        && (self.cfg.variant() == ByzVariant::Fab
                            || self.promises.contains(COORDINATOR));
                    if ready {
                        self.phase_one_done = true;
                        let chosen = self
                            .certify_slow()
                            .or_else(|| self.certify_fast())
                            .or_else(|| self.initial.clone());
                        if let Some(v) = chosen {
                            eff.broadcast_all(FabMsg::Slow(bal, v), self.cfg.n());
                        }
                    }
                }
            }

            FabMsg::Slow(b, v) => {
                if from == b.owner(self.cfg.n()) && b >= self.bal && b.is_slow() {
                    if b > self.bal {
                        self.obs.ballot_advanced(self.me);
                    }
                    self.bal = b;
                    self.vbal = b;
                    self.val = Some(v.clone());
                    eff.broadcast_all(FabMsg::Accepted(b, v), self.cfg.n());
                }
            }

            FabMsg::Decide(v) => {
                // Gossip is only adopted once `f+1` distinct senders
                // report the same value: at least one of them is honest
                // and really decided it, so a lone forged `Decide` (or
                // any coalition of `f` liars) can never corrupt a
                // learner. The Byzantine fuzz campaign found exactly
                // that corruption before this threshold existed.
                self.decide_tally.record(from, v);
                if self.decided.is_none() {
                    if let Some(v) = self
                        .decide_tally
                        .max_value_with_count_at_least(self.cfg.cert_threshold())
                        .cloned()
                    {
                        self.record_decision(v, Path::Learned, eff);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, FabMsg<V>>) {
        match timer {
            TimerId::HEARTBEAT => {
                eff.broadcast_others(FabMsg::Heartbeat, self.cfg.n(), self.me);
                eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            }
            TimerId::SUSPECT => {
                let before = self.leader();
                let mut trusted = self.heard;
                trusted.insert(self.me);
                self.suspected = trusted.complement(self.cfg.n());
                self.heard = ProcessSet::new();
                let after = self.leader();
                if before != after {
                    self.obs.leader_changed(self.me, after);
                }
                eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
            }
            TimerId::NEW_BALLOT => {
                eff.set_timer(TimerId::NEW_BALLOT, RETRY_PERIOD);
                if let Some(v) = self.decided.clone() {
                    eff.broadcast_others(FabMsg::Decide(v), self.cfg.n(), self.me);
                } else if self.leader() == self.me {
                    self.start_ballot(eff);
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<V> {
        self.decided.clone()
    }

    fn state_fingerprint(&self) -> u64 {
        // Structured hashing of the protocol-relevant state (the
        // Debug-string default is orders of magnitude more expensive,
        // and the model checker fingerprints millions of states).
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.me.hash(&mut h);
        self.initial.hash(&mut h);
        self.fast_sent.hash(&mut h);
        self.bal.hash(&mut h);
        self.vbal.hash(&mut h);
        self.val.hash(&mut h);
        self.slow_ballot_seen.hash(&mut h);
        self.decided.hash(&mut h);
        self.my_ballot.hash(&mut h);
        self.phase_one_done.hash(&mut h);
        self.heard.hash(&mut h);
        self.suspected.hash(&mut h);
        self.pinned.hash(&mut h);
        for tally in [&self.fast_tally, &self.slow_tally, &self.decide_tally] {
            for (v, set) in tally.iter() {
                v.hash(&mut h);
                set.hash(&mut h);
            }
            u8::MAX.hash(&mut h); // tally separator
        }
        for (q, (vbal, vval, proposed)) in self.promises.iter() {
            q.hash(&mut h);
            vbal.hash(&mut h);
            vval.hash(&mut h);
            proposed.hash(&mut h);
        }
        h.finish()
    }

    fn state_fingerprint_relabeled(&self, rl: &twostep_types::relabel::Relabeling) -> Option<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Only the pinned-Ω mode is symmetric: with heartbeats live,
        // `heard` is steered by delivery order in ways the fingerprint
        // cannot relabel soundly mid-sweep. The pinned leader and the
        // ballot-0 coordinator are structurally distinguished, so any
        // permutation moving them is declined.
        let leader = self.pinned?;
        if !rl.fixes(leader) || !rl.fixes(COORDINATOR) {
            return None;
        }
        let mut h = DefaultHasher::new();
        rl.pid(self.me).hash(&mut h);
        self.initial.hash(&mut h);
        self.fast_sent.hash(&mut h);
        rl.ballot(self.bal)?.hash(&mut h);
        rl.ballot(self.vbal)?.hash(&mut h);
        self.val.hash(&mut h);
        rl.ballot(self.slow_ballot_seen)?.hash(&mut h);
        self.decided.hash(&mut h);
        match self.my_ballot {
            None => None::<Ballot>.hash(&mut h),
            Some(b) => Some(rl.ballot(b)?).hash(&mut h),
        }
        self.phase_one_done.hash(&mut h);
        rl.pset(self.heard).hash(&mut h);
        rl.pset(self.suspected).hash(&mut h);
        leader.hash(&mut h);
        for tally in [&self.fast_tally, &self.slow_tally, &self.decide_tally] {
            // Keys iterate in value order, which `rl` does not disturb;
            // only the voter sets need mapping.
            for (v, set) in tally.iter() {
                v.hash(&mut h);
                rl.pset(set).hash(&mut h);
            }
            u8::MAX.hash(&mut h); // tally separator
        }
        // Promise quorum re-sorted by relabeled reporter so the hash is
        // independent of collection order under `π`.
        let mut entries: Vec<(ProcessId, u64)> = Vec::with_capacity(self.promises.len());
        for (q, (vbal, vval, proposed)) in self.promises.iter() {
            let mut eh = DefaultHasher::new();
            rl.ballot(*vbal)?.hash(&mut eh);
            vval.hash(&mut eh);
            proposed.hash(&mut eh);
            entries.push((rl.pid(q), eh.finish()));
        }
        entries.sort_unstable();
        entries.hash(&mut h);
        Some(h.finish())
    }

    /// Permanent no-op classification for the model checker's
    /// inert-mail scrub. Only meaningful in the pinned-Ω mode: with
    /// heartbeats live every delivery feeds `heard`, which steers
    /// future `SUSPECT` sweeps, so nothing is inert. Each `true` below
    /// rests on monotonicity: `bal` / `slow_ballot_seen` never
    /// decrease, `fast_sent` / `phase_one_done` (per ballot) /
    /// `decided` / `val.is_some()` are never unset, tallies only grow,
    /// and future `my_ballot` assignments come from
    /// [`Ballot::next_owned_by`], which is strictly greater than the
    /// then-current `bal`.
    fn message_is_noop(&self, from: ProcessId, msg: &FabMsg<V>) -> bool {
        if self.pinned.is_none() {
            return false;
        }
        let n = self.cfg.n();
        match msg {
            FabMsg::Heartbeat => true,
            FabMsg::Forward(_) => self.me != COORDINATOR || self.fast_sent,
            FabMsg::Fast(_) => {
                from != COORDINATOR || self.bal != Ballot::FAST || self.val.is_some()
            }
            FabMsg::Accepted(b, v) => {
                if *b == Ballot::FAST {
                    // Idempotent redelivery: the tally entry exists, so
                    // neither the tally nor `check_learned`'s verdict
                    // can change.
                    self.fast_tally.voters(v).contains(from)
                } else {
                    *b < self.slow_ballot_seen
                        || (*b == self.slow_ballot_seen && self.slow_tally.voters(v).contains(from))
                }
            }
            FabMsg::NewBallot(b) => from != b.owner(n) || *b <= self.bal,
            FabMsg::Promise { bal, .. } => {
                if bal.owner(n) != self.me {
                    return true;
                }
                match self.my_ballot {
                    Some(mb) if *bal < mb => true,
                    // Re-opening the same ballot is only possible while
                    // `bal` trails it (`next_owned_by` skips past
                    // otherwise), so a completed phase one at a
                    // caught-up ballot is final.
                    Some(mb) if *bal == mb => self.phase_one_done && self.bal >= mb,
                    _ => *bal <= self.bal,
                }
            }
            FabMsg::Slow(b, _) => from != b.owner(n) || !b.is_slow() || *b < self.bal,
            FabMsg::Decide(v) => self.decide_tally.voters(v).contains(from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_byz::{ByzBehavior, ByzPlan};
    use twostep_sim::{SimulationBuilder, SyncRunner};
    use twostep_types::{SystemConfig, Time};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// A crash-model `SystemConfig` with the same `n`, to drive the
    /// simulator (which only reads `n` and the crash sets from it).
    fn sim_cfg(byz: ByzConfig) -> SystemConfig {
        SystemConfig::new(byz.n(), byz.f(), byz.f()).unwrap()
    }

    #[test]
    fn coordinator_value_decides_everywhere_at_two_delta() {
        let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap(); // n=6
        let outcome = SyncRunner::new(sim_cfg(byz)).run(|q| FastBft::new(byz, q, 7u64));
        for i in 0..6 {
            assert_eq!(
                outcome.decision_time_of(p(i)),
                Some(Time::ZERO + Duration::deltas(2)),
                "p{i}"
            );
        }
        assert!(outcome.agreement());
    }

    #[test]
    fn contending_proposals_yield_the_coordinator_value() {
        let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap();
        let outcome =
            SyncRunner::new(sim_cfg(byz)).run(|q| FastBft::new(byz, q, u64::from(q.as_u32())));
        assert!(outcome.agreement());
        assert_eq!(*outcome.decided_values()[0], 0, "p0 is the fast proposer");
        let (fast, _) = outcome.fast_deciders();
        assert_eq!(fast.len(), 6);
    }

    #[test]
    fn fast_path_survives_f_silent_processes_at_the_bound() {
        // n = 5f+1 = 11, f = 2: crashing f acceptors leaves exactly a
        // fast quorum of 4f+1 = 9 echoes.
        let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 2).unwrap();
        let crashed: ProcessSet = [p(9), p(10)].into_iter().collect();
        let outcome = SyncRunner::new(sim_cfg(byz))
            .crashed(crashed)
            .run(|q| FastBft::new(byz, q, 5u64));
        let (fast, v) = outcome.fast_deciders();
        assert_eq!(v, Some(5));
        assert_eq!(fast.len(), 9, "all nine correct processes two-step");
        assert_eq!(
            outcome.decision_time_of(p(0)),
            Some(Time::ZERO + Duration::deltas(2))
        );
    }

    #[test]
    fn below_the_bound_one_silence_kills_the_fast_path_but_not_agreement() {
        // n = 5f = 5: the fast quorum (5) exceeds the honest capacity
        // (4), so with one crash nobody two-steps — recovery certifies
        // the fast-round value and finishes on the slow path.
        let byz = ByzConfig::new(5, 1, ByzVariant::Fab).unwrap();
        assert!(!byz.fast_path_live());
        let crashed: ProcessSet = [p(4)].into_iter().collect();
        let outcome = SyncRunner::new(sim_cfg(byz))
            .crashed(crashed)
            .horizon(Duration::deltas(60))
            .run(|q| FastBft::new(byz, q, u64::from(q.as_u32())));
        let (fast, _) = outcome.fast_deciders();
        assert!(fast.is_empty(), "no fast quorum can form at n = 5f");
        assert!(outcome.all_correct_decided());
        assert!(outcome.agreement());
        assert_eq!(
            *outcome.decided_values()[0],
            0,
            "recovery must certify the fast-round value, not invent one"
        );
    }

    #[test]
    fn tight_variant_two_steps_with_two_fewer_processes() {
        // n = 5f−1 = 9 at f = 2: the Tight fast quorum (7) still fits
        // the honest capacity after f crashes.
        let byz = ByzConfig::minimal_fast(ByzVariant::Tight, 2).unwrap();
        assert_eq!(byz.n(), 9);
        let crashed: ProcessSet = [p(7), p(8)].into_iter().collect();
        let outcome = SyncRunner::new(sim_cfg(byz))
            .crashed(crashed)
            .run(|q| FastBft::new(byz, q, 3u64));
        let (fast, v) = outcome.fast_deciders();
        assert_eq!(v, Some(3));
        assert_eq!(fast.len(), 7);
    }

    #[test]
    fn equivocating_acceptor_cannot_break_honest_agreement() {
        // One acceptor equivocates its echoes; the five honest
        // acceptors still form a fast quorum for the true value, and
        // every honest process decides it.
        let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap(); // n=6
        let plan = ByzPlan::honest(42).with(p(3), ByzBehavior::Equivocate);
        let outcome = SyncRunner::new(sim_cfg(byz))
            .horizon(Duration::deltas(60))
            .run(|q| plan.wrap(FastBft::new(byz, q, 9u64)));
        assert!(outcome.all_correct_decided());
        assert!(outcome.agreement());
        assert_eq!(*outcome.decided_values()[0], 9);
    }

    #[test]
    fn forged_promises_cannot_divert_recovery() {
        // n = 5f with one *forging* process: the fast path is dead
        // (quorum 5 > 4 truthful echoes), so recovery runs with a
        // Byzantine reporter in every promise quorum — certification
        // must still pick the real fast-round value.
        let byz = ByzConfig::new(5, 1, ByzVariant::Fab).unwrap();
        let plan = ByzPlan::honest(7).with(p(4), ByzBehavior::Forge);
        let outcome = SyncRunner::new(sim_cfg(byz))
            .horizon(Duration::deltas(60))
            .run(|q| plan.wrap(FastBft::new(byz, q, u64::from(q.as_u32()))));
        let honest: Vec<u32> = (0..4)
            .filter_map(|i| outcome.decision_time_of(p(i)).map(|_| i))
            .collect();
        assert!(!honest.is_empty(), "honest processes must decide");
        let decided: Vec<&u64> = outcome.decided_values();
        assert!(
            decided.iter().all(|v| **v < 5),
            "decision {decided:?} must be a real proposal, not a forgery"
        );
    }

    #[test]
    fn lone_forged_decide_gossip_is_inert() {
        // A single (possibly forged) `Decide` claim must not be
        // adopted; `f+1` matching reports — at least one honest — must.
        let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap(); // f=1
        let mut learner: FastBft<u64> = FastBft::passive(byz, p(5));
        let mut eff = Effects::new();
        learner.on_message(p(1), FabMsg::Decide(0x8000_0000_0000_0001), &mut eff);
        assert_eq!(learner.decided_value(), None, "one report is no proof");
        learner.on_message(p(2), FabMsg::Decide(7), &mut eff);
        learner.on_message(p(3), FabMsg::Decide(7), &mut eff);
        assert_eq!(learner.decided_value(), Some(&7));
    }

    #[test]
    fn randomized_schedules_agree() {
        for seed in 0u64..10 {
            let byz = ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap();
            let outcome = SimulationBuilder::new(sim_cfg(byz))
                .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
                .delivery_order(twostep_sim::DeliveryOrder::randomized(seed))
                .build(|q| FastBft::new(byz, q, u64::from(q.as_u32())))
                .run_until_all_decided(Time::ZERO + Duration::deltas(120));
            let decisions = outcome.trace.decisions();
            if let Some((_, first, _)) = decisions.first() {
                assert!(decisions.iter().all(|(_, v, _)| v == first), "seed {seed}");
            }
            assert!(outcome.all_correct_decided(), "seed {seed}");
        }
    }

    #[test]
    fn corruptible_plumbing_reaches_every_payload() {
        let mut m: FabMsg<u64> = FabMsg::Fast(7);
        assert!(m.forge_value(1));
        assert!(matches!(m, FabMsg::Fast(v) if v != 7));
        assert!(!FabMsg::<u64>::Heartbeat.forge_value(1));
        assert!(!FabMsg::<u64>::Heartbeat.lie_ballot(1));
        let mut nb: FabMsg<u64> = FabMsg::NewBallot(Ballot::new(3));
        assert!(!nb.forge_value(1), "NewBallot carries no value");
        assert!(nb.lie_ballot(1));
        assert!(matches!(nb, FabMsg::NewBallot(b) if b != Ballot::new(3)));
        let mut pr: FabMsg<u64> = FabMsg::Promise {
            bal: Ballot::new(2),
            vbal: Ballot::FAST,
            vval: Some(5),
            proposed: None,
        };
        assert!(pr.forge_value(9), "a fast-round claim is a first-party lie");
        assert!(matches!(&pr, FabMsg::Promise { vval: Some(v), .. } if *v != 5));
        assert!(!pr.lie_ballot(9), "promises are certificate-pinned");
        let mut slow_pr: FabMsg<u64> = FabMsg::Promise {
            bal: Ballot::new(2),
            vbal: Ballot::new(1),
            vval: Some(5),
            proposed: None,
        };
        assert!(
            !slow_pr.forge_value(9),
            "a slow (vbal, vval) pair quotes the leader's certificate"
        );
        let mut mixed_pr: FabMsg<u64> = FabMsg::Promise {
            bal: Ballot::new(2),
            vbal: Ballot::new(1),
            vval: Some(5),
            proposed: Some(3),
        };
        assert!(mixed_pr.forge_value(9), "own proposal is still forgeable");
        assert!(
            matches!(&mixed_pr, FabMsg::Promise { vval: Some(5), proposed: Some(p), .. } if *p != 3),
            "the certified pair survives while `proposed` is corrupted"
        );
    }

    /// Drives `me` through Ω suspicion of everyone else and a
    /// `NEW_BALLOT` firing, so it opens the first slow ballot it owns.
    /// Returns the opened ballot.
    fn become_recovery_leader(fb: &mut FastBft<u64>, n: usize) -> Ballot {
        let mut eff = Effects::new();
        fb.on_timer(TimerId::SUSPECT, &mut eff);
        fb.on_timer(TimerId::NEW_BALLOT, &mut eff);
        let b = Ballot::FAST.next_owned_by(fb.id(), n);
        assert!(
            eff.sends
                .iter()
                .any(|(_, m)| matches!(m, FabMsg::NewBallot(nb) if *nb == b)),
            "leader must open ballot {b}"
        );
        b
    }

    #[test]
    fn forged_slow_reports_cannot_break_floor_recovery() {
        // The REVIEW.md high-severity corner: n = 3f+1 = 4, where the
        // intersection of a slow-decided value's accepting quorum with
        // a later promise quorum holds only n−2f = 2 reporters, of
        // which just n−3f = 1 is guaranteed honest — below the f+1 = 2
        // certification threshold if the Byzantine member could forge
        // its report. The certificate pin on a Promise's slow
        // (vbal, vval) pair is what closes the gap: the forger's
        // attempt leaves the quoted pair intact, so the leader still
        // sees two matching reports and re-proposes the decided value.
        let byz = ByzConfig::new(4, 1, ByzVariant::Fab).unwrap();
        let mut leader: FastBft<u64> = FastBft::passive(byz, p(2));
        let b2 = become_recovery_leader(&mut leader, 4);

        // Value 7 was slow-decided at ballot 1 by quorum {p0, p1, p3};
        // the promise quorum is {p0, p2, p3}, so the intersection with
        // the accepting quorum is {p0, p3} — and p3 is the traitor.
        let mut byz_report: FabMsg<u64> = FabMsg::Promise {
            bal: b2,
            vbal: Ballot::new(1),
            vval: Some(7),
            proposed: Some(3),
        };
        assert!(byz_report.forge_value(0xDEAD), "forger attacks its report");

        let mut eff = Effects::new();
        leader.on_message(
            p(2),
            FabMsg::Promise {
                bal: b2,
                vbal: Ballot::FAST,
                vval: None,
                proposed: None,
            },
            &mut eff,
        );
        leader.on_message(
            p(0),
            FabMsg::Promise {
                bal: b2,
                vbal: Ballot::new(1),
                vval: Some(7),
                proposed: Some(0),
            },
            &mut eff,
        );
        leader.on_message(p(3), byz_report, &mut eff);

        let slow: Vec<_> = eff
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                FabMsg::Slow(b, v) => Some((*b, *v)),
                _ => None,
            })
            .collect();
        assert_eq!(slow.len(), 4, "phase two must broadcast to all");
        assert!(
            slow.iter().all(|(b, v)| *b == b2 && *v == 7),
            "recovery must re-propose the slow-decided value, got {slow:?}"
        );
    }

    #[test]
    fn tight_recovery_waits_for_the_coordinator_report() {
        // Tight certification reads the coordinator's report, so a
        // promise quorum that excludes `p0` must not complete phase
        // one — otherwise a fast decision only the coordinator can
        // vouch for could be contradicted (the REVIEW.md medium
        // finding, live at n = 4, f = 1 where honest fast witnesses
        // inside a promise quorum can number just one).
        let byz = ByzConfig::new(4, 1, ByzVariant::Tight).unwrap();
        let mut leader: FastBft<u64> = FastBft::passive(byz, p(1));
        let b1 = become_recovery_leader(&mut leader, 4);

        let mut eff = Effects::new();
        for i in [1u32, 2, 3] {
            leader.on_message(
                p(i),
                FabMsg::Promise {
                    bal: b1,
                    vbal: Ballot::FAST,
                    vval: None,
                    proposed: Some(u64::from(i)),
                },
                &mut eff,
            );
        }
        assert!(
            !eff.sends.iter().any(|(_, m)| matches!(m, FabMsg::Slow(..))),
            "a full quorum without p0 must not certify under Tight"
        );

        leader.on_message(
            p(0),
            FabMsg::Promise {
                bal: b1,
                vbal: Ballot::FAST,
                vval: None,
                proposed: Some(5),
            },
            &mut eff,
        );
        let slow: Vec<_> = eff
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                FabMsg::Slow(b, v) => Some((*b, *v)),
                _ => None,
            })
            .collect();
        assert_eq!(slow.len(), 4);
        assert!(
            slow.iter().all(|(b, v)| *b == b1 && *v == 5),
            "certification must be the coordinator's reported value, got {slow:?}"
        );
    }
}
