//! Classic single-decree Paxos.

use serde::{Deserialize, Serialize};

use twostep_telemetry::{ObserverHandle, Path};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::quorum::Collector;
use twostep_types::relabel::RelabelHash;
use twostep_types::{Ballot, Duration, ProcessId, ProcessSet, SystemConfig, Value, DELTA};

/// Paxos wire messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaxosMsg<V> {
    /// Phase-1 prepare.
    OneA(Ballot),
    /// Phase-1 promise with the last vote.
    OneB {
        /// Ballot being promised.
        bal: Ballot,
        /// Last voted ballot.
        vbal: Ballot,
        /// Last voted value.
        val: Option<V>,
    },
    /// Phase-2 proposal.
    TwoA(Ballot, V),
    /// Phase-2 vote.
    TwoB(Ballot, V),
    /// Decision dissemination.
    Decide(V),
    /// Ω liveness beacon.
    Heartbeat,
}

// The model checker's symmetry reduction asks message payloads for a
// relabeled content hash; declining every permutation (the
// [`RelabelHash`] default) soundly degrades symmetry to the identity
// for this baseline.
impl<V> RelabelHash for PaxosMsg<V> {}

/// Leader-driven single-decree Paxos over `n ≥ 2f+1` processes.
///
/// The initial leader is `p0`, whose first ballot is *pre-established*:
/// `p0` skips phase 1 for its lowest ballot (safe: no smaller ballot
/// exists) and proposes directly, reaching a decision at the leader in
/// two message delays — the steady-state latency the paper's
/// introduction attributes to leader-driven protocols. If the leader
/// crashes, followers detect it via heartbeats (Ω) and the next leader
/// runs a full ballot (phase 1 + phase 2).
///
/// Paxos is `f`-resilient but **not** e-two-step for any `e > 0`: with
/// the initial leader in `E`, no process can decide by `2Δ`.
///
/// # Example
///
/// ```rust
/// use twostep_baselines::Paxos;
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ProcessId, SystemConfig, Time, Duration};
///
/// let cfg = SystemConfig::new(3, 1, 1)?;
/// let outcome = SyncRunner::new(cfg)
///     .run(|p| Paxos::new(cfg, p, u64::from(p.as_u32())));
/// // The pre-established leader p0 decides its own value at 2Δ.
/// assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&0));
/// assert_eq!(
///     outcome.decision_time_of(ProcessId::new(0)),
///     Some(Time::ZERO + Duration::deltas(2))
/// );
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Paxos<V> {
    cfg: SystemConfig,
    me: ProcessId,
    /// Own proposal (every process has one; a follower's value is used
    /// only if it ever becomes leader).
    initial: V,
    bal: Ballot,
    vbal: Ballot,
    val: Option<V>,
    decided: Option<V>,
    // Leader state.
    my_ballot: Option<Ballot>,
    onebs: Collector<(Ballot, Option<V>)>,
    phase_one_done: bool,
    proposal: Option<V>,
    twobs: ProcessSet,
    // Ω (same heartbeat scheme as the core protocol).
    heard: ProcessSet,
    suspected: ProcessSet,
    // Telemetry hooks (detached by default).
    obs: ObserverHandle,
}

const HEARTBEAT_PERIOD: Duration = DELTA;
const SUSPECT_PERIOD: Duration = Duration::from_units(3 * DELTA.units());
const RETRY_PERIOD: Duration = Duration::from_units(5 * DELTA.units());

impl<V: Value> Paxos<V> {
    /// Creates a Paxos instance for `me` with proposal `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`.
    pub fn new(cfg: SystemConfig, me: ProcessId, initial: V) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        Paxos {
            cfg,
            me,
            initial,
            bal: Ballot::FAST, // "no promise yet"
            vbal: Ballot::FAST,
            val: None,
            decided: None,
            my_ballot: None,
            onebs: Collector::new(),
            phase_one_done: false,
            proposal: None,
            twobs: ProcessSet::new(),
            heard: ProcessSet::new(),
            suspected: ProcessSet::new(),
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks (builder style). Paxos has no fast
    /// path: leader decisions report [`Path::Slow`], follower decisions
    /// report [`Path::Learned`].
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Current ballot.
    pub fn ballot(&self) -> Ballot {
        self.bal
    }

    /// The decision, if reached.
    pub fn decided_value(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    fn leader(&self) -> ProcessId {
        self.suspected
            .complement(self.cfg.n())
            .min()
            .unwrap_or(self.me)
    }

    fn record_decision(&mut self, v: V, path: Path, eff: &mut Effects<V, PaxosMsg<V>>) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.obs.decided(self.me, path);
            eff.decide(v);
        } else if self.decided.as_ref() != Some(&v) {
            eff.decide(v); // surfaced for the checkers
        }
    }

    /// Starts phase 2 for ballot `b` with value `v`.
    fn phase_two(&mut self, b: Ballot, v: V, eff: &mut Effects<V, PaxosMsg<V>>) {
        self.proposal = Some(v.clone());
        self.twobs = ProcessSet::new();
        eff.broadcast_all(PaxosMsg::TwoA(b, v), self.cfg.n());
    }

    fn start_ballot(&mut self, eff: &mut Effects<V, PaxosMsg<V>>) {
        let b = self.bal.next_owned_by(self.me, self.cfg.n());
        self.my_ballot = Some(b);
        self.onebs.clear();
        self.phase_one_done = false;
        self.proposal = None;
        self.twobs = ProcessSet::new();
        self.obs.slow_path_entered(self.me);
        eff.broadcast_all(PaxosMsg::OneA(b), self.cfg.n());
    }
}

impl<V: Value> Protocol<V> for Paxos<V> {
    type Message = PaxosMsg<V>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, eff: &mut Effects<V, PaxosMsg<V>>) {
        eff.broadcast_others(PaxosMsg::Heartbeat, self.cfg.n(), self.me);
        eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
        eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
        eff.set_timer(TimerId::NEW_BALLOT, Duration::from_units(2 * DELTA.units()));
        if self.me == ProcessId::new(0) {
            // Pre-established leadership: p0 owns the smallest positive
            // ballot ≡ 0 (mod n), i.e. ballot n; no lower ballot exists,
            // so skipping phase 1 is safe.
            let b = Ballot::FAST.next_owned_by(self.me, self.cfg.n());
            self.my_ballot = Some(b);
            self.phase_one_done = true;
            self.phase_two(b, self.initial.clone(), eff);
        }
    }

    fn on_propose(&mut self, _value: V, _eff: &mut Effects<V, PaxosMsg<V>>) {
        // Proposals are fixed at construction, as in the task setting.
    }

    fn on_message(&mut self, from: ProcessId, msg: PaxosMsg<V>, eff: &mut Effects<V, PaxosMsg<V>>) {
        self.heard.insert(from);
        match msg {
            PaxosMsg::Heartbeat => {}

            PaxosMsg::OneA(b) => {
                if b > self.bal {
                    self.bal = b;
                    self.obs.ballot_advanced(self.me);
                    eff.send(
                        from,
                        PaxosMsg::OneB {
                            bal: b,
                            vbal: self.vbal,
                            val: self.val.clone(),
                        },
                    );
                }
            }

            PaxosMsg::OneB { bal, vbal, val } => {
                if self.my_ballot == Some(bal) && !self.phase_one_done {
                    self.onebs.insert(from, (vbal, val));
                    if self.onebs.len() >= self.cfg.slow_quorum() {
                        self.phase_one_done = true;
                        // Adopt the vote of the highest ballot, else our own.
                        let adopted = self
                            .onebs
                            .iter()
                            .filter(|(_, (_, v))| v.is_some())
                            .max_by_key(|(_, (vb, _))| *vb)
                            .and_then(|(_, (_, v))| v.clone())
                            .unwrap_or_else(|| self.initial.clone());
                        self.phase_two(bal, adopted, eff);
                    }
                }
            }

            PaxosMsg::TwoA(b, v) => {
                if self.bal <= b {
                    if b > self.bal {
                        self.obs.ballot_advanced(self.me);
                    }
                    self.bal = b;
                    self.vbal = b;
                    self.val = Some(v.clone());
                    eff.send(from, PaxosMsg::TwoB(b, v));
                }
            }

            PaxosMsg::TwoB(b, v) => {
                if self.my_ballot == Some(b)
                    && self.proposal.as_ref() == Some(&v)
                    && self.decided.is_none()
                {
                    self.twobs.insert(from);
                    if self.twobs.len() >= self.cfg.slow_quorum() {
                        self.record_decision(v.clone(), Path::Slow, eff);
                        eff.broadcast_others(PaxosMsg::Decide(v), self.cfg.n(), self.me);
                    }
                }
            }

            PaxosMsg::Decide(v) => {
                self.record_decision(v, Path::Learned, eff);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, PaxosMsg<V>>) {
        match timer {
            TimerId::HEARTBEAT => {
                eff.broadcast_others(PaxosMsg::Heartbeat, self.cfg.n(), self.me);
                eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            }
            TimerId::SUSPECT => {
                let before = self.leader();
                let mut trusted = self.heard;
                trusted.insert(self.me);
                self.suspected = trusted.complement(self.cfg.n());
                self.heard = ProcessSet::new();
                let after = self.leader();
                if before != after {
                    self.obs.leader_changed(self.me, after);
                }
                eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
            }
            TimerId::NEW_BALLOT => {
                eff.set_timer(TimerId::NEW_BALLOT, RETRY_PERIOD);
                if let Some(v) = self.decided.clone() {
                    eff.broadcast_others(PaxosMsg::Decide(v), self.cfg.n(), self.me);
                } else if self.leader() == self.me {
                    self.start_ballot(eff);
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<V> {
        self.decided.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_sim::{SimulationBuilder, SyncRunner};
    use twostep_types::{ProcessSet, Time};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn cfg5() -> SystemConfig {
        SystemConfig::new(5, 1, 2).unwrap()
    }

    #[test]
    fn stable_leader_decides_in_two_delays() {
        let cfg = cfg5();
        let outcome = SyncRunner::new(cfg).run(|q| Paxos::new(cfg, q, u64::from(q.as_u32())));
        assert_eq!(outcome.decision_of(p(0)), Some(&0));
        assert_eq!(
            outcome.decision_time_of(p(0)),
            Some(Time::ZERO + Duration::deltas(2))
        );
        // Followers learn one delay later.
        for i in 1..5 {
            assert_eq!(outcome.decision_of(p(i)), Some(&0));
            assert_eq!(
                outcome.decision_time_of(p(i)),
                Some(Time::ZERO + Duration::deltas(3))
            );
        }
        assert!(outcome.agreement());
    }

    #[test]
    fn leader_crash_delays_decision_beyond_two_delta() {
        let cfg = cfg5();
        let crashed: ProcessSet = [p(0)].into_iter().collect();
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .horizon(Duration::deltas(60))
            .run(|q| Paxos::new(cfg, q, u64::from(q.as_u32())));
        assert!(outcome.all_correct_decided(), "new leader must take over");
        assert!(outcome.agreement());
        let (fast, _) = outcome.fast_deciders();
        assert!(
            fast.is_empty(),
            "Paxos cannot be two-step without its leader"
        );
        // The decision is the new leader's value (p1), proposed fresh.
        assert_eq!(*outcome.decided_values()[0], 1);
    }

    #[test]
    fn non_leader_crashes_tolerated_up_to_f() {
        let cfg = cfg5();
        let crashed: ProcessSet = [p(3), p(4)].into_iter().collect();
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .horizon(Duration::deltas(30))
            .run(|q| Paxos::new(cfg, q, u64::from(q.as_u32())));
        assert!(outcome.all_correct_decided());
        assert_eq!(*outcome.decided_values()[0], 0, "leader's value wins");
    }

    #[test]
    fn value_adoption_across_ballots() {
        // Leader p0 decides 0; p0's Decide is only partially delivered
        // (we crash p0 right after phase 2 completes at the leader);
        // the next leader must adopt 0, not its own value.
        let cfg = cfg5();
        let outcome = SimulationBuilder::new(cfg)
            .crash_at(p(0), Time::ZERO + Duration::deltas(2))
            .build(|q| Paxos::new(cfg, q, u64::from(q.as_u32())))
            .run_until_all_decided(Time::ZERO + Duration::deltas(60));
        // p0 decided at exactly 2Δ (deliveries beat the crash? crash is
        // class 0 — it precedes deliveries at 2Δ, so p0 never decides).
        // Either way: acceptors voted 0 in ballot 5, so any later ballot
        // must re-propose 0.
        let decisions = outcome.trace.decisions();
        assert!(!decisions.is_empty());
        for (_, v, _) in &decisions {
            assert_eq!(*v, 0, "phase-1 adoption must preserve the voted value");
        }
        assert!(outcome.all_correct_decided());
    }

    #[test]
    fn randomized_schedules_agree() {
        for seed in 0u64..10 {
            let cfg = cfg5();
            let outcome = SimulationBuilder::new(cfg)
                .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
                .delivery_order(twostep_sim::DeliveryOrder::randomized(seed))
                .build(|q| Paxos::new(cfg, q, u64::from(q.as_u32())))
                .run_until_all_decided(Time::ZERO + Duration::deltas(100));
            let decisions = outcome.trace.decisions();
            if let Some((_, first, _)) = decisions.first() {
                assert!(decisions.iter().all(|(_, v, _)| v == first), "seed {seed}");
            }
            assert!(outcome.all_correct_decided(), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let _ = Paxos::new(cfg5(), p(7), 0u64);
    }
}
