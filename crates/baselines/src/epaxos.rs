//! EPaxos-lite: a single-shot reduction of Egalitarian Paxos's
//! per-command commit protocol (Moraru, Andersen, Kaminsky; SOSP 2013).
//!
//! The paper's motivating observation is that EPaxos commits commands in
//! two message delays under `e = ⌈(f+1)/2⌉` failures with only
//! `n = 2f+1 = 2e+f-1` processes, seemingly contradicting Lamport's
//! `2e+f+1` bound. This module reproduces exactly that datapoint: the
//! commit path of one command.
//!
//! Flow (for one command proposed at its *command leader* `L`):
//!
//! 1. `L` broadcasts `PreAccept(cmd, deps)` with its local dependency
//!    set (the commands it has seen).
//! 2. Each replica merges the command into its interference record and
//!    replies with its own view of the dependencies.
//! 3. If a **fast quorum** of `f + ⌊(f+1)/2⌋` replies (counting `L`)
//!    all match `L`'s dependencies, the command **commits fast** — two
//!    message delays.
//! 4. Otherwise `L` runs an **Accept** round on the union of the
//!    reported dependencies with a majority quorum, then commits — four
//!    message delays.
//!
//! Scope (documented substitution, see `DESIGN.md`): recovery of a
//! *crashed command leader* — EPaxos §4.7 — is not implemented; the
//! experiments never crash a command leader mid-commit. Note also that
//! `decision()` here means "own command committed (with its deps)":
//! EPaxos is a replication protocol, not single-decree consensus, so
//! different processes legitimately "decide" different commands; the
//! consensus-style agreement checkers do not apply. What must agree is
//! the *committed dependency set per command*, which
//! [`EPaxosLite::committed_deps`] exposes for the tests.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use twostep_telemetry::{ObserverHandle, Path};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::relabel::RelabelHash;
use twostep_types::{ProcessId, ProcessSet, SystemConfig, Value};

/// EPaxos-lite wire messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound(deserialize = "V: serde::de::DeserializeOwned + Ord"))]
pub enum EPaxosMsg<V: Ord> {
    /// Leader → replicas: command plus the leader's dependency view.
    PreAccept(V, BTreeSet<V>),
    /// Replica → leader: the replica's dependency view of the command.
    PreAcceptOk(V, BTreeSet<V>),
    /// Leader → replicas: slow-path dependency fixpoint.
    Accept(V, BTreeSet<V>),
    /// Replica → leader: slow-path acknowledgement.
    AcceptOk(V),
    /// Leader → replicas: the command is committed with these deps.
    Commit(V, BTreeSet<V>),
}

// The model checker's symmetry reduction asks message payloads for a
// relabeled content hash; declining every permutation (the
// [`RelabelHash`] default) soundly degrades symmetry to the identity
// for this baseline.
impl<V: Ord> RelabelHash for EPaxosMsg<V> {}

/// How a command committed (latency class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPath {
    /// Fast path: one round trip (two message delays).
    Fast,
    /// Slow path: PreAccept + Accept (four message delays).
    Slow,
}

/// A single-shot EPaxos commit instance at one replica.
///
/// Construct with [`EPaxosLite::new`]; the process proposes its command
/// when `propose(v)` is invoked (or never).
///
/// # Example
///
/// ```rust
/// use twostep_baselines::EPaxosLite;
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ProcessId, SystemConfig, Time, Duration};
///
/// // n = 2f+1 = 5, e = ceil((f+1)/2) = 2: the paper's EPaxos datapoint.
/// let cfg = SystemConfig::new(5, 2, 2)?;
/// let leader = ProcessId::new(0);
/// let outcome = SyncRunner::new(cfg).run_object(
///     |p| EPaxosLite::<u64>::new(cfg, p),
///     vec![(leader, 9, Time::ZERO)],
/// );
/// // Conflict-free: commits fast, at 2Δ.
/// assert_eq!(
///     outcome.decision_time_of(leader),
///     Some(Time::ZERO + Duration::deltas(2))
/// );
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EPaxosLite<V: Ord> {
    cfg: SystemConfig,
    me: ProcessId,
    /// Commands this replica has seen (interference record).
    seen: BTreeSet<V>,
    /// Own command, once proposed.
    cmd: Option<V>,
    /// Leader state: dependency view sent with our PreAccept.
    my_deps: BTreeSet<V>,
    /// Leader state: replies (deps per replica), self included.
    preaccept_deps: BTreeMap<ProcessId, BTreeSet<V>>,
    accept_acks: ProcessSet,
    accept_deps: BTreeSet<V>,
    phase: Phase,
    commit_path: Option<CommitPath>,
    /// Committed commands (own and others') with their final deps.
    committed: BTreeMap<V, BTreeSet<V>>,
    /// Telemetry hooks; detached by default (see [`EPaxosLite::observed`]).
    obs: ObserverHandle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    PreAccepting,
    Accepting,
    Committed,
}

impl<V: Value> EPaxosLite<V> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range, or if `cfg` is not a bare-majority
    /// configuration (`n = 2f+1`, the regime EPaxos runs in).
    pub fn new(cfg: SystemConfig, me: ProcessId) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        assert_eq!(cfg.n(), 2 * cfg.f() + 1, "EPaxos runs with n = 2f+1");
        EPaxosLite {
            cfg,
            me,
            seen: BTreeSet::new(),
            cmd: None,
            my_deps: BTreeSet::new(),
            preaccept_deps: BTreeMap::new(),
            accept_acks: ProcessSet::new(),
            accept_deps: BTreeSet::new(),
            phase: Phase::Idle,
            commit_path: None,
            committed: BTreeMap::new(),
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks (builder style). A fast commit reports
    /// [`Path::Fast`]; a slow (PreAccept + Accept) commit reports
    /// [`Path::Slow`]. Entering the Accept round also reports
    /// `slow_path_entered`.
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// EPaxos's fast-quorum size: `f + ⌊(f+1)/2⌋` (including the
    /// command leader).
    pub fn fast_quorum(cfg: &SystemConfig) -> usize {
        cfg.f() + cfg.f().div_ceil(2)
    }

    /// The number of crashes under which the fast path still works:
    /// `n - fast_quorum = ⌈(f+1)/2⌉`.
    pub fn fast_tolerance(cfg: &SystemConfig) -> usize {
        cfg.n() - Self::fast_quorum(cfg)
    }

    /// How our command committed, if it has.
    pub fn commit_path(&self) -> Option<CommitPath> {
        self.commit_path
    }

    /// The committed dependency set of `cmd`, if this replica knows it.
    pub fn committed_deps(&self, cmd: &V) -> Option<&BTreeSet<V>> {
        self.committed.get(cmd)
    }

    /// All commands this replica has seen.
    pub fn seen(&self) -> &BTreeSet<V> {
        &self.seen
    }

    fn commit(
        &mut self,
        cmd: V,
        deps: BTreeSet<V>,
        path: CommitPath,
        eff: &mut Effects<V, EPaxosMsg<V>>,
    ) {
        self.committed.insert(cmd.clone(), deps.clone());
        self.phase = Phase::Committed;
        self.commit_path = Some(path);
        self.obs.decided(
            self.me,
            match path {
                CommitPath::Fast => Path::Fast,
                CommitPath::Slow => Path::Slow,
            },
        );
        eff.decide(cmd.clone());
        eff.broadcast_others(EPaxosMsg::Commit(cmd, deps), self.cfg.n(), self.me);
    }
}

impl<V: Value> Protocol<V> for EPaxosLite<V> {
    type Message = EPaxosMsg<V>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, _eff: &mut Effects<V, EPaxosMsg<V>>) {}

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, EPaxosMsg<V>>) {
        if self.cmd.is_some() {
            return; // one command per instance
        }
        self.cmd = Some(value.clone());
        self.my_deps = self.seen.clone();
        self.seen.insert(value.clone());
        self.phase = Phase::PreAccepting;
        // The leader counts as one fast-quorum member with deps =
        // my_deps.
        self.preaccept_deps.insert(self.me, self.my_deps.clone());
        eff.broadcast_others(
            EPaxosMsg::PreAccept(value, self.my_deps.clone()),
            self.cfg.n(),
            self.me,
        );
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: EPaxosMsg<V>,
        eff: &mut Effects<V, EPaxosMsg<V>>,
    ) {
        match msg {
            EPaxosMsg::PreAccept(cmd, leader_deps) => {
                // Merge: deps = leader's deps ∪ everything we've seen
                // that isn't the command itself.
                let mut deps = leader_deps;
                for c in &self.seen {
                    if *c != cmd {
                        deps.insert(c.clone());
                    }
                }
                self.seen.insert(cmd.clone());
                eff.send(from, EPaxosMsg::PreAcceptOk(cmd, deps));
            }

            EPaxosMsg::PreAcceptOk(cmd, deps) => {
                if self.phase != Phase::PreAccepting || self.cmd.as_ref() != Some(&cmd) {
                    return;
                }
                self.preaccept_deps.insert(from, deps);
                let fq = Self::fast_quorum(&self.cfg);
                if self.preaccept_deps.len() >= fq {
                    // Fast path: the first fq replies must unanimously
                    // match the leader's deps.
                    let unanimous = self.preaccept_deps.values().all(|d| *d == self.my_deps);
                    if unanimous {
                        self.commit(cmd, self.my_deps.clone(), CommitPath::Fast, eff);
                    } else {
                        // Slow path: fix the union and run Accept.
                        let union: BTreeSet<V> = self
                            .preaccept_deps
                            .values()
                            .flat_map(|d| d.iter().cloned())
                            .collect();
                        self.obs.slow_path_entered(self.me);
                        self.phase = Phase::Accepting;
                        self.accept_deps = union.clone();
                        self.accept_acks = ProcessSet::new();
                        self.accept_acks.insert(self.me);
                        eff.broadcast_others(EPaxosMsg::Accept(cmd, union), self.cfg.n(), self.me);
                    }
                }
            }

            EPaxosMsg::Accept(cmd, deps) => {
                self.seen.insert(cmd.clone());
                for c in &deps {
                    self.seen.insert(c.clone());
                }
                eff.send(from, EPaxosMsg::AcceptOk(cmd));
            }

            EPaxosMsg::AcceptOk(cmd) => {
                if self.phase != Phase::Accepting || self.cmd.as_ref() != Some(&cmd) {
                    return;
                }
                self.accept_acks.insert(from);
                if self.accept_acks.len() > self.cfg.f() {
                    let deps = self.accept_deps.clone();
                    self.commit(cmd, deps, CommitPath::Slow, eff);
                }
            }

            EPaxosMsg::Commit(cmd, deps) => {
                self.seen.insert(cmd.clone());
                self.committed.insert(cmd, deps);
            }
        }
    }

    fn on_timer(&mut self, _timer: TimerId, _eff: &mut Effects<V, EPaxosMsg<V>>) {}

    fn decision(&self) -> Option<V> {
        // "Decision" = own command committed (latency probe; see module
        // docs — this is not single-decree consensus agreement).
        match self.phase {
            Phase::Committed => self.cmd.clone(),
            Phase::Idle | Phase::PreAccepting | Phase::Accepting => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_sim::SyncRunner;
    use twostep_types::{Duration, Time};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn cfg5() -> SystemConfig {
        // f = 2, e = ceil((f+1)/2) = 2, n = 2f+1 = 5.
        SystemConfig::new(5, 2, 2).unwrap()
    }

    #[test]
    fn quorum_arithmetic_matches_the_paper() {
        let cfg = cfg5();
        assert_eq!(EPaxosLite::<u64>::fast_quorum(&cfg), 3); // f + floor((f+1)/2) = 2+1
        assert_eq!(EPaxosLite::<u64>::fast_tolerance(&cfg), 2); // = e
                                                                // And the headline identity: n = 2e+f-1.
        assert_eq!(cfg.n(), 2 * 2 + 2 - 1);
    }

    #[test]
    fn conflict_free_commit_is_fast_at_two_delta() {
        let cfg = cfg5();
        let outcome = SyncRunner::new(cfg).run_object(
            |q| EPaxosLite::<u64>::new(cfg, q),
            vec![(p(0), 9, Time::ZERO)],
        );
        assert_eq!(
            outcome.decision_time_of(p(0)),
            Some(Time::ZERO + Duration::deltas(2))
        );
        assert_eq!(outcome.procs[0].commit_path(), Some(CommitPath::Fast));
        assert_eq!(outcome.procs[0].committed_deps(&9), Some(&BTreeSet::new()));
    }

    #[test]
    fn fast_commit_survives_e_crashes() {
        // e = 2 crashes: fast quorum of 3 (leader + 2) still reachable.
        let cfg = cfg5();
        let crashed: ProcessSet = [p(3), p(4)].into_iter().collect();
        let outcome = SyncRunner::new(cfg).crashed(crashed).run_object(
            |q| EPaxosLite::<u64>::new(cfg, q),
            vec![(p(0), 9, Time::ZERO)],
        );
        assert_eq!(
            outcome.decision_time_of(p(0)),
            Some(Time::ZERO + Duration::deltas(2))
        );
        assert_eq!(outcome.procs[0].commit_path(), Some(CommitPath::Fast));
    }

    #[test]
    fn beyond_e_crashes_no_fast_commit() {
        let cfg = cfg5();
        let crashed: ProcessSet = [p(2), p(3), p(4)].into_iter().collect();
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .horizon(Duration::deltas(10))
            .run_object(
                |q| EPaxosLite::<u64>::new(cfg, q),
                vec![(p(0), 9, Time::ZERO)],
            );
        assert_eq!(
            outcome.decision_of(p(0)),
            None,
            "3 > e crashes leave the fast quorum unreachable (and f is exceeded)"
        );
    }

    #[test]
    fn concurrent_conflicting_commands_take_the_slow_path() {
        let cfg = cfg5();
        let outcome = SyncRunner::new(cfg)
            .horizon(Duration::deltas(10))
            .run_object(
                |q| EPaxosLite::<u64>::new(cfg, q),
                vec![(p(0), 9, Time::ZERO), (p(4), 5, Time::ZERO)],
            );
        // Both commit, but at least one saw interference: the replicas
        // reached by both PreAccepts report the other command in deps.
        assert!(outcome.decision_of(p(0)).is_some());
        assert!(outcome.decision_of(p(4)).is_some());
        let paths = [
            outcome.procs[0].commit_path(),
            outcome.procs[4].commit_path(),
        ];
        assert!(
            paths.contains(&Some(CommitPath::Slow)),
            "interference must push someone onto the slow path, got {paths:?}"
        );
        // Dependency agreement: every replica that knows a command's
        // committed deps knows the same set.
        for cmd in [9u64, 5] {
            let views: Vec<_> = outcome
                .procs
                .iter()
                .filter_map(|r| r.committed_deps(&cmd))
                .collect();
            assert!(!views.is_empty());
            assert!(
                views.windows(2).all(|w| w[0] == w[1]),
                "deps of {cmd} diverged"
            );
        }
        // And the dependency graph is not empty: at least one of the two
        // commands depends on the other (possibly both — that is the
        // cycle EPaxos breaks at execution time by sequence numbers).
        let dep_edges = [9u64, 5]
            .iter()
            .filter_map(|c| {
                outcome.procs[0]
                    .committed_deps(c)
                    .or(outcome.procs[4].committed_deps(c))
            })
            .map(|d| d.len())
            .sum::<usize>();
        assert!(dep_edges >= 1);
    }

    #[test]
    fn sequential_commands_stay_fast() {
        // A command proposed after the first one committed everywhere
        // sees consistent deps {first} and takes the fast path.
        let cfg = cfg5();
        let outcome = SyncRunner::new(cfg)
            .horizon(Duration::deltas(20))
            .run_object(
                |q| EPaxosLite::<u64>::new(cfg, q),
                vec![
                    (p(0), 9, Time::ZERO),
                    (p(4), 5, Time::ZERO + Duration::deltas(4)),
                ],
            );
        assert_eq!(outcome.procs[0].commit_path(), Some(CommitPath::Fast));
        assert_eq!(outcome.procs[4].commit_path(), Some(CommitPath::Fast));
        let deps = outcome.procs[4].committed_deps(&5).unwrap();
        assert!(deps.contains(&9), "second command must depend on the first");
    }

    #[test]
    fn repeat_propose_is_ignored() {
        let cfg = cfg5();
        let mut r = EPaxosLite::<u64>::new(cfg, p(0));
        let mut eff = Effects::new();
        r.on_propose(1, &mut eff);
        let sends = eff.sends.len();
        let mut eff2 = Effects::new();
        r.on_propose(2, &mut eff2);
        assert!(eff2.sends.is_empty());
        assert_eq!(sends, 4);
    }

    #[test]
    #[should_panic(expected = "n = 2f+1")]
    fn non_bare_majority_config_rejected() {
        let cfg = SystemConfig::new(7, 2, 2).unwrap();
        let _ = EPaxosLite::<u64>::new(cfg, p(0));
    }
}
