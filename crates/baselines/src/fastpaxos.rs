//! Lamport's Fast Paxos (2006).

use serde::{Deserialize, Serialize};

use twostep_telemetry::{ObserverHandle, Path};
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::quorum::{Collector, VoteTally};
use twostep_types::relabel::RelabelHash;
use twostep_types::{Ballot, Duration, ProcessId, ProcessSet, SystemConfig, Value, DELTA};

/// Fast Paxos wire messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FastPaxosMsg<V> {
    /// A proposer's value entering the fast round (sent to every
    /// acceptor, including the proposer itself, through the network).
    Propose(V),
    /// Recovery phase-1 prepare.
    OneA(Ballot),
    /// Recovery phase-1 report.
    OneB {
        /// Ballot being joined.
        bal: Ballot,
        /// Last voted ballot.
        vbal: Ballot,
        /// Last voted value.
        val: Option<V>,
    },
    /// Recovery phase-2 proposal.
    TwoA(Ballot, V),
    /// A vote, broadcast to every learner (this is Fast Paxos's `n²`
    /// message pattern, unlike the paper's protocol where fast votes go
    /// only to the proposer).
    TwoB(Ballot, V),
    /// Decision gossip.
    Decide(V),
    /// Ω liveness beacon.
    Heartbeat,
}

// The model checker's symmetry reduction asks message payloads for a
// relabeled content hash; declining every permutation (the
// [`RelabelHash`] default) soundly degrades symmetry to the identity
// for this baseline.
impl<V> RelabelHash for FastPaxosMsg<V> {}

/// Fast Paxos over `n ≥ max{2e+f+1, 2f+1}` processes.
///
/// Every process plays proposer, acceptor and learner:
///
/// * **fast round (ballot 0)** — proposers broadcast their value to all
///   acceptors; an acceptor votes for the first value it receives and
///   broadcasts its vote to every learner; a learner decides `v` upon
///   observing a *fast quorum* of `n-e` votes for `v`.
/// * **recovery (slow ballots)** — the Ω leader collects `n-f` `1B`
///   reports and applies Lamport's O4 rule: adopt the highest slow-ballot
///   vote if any; otherwise adopt the value with at least `n-f-e` fast
///   votes in the quorum (unambiguous exactly because `n ≥ 2e+f+1`);
///   otherwise propose its own value. A slow quorum of `n-f` votes
///   decides.
///
/// Contrast with the paper's protocol (`twostep-core`): no `v ≥ initial_val`
/// precondition on fast votes, no proposer-exclusion set, no max-value
/// tie-break — and one more process required.
///
/// # Example
///
/// ```rust
/// use twostep_baselines::FastPaxos;
/// use twostep_sim::SyncRunner;
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_fast_paxos(1, 1)?; // n = 4
/// let outcome = SyncRunner::new(cfg)
///     .favoring(ProcessId::new(2))
///     .run(|p| FastPaxos::new(cfg, p, u64::from(p.as_u32())));
/// let (fast, v) = outcome.fast_deciders();
/// assert!(fast.len() >= 1);
/// assert_eq!(v, Some(2));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FastPaxos<V> {
    cfg: SystemConfig,
    me: ProcessId,
    initial: Option<V>,
    // Acceptor state.
    bal: Ballot,
    vbal: Ballot,
    val: Option<V>,
    // Learner state.
    fast_tally: VoteTally<V>,
    slow_ballot_seen: Ballot,
    slow_tally: VoteTally<V>,
    decided: Option<V>,
    // Coordinator (recovery leader) state.
    my_ballot: Option<Ballot>,
    onebs: Collector<(Ballot, Option<V>)>,
    phase_one_done: bool,
    // Ω.
    heard: ProcessSet,
    suspected: ProcessSet,
    /// Telemetry hooks; detached by default (see [`FastPaxos::observed`]).
    obs: ObserverHandle,
}

const HEARTBEAT_PERIOD: Duration = DELTA;
const SUSPECT_PERIOD: Duration = Duration::from_units(3 * DELTA.units());
const INITIAL_TIMEOUT: Duration = Duration::from_units(2 * DELTA.units());
const RETRY_PERIOD: Duration = Duration::from_units(5 * DELTA.units());

impl<V: Value> FastPaxos<V> {
    /// Creates a Fast Paxos instance for `me` proposing `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`. (The configuration is
    /// *not* required to satisfy `n ≥ 2e+f+1`: experiment E4 runs Fast
    /// Paxos below its bound on purpose, to show O4 turning ambiguous.)
    pub fn new(cfg: SystemConfig, me: ProcessId, initial: V) -> Self {
        let mut fp = Self::passive(cfg, me);
        fp.initial = Some(initial);
        fp
    }

    /// Creates a *passive* instance: it acts as acceptor, learner and
    /// potential recovery coordinator, but proposes nothing until
    /// `propose(v)` is invoked — used to stage lone-proposer scenarios
    /// (Definition A.1-style runs) against Fast Paxos.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `cfg`.
    pub fn passive(cfg: SystemConfig, me: ProcessId) -> Self {
        assert!(me.index() < cfg.n(), "process {me} out of range for {cfg}");
        FastPaxos {
            cfg,
            me,
            initial: None,
            bal: Ballot::FAST,
            vbal: Ballot::FAST,
            val: None,
            fast_tally: VoteTally::new(),
            slow_ballot_seen: Ballot::FAST,
            slow_tally: VoteTally::new(),
            decided: None,
            my_ballot: None,
            onebs: Collector::new(),
            phase_one_done: false,
            heard: ProcessSet::new(),
            suspected: ProcessSet::new(),
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks (builder style). Decisions via a fast
    /// quorum report [`Path::Fast`], slow-quorum decisions report
    /// [`Path::Slow`], and decisions learned from `Decide` gossip report
    /// [`Path::Learned`].
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The decision, if reached.
    pub fn decided_value(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// Current acceptor ballot.
    pub fn ballot(&self) -> Ballot {
        self.bal
    }

    fn leader(&self) -> ProcessId {
        self.suspected
            .complement(self.cfg.n())
            .min()
            .unwrap_or(self.me)
    }

    fn record_decision(&mut self, v: V, path: Path, eff: &mut Effects<V, FastPaxosMsg<V>>) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.obs.decided(self.me, path);
            eff.decide(v);
        } else if self.decided.as_ref() != Some(&v) {
            eff.decide(v); // surfaced for the checkers
        }
    }

    /// Learner rule: a fast quorum at ballot 0 or a slow quorum at the
    /// current slow ballot decides.
    fn check_learned(&mut self, eff: &mut Effects<V, FastPaxosMsg<V>>) {
        if self.decided.is_some() {
            return;
        }
        if let Some(v) = self
            .fast_tally
            .max_value_with_count_at_least(self.cfg.fast_quorum())
            .cloned()
        {
            self.record_decision(v, Path::Fast, eff);
            return;
        }
        if let Some(v) = self
            .slow_tally
            .max_value_with_count_at_least(self.cfg.slow_quorum())
            .cloned()
        {
            self.record_decision(v, Path::Slow, eff);
        }
    }

    /// Lamport's O4 value-selection rule. Returns `None` when the
    /// coordinator has nothing safe to propose (no votes observed and no
    /// own proposal).
    fn o4_select(&self) -> Option<V> {
        // Highest slow-ballot vote wins.
        let bmax = self
            .onebs
            .iter()
            .map(|(_, (vb, _))| *vb)
            .max()
            .unwrap_or(Ballot::FAST);
        if bmax.is_slow() {
            // A slow bmax was read off some report, so a vote at bmax
            // exists; `None` here would mean a malformed report, which
            // degrades to "nothing proposable" rather than panicking.
            return self
                .onebs
                .iter()
                .find(|(_, (vb, _))| *vb == bmax)
                .and_then(|(_, (_, v))| v.clone());
        }
        // Fast votes: any value with ≥ n-f-e votes in Q may have been
        // chosen. With n ≥ 2e+f+1 at most one value qualifies; below the
        // bound this `max` is an arbitrary pick among possibly several —
        // exactly the ambiguity experiment E4 exhibits.
        let mut tally: VoteTally<V> = VoteTally::new();
        for (q, (_, v)) in self.onebs.iter() {
            if let Some(v) = v {
                tally.record(q, v.clone());
            }
        }
        tally
            .max_value_with_count_at_least(self.cfg.recovery_threshold())
            .cloned()
            .or_else(|| self.initial.clone())
    }

    fn start_ballot(&mut self, eff: &mut Effects<V, FastPaxosMsg<V>>) {
        let b = self.bal.next_owned_by(self.me, self.cfg.n());
        self.obs.slow_path_entered(self.me);
        self.my_ballot = Some(b);
        self.onebs.clear();
        self.phase_one_done = false;
        eff.broadcast_all(FastPaxosMsg::OneA(b), self.cfg.n());
    }
}

impl<V: Value> Protocol<V> for FastPaxos<V> {
    type Message = FastPaxosMsg<V>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_start(&mut self, eff: &mut Effects<V, FastPaxosMsg<V>>) {
        eff.broadcast_others(FastPaxosMsg::Heartbeat, self.cfg.n(), self.me);
        eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
        eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
        eff.set_timer(TimerId::NEW_BALLOT, INITIAL_TIMEOUT);
        // The proposal enters the network addressed to *every* acceptor,
        // self included: whether we vote for our own value depends on
        // arrival order, as in Lamport's model.
        if let Some(v) = self.initial.clone() {
            eff.broadcast_all(FastPaxosMsg::Propose(v), self.cfg.n());
        }
    }

    fn on_propose(&mut self, value: V, eff: &mut Effects<V, FastPaxosMsg<V>>) {
        // Only meaningful for passive instances; task-style instances
        // fixed their proposal at construction.
        if self.initial.is_none() {
            self.initial = Some(value.clone());
            eff.broadcast_all(FastPaxosMsg::Propose(value), self.cfg.n());
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: FastPaxosMsg<V>,
        eff: &mut Effects<V, FastPaxosMsg<V>>,
    ) {
        self.heard.insert(from);
        match msg {
            FastPaxosMsg::Heartbeat => {}

            FastPaxosMsg::Propose(v) => {
                // Acceptor: vote for the first value received in the
                // fast round (no value precondition — the difference
                // from the paper's protocol).
                if self.bal == Ballot::FAST && self.val.is_none() {
                    self.val = Some(v.clone());
                    eff.broadcast_all(FastPaxosMsg::TwoB(Ballot::FAST, v), self.cfg.n());
                }
            }

            FastPaxosMsg::OneA(b) => {
                if b > self.bal {
                    self.obs.ballot_advanced(self.me);
                    self.bal = b;
                    eff.send(
                        from,
                        FastPaxosMsg::OneB {
                            bal: b,
                            vbal: self.vbal,
                            val: self.val.clone(),
                        },
                    );
                }
            }

            FastPaxosMsg::OneB { bal, vbal, val } => {
                if self.my_ballot == Some(bal) && !self.phase_one_done {
                    self.onebs.insert(from, (vbal, val));
                    if self.onebs.len() >= self.cfg.slow_quorum() {
                        self.phase_one_done = true;
                        if let Some(v) = self.o4_select() {
                            eff.broadcast_all(FastPaxosMsg::TwoA(bal, v), self.cfg.n());
                        }
                    }
                }
            }

            FastPaxosMsg::TwoA(b, v) => {
                if self.bal <= b {
                    if b > self.bal {
                        self.obs.ballot_advanced(self.me);
                    }
                    self.bal = b;
                    self.vbal = b;
                    self.val = Some(v.clone());
                    eff.broadcast_all(FastPaxosMsg::TwoB(b, v), self.cfg.n());
                }
            }

            FastPaxosMsg::TwoB(b, v) => {
                if b == Ballot::FAST {
                    self.fast_tally.record(from, v);
                } else {
                    // Votes of an older slow ballot are obsolete.
                    if b > self.slow_ballot_seen {
                        self.slow_ballot_seen = b;
                        self.slow_tally.clear();
                    }
                    if b == self.slow_ballot_seen {
                        self.slow_tally.record(from, v);
                    }
                }
                self.check_learned(eff);
            }

            FastPaxosMsg::Decide(v) => {
                self.record_decision(v, Path::Learned, eff);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<V, FastPaxosMsg<V>>) {
        match timer {
            TimerId::HEARTBEAT => {
                eff.broadcast_others(FastPaxosMsg::Heartbeat, self.cfg.n(), self.me);
                eff.set_timer(TimerId::HEARTBEAT, HEARTBEAT_PERIOD);
            }
            TimerId::SUSPECT => {
                let before = self.leader();
                let mut trusted = self.heard;
                trusted.insert(self.me);
                self.suspected = trusted.complement(self.cfg.n());
                self.heard = ProcessSet::new();
                let after = self.leader();
                if before != after {
                    self.obs.leader_changed(self.me, after);
                }
                eff.set_timer(TimerId::SUSPECT, SUSPECT_PERIOD);
            }
            TimerId::NEW_BALLOT => {
                eff.set_timer(TimerId::NEW_BALLOT, RETRY_PERIOD);
                if let Some(v) = self.decided.clone() {
                    eff.broadcast_others(FastPaxosMsg::Decide(v), self.cfg.n(), self.me);
                } else if self.leader() == self.me {
                    self.start_ballot(eff);
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<V> {
        self.decided.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_sim::{SimulationBuilder, SyncRunner};
    use twostep_types::Time;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn unanimous_fast_round_decides_everyone_at_two_delta() {
        // All propose the same value: every correct process decides at 2Δ
        // (Fast Paxos is fast at *all* processes, Lamport-style).
        let cfg = SystemConfig::minimal_fast_paxos(1, 1).unwrap(); // n=4
        let outcome = SyncRunner::new(cfg).run(|q| FastPaxos::new(cfg, q, 7u64));
        for i in 0..4 {
            assert_eq!(
                outcome.decision_time_of(p(i)),
                Some(Time::ZERO + Duration::deltas(2)),
                "p{i}"
            );
        }
        assert!(outcome.agreement());
    }

    #[test]
    fn favored_proposer_wins_contended_fast_round() {
        let cfg = SystemConfig::minimal_fast_paxos(1, 1).unwrap();
        let outcome = SyncRunner::new(cfg)
            .favoring(p(3))
            .run(|q| FastPaxos::new(cfg, q, u64::from(q.as_u32())));
        assert!(outcome.agreement());
        assert_eq!(*outcome.decided_values()[0], 3);
        let (fast, _) = outcome.fast_deciders();
        assert_eq!(fast.len(), 4, "all learners see the fast quorum by 2Δ");
    }

    #[test]
    fn fast_round_with_e_crashes_still_two_step() {
        let cfg = SystemConfig::minimal_fast_paxos(2, 2).unwrap(); // n=7
        let crashed: ProcessSet = [p(0), p(1)].into_iter().collect();
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .favoring(p(6))
            .run(|q| FastPaxos::new(cfg, q, u64::from(q.as_u32())));
        let (fast, v) = outcome.fast_deciders();
        assert_eq!(v, Some(6));
        assert_eq!(fast.len(), 5, "all five correct processes decide at 2Δ");
    }

    #[test]
    fn contended_split_recovers_via_o4() {
        // Send-order delivery with distinct values splits the acceptors;
        // no fast quorum forms, and the Ω leader's recovery must decide.
        let cfg = SystemConfig::minimal_fast_paxos(1, 1).unwrap();
        let outcome = SyncRunner::new(cfg)
            .horizon(Duration::deltas(60))
            .run(|q| FastPaxos::new(cfg, q, u64::from(q.as_u32())));
        assert!(outcome.all_correct_decided());
        assert!(outcome.agreement());
        let v = *outcome.decided_values()[0];
        assert!(v < 4, "decision {v} must be one of the proposals");
    }

    #[test]
    fn o4_preserves_fast_decision_under_recovery() {
        // A value fast-decides at 2Δ; a slow ballot started afterwards
        // must adopt it.
        let cfg = SystemConfig::minimal_fast_paxos(1, 2).unwrap(); // n=max{4+1... 2e+f+1=5, 5}=5
        let outcome = SyncRunner::new(cfg)
            .favoring(p(4))
            .horizon(Duration::deltas(60))
            .run(|q| FastPaxos::new(cfg, q, u64::from(q.as_u32())));
        // Everything — fast deciders and any recovery stragglers — agrees.
        assert!(outcome.agreement());
        assert_eq!(*outcome.decided_values()[0], 4);
        assert!(outcome.all_correct_decided());
    }

    #[test]
    fn message_complexity_is_quadratic() {
        // Fast Paxos acceptors broadcast votes to all learners: with n
        // processes and no conflicts, expect ~n Propose broadcasts and
        // ~n² TwoB messages by 2Δ; the paper's protocol sends only ~n.
        let cfg = SystemConfig::minimal_fast_paxos(1, 1).unwrap(); // n=4
        let outcome = SyncRunner::new(cfg)
            .favoring(p(0))
            .horizon(Duration::deltas(2))
            .run(|q| FastPaxos::new(cfg, q, 7u64));
        let twobs = outcome.trace.messages_sent_of_kind("TwoB");
        assert!(
            twobs >= cfg.n() * cfg.n(),
            "expected ≥ n² fast votes, got {twobs}"
        );
    }

    #[test]
    fn randomized_schedules_agree_at_the_bound() {
        for seed in 0u64..10 {
            let cfg = SystemConfig::minimal_fast_paxos(2, 2).unwrap();
            let outcome = SimulationBuilder::new(cfg)
                .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
                .delivery_order(twostep_sim::DeliveryOrder::randomized(seed))
                .build(|q| FastPaxos::new(cfg, q, u64::from(q.as_u32())))
                .run_until_all_decided(Time::ZERO + Duration::deltas(120));
            let decisions = outcome.trace.decisions();
            if let Some((_, first, _)) = decisions.first() {
                assert!(decisions.iter().all(|(_, v, _)| v == first), "seed {seed}");
            }
            assert!(outcome.all_correct_decided(), "seed {seed}");
        }
    }
}
