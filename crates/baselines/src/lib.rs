//! Baseline consensus protocols the paper compares against.
//!
//! * [`Paxos`] — classic single-decree, leader-driven Paxos
//!   (`n ≥ 2f+1`). Decides in two message delays only when the
//!   (pre-established) leader is correct; a leader crash costs a
//!   failure-detection timeout plus a full ballot. Not e-two-step for
//!   any `e > 0`.
//! * [`FastPaxos`] — Lamport's Fast Paxos (`n ≥ max{2e+f+1, 2f+1}`):
//!   uncoordinated fast rounds with fast quorums of `n-e`, recovery via
//!   the O4 observation rule. The extra process (compared to the paper's
//!   protocol) is what makes O4 unambiguous without proposer exclusion
//!   or tie-breaks.
//! * [`EPaxosLite`] — a single-shot reduction of Egalitarian Paxos's
//!   per-command commit: PreAccept to a fast quorum of
//!   `f + ⌊(f+1)/2⌋` out of `n = 2f+1`, falling back to an Accept round
//!   under interference. This reproduces the process-count/latency
//!   datapoint that motivated the paper (two-step decisions with
//!   `2f+1 = 2e+f-1` processes for `e = ⌈(f+1)/2⌉`). Command-leader
//!   crash recovery is out of scope (see `DESIGN.md`).
//! * [`FastBft`] — a FaB-Paxos-style fast *Byzantine* baseline
//!   (`n ≥ 3f+1`, two-step iff `n ≥ 5f+1`, or `n ≥ 5f−1` under the
//!   arXiv:2102.12825 honest-proposer rule): the comparison point for
//!   the crash-vs-Byzantine bound gap of experiment E14.
//!
//! All three implement the same event-driven
//! [`Protocol`](twostep_types::protocol::Protocol) abstraction as the
//! core protocol, so every experiment drives them through identical
//! engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epaxos;
pub mod fab;
pub mod fastpaxos;
pub mod paxos;

pub use epaxos::EPaxosLite;
pub use fab::{FabMsg, FastBft};
pub use fastpaxos::FastPaxos;
pub use paxos::Paxos;
