//! Executable e-two-step conformance checking (Definitions 4 and A.1).
//!
//! These functions sweep *every* failure set `E` of size `e` and check
//! the paper's two-step definitions against a protocol family by
//! constructing the witness runs (E-faulty synchronous runs with the
//! delivery order favoring the candidate decider). They are what the E1
//! and E2 experiment binaries and several test suites share.

use twostep_core::{ObjectConsensus, TaskConsensus};
use twostep_sim::SyncRunner;
use twostep_types::{Duration, ProcessId, ProcessSet, SystemConfig, Time};

/// The result of a conformance sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// The configuration swept.
    pub cfg: SystemConfig,
    /// Number of failure sets examined (`C(n, e)`).
    pub failure_sets: usize,
    /// Clause 1 of the definition held for every failure set.
    pub clause_one: bool,
    /// Clause 2 held for every failure set and every correct process.
    pub clause_two: bool,
    /// Agreement held in every constructed run.
    pub agreement: bool,
    /// Every correct process decided in every full-horizon run.
    pub termination: bool,
    /// First failure description, if any clause failed.
    pub first_failure: Option<String>,
}

impl ConformanceReport {
    /// Whether the protocol passed the whole sweep.
    pub fn passed(&self) -> bool {
        self.clause_one && self.clause_two && self.agreement && self.termination
    }
}

/// The correct process with the greatest proposal — the witness of the
/// paper's Definition 4(1) argument (§3).
fn max_correct(props: &[u64], crashed: ProcessSet) -> ProcessId {
    (0..props.len() as u32)
        .map(ProcessId::new)
        .filter(|q| !crashed.contains(*q))
        .max_by_key(|q| props[q.index()])
        .expect("at least one correct process")
}

/// Sweeps Definition 4 (consensus task) over every failure set of `cfg`.
///
/// Clause 1 is checked on an all-distinct initial configuration
/// (`p_i` proposes `100 + i`), clause 2 on the unanimous configuration.
/// Clause 2's inner loop caps the number of failure sets at
/// `clause_two_sets` to keep large sweeps affordable (the clause-1 loop
/// is always exhaustive).
pub fn check_task_conformance(cfg: SystemConfig, clause_two_sets: usize) -> ConformanceReport {
    let props: Vec<u64> = (0..cfg.n() as u64).map(|i| 100 + i).collect();
    let mut report = ConformanceReport {
        cfg,
        failure_sets: 0,
        clause_one: true,
        clause_two: true,
        agreement: true,
        termination: true,
        first_failure: None,
    };

    for (set_index, crashed) in cfg.failure_sets().enumerate() {
        report.failure_sets += 1;

        // Definition 4(1): some process decides by 2Δ from any initial
        // configuration; witnessed by the max correct proposer.
        let witness = max_correct(&props, crashed);
        let outcome = SyncRunner::new(cfg)
            .crashed(crashed)
            .favoring(witness)
            .horizon(Duration::deltas(60))
            .run(|q| TaskConsensus::new(cfg, q, props[q.index()]));
        if !outcome.fast_deciders().0.contains(witness) {
            report.clause_one = false;
            report
                .first_failure
                .get_or_insert_with(|| format!("Def4(1) failed for E={crashed:?}"));
        }
        report.agreement &= outcome.agreement();
        report.termination &= outcome.all_correct_decided();

        // Definition 4(2): on unanimous configurations, every correct
        // process has a witness run that is two-step for it.
        if set_index < clause_two_sets {
            for w in cfg.all_processes().difference(crashed).iter() {
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .favoring(w)
                    .horizon(Duration::deltas(60))
                    .run(|q| TaskConsensus::new(cfg, q, 7u64));
                let (fast, v) = outcome.fast_deciders();
                if !(fast.contains(w) && v == Some(7)) {
                    report.clause_two = false;
                    report
                        .first_failure
                        .get_or_insert_with(|| format!("Def4(2) failed for E={crashed:?}, w={w}"));
                }
                report.agreement &= outcome.agreement();
            }
        }
    }
    report
}

/// Sweeps Definition A.1 (consensus object) over every failure set of
/// `cfg`: clause 1 (lone proposer two-step) exhaustively, clause 2
/// (unanimous proposals, per-witness) over the first `clause_two_sets`
/// failure sets.
pub fn check_object_conformance(cfg: SystemConfig, clause_two_sets: usize) -> ConformanceReport {
    let mut report = ConformanceReport {
        cfg,
        failure_sets: 0,
        clause_one: true,
        clause_two: true,
        agreement: true,
        termination: true,
        first_failure: None,
    };

    for (set_index, crashed) in cfg.failure_sets().enumerate() {
        report.failure_sets += 1;
        let correct = cfg.all_processes().difference(crashed);

        // A.1(1): only p proposes; p decides by 2Δ.
        for proposer in correct.iter() {
            let outcome = SyncRunner::new(cfg)
                .crashed(crashed)
                .horizon(Duration::deltas(60))
                .run_object(
                    |q| ObjectConsensus::<u64>::new(cfg, q),
                    vec![(proposer, 42, Time::ZERO)],
                );
            let (fast, v) = outcome.fast_deciders();
            if !(fast.contains(proposer) && v == Some(42)) {
                report.clause_one = false;
                report.first_failure.get_or_insert_with(|| {
                    format!("A.1(1) failed for E={crashed:?}, proposer={proposer}")
                });
            }
            report.agreement &= outcome.agreement();
            report.termination &= outcome.all_correct_decided();
        }

        // A.1(2): unanimous proposals at round start; every correct
        // process two-step in its witness run.
        if set_index < clause_two_sets {
            for witness in correct.iter() {
                let proposals: Vec<_> = correct.iter().map(|q| (q, 7u64, Time::ZERO)).collect();
                let outcome = SyncRunner::new(cfg)
                    .crashed(crashed)
                    .favoring(witness)
                    .horizon(Duration::deltas(60))
                    .run_object(|q| ObjectConsensus::<u64>::new(cfg, q), proposals);
                let (fast, v) = outcome.fast_deciders();
                if !(fast.contains(witness) && v == Some(7)) {
                    report.clause_two = false;
                    report.first_failure.get_or_insert_with(|| {
                        format!("A.1(2) failed for E={crashed:?}, witness={witness}")
                    });
                }
                report.agreement &= outcome.agreement();
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_conformance_at_the_bound() {
        for (e, f) in [(1usize, 1usize), (2, 2), (2, 3)] {
            let cfg = SystemConfig::minimal_task(e, f).unwrap();
            let report = check_task_conformance(cfg, 4);
            assert!(report.passed(), "{:?}", report.first_failure);
            assert!(report.failure_sets > 0);
        }
    }

    #[test]
    fn object_conformance_at_the_bound() {
        for (e, f) in [(1usize, 1usize), (2, 2)] {
            let cfg = SystemConfig::minimal_object(e, f).unwrap();
            let report = check_object_conformance(cfg, 4);
            assert!(report.passed(), "{:?}", report.first_failure);
        }
    }

    #[test]
    fn object_conformance_fails_above_its_regime() {
        // The task variant's Definition 4(1) at the *object* bound is
        // exactly what Theorem 5 forbids: running the task sweep on
        // n = 2e+f-1 must fail clause 1 or safety (here: the witness
        // construction still decides fast, but the sweep's agreement
        // checks stay silent because the witness runs are benign — so
        // probe the stronger fact with the object protocol on a task
        // configuration instead: everyone proposing distinct values is
        // *not* covered by A.1, and the red line blocks the fast path).
        let cfg = SystemConfig::minimal_object(2, 2).unwrap(); // n = 5
                                                               // Sanity: the object bound is genuinely below the task bound.
        assert!(cfg.n() < SystemConfig::minimal_task(2, 2).unwrap().n());
        // A.1 conformance nevertheless passes at n = 5:
        let report = check_object_conformance(cfg, 2);
        assert!(report.passed(), "{:?}", report.first_failure);
    }

    #[test]
    fn conformance_report_accessors() {
        let cfg = SystemConfig::minimal_task(1, 1).unwrap();
        let report = check_task_conformance(cfg, 1);
        assert!(report.passed());
        assert_eq!(report.cfg, cfg);
        assert_eq!(report.failure_sets, 3);
        assert_eq!(report.first_failure, None);
    }
}
