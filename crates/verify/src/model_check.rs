//! Bounded-exhaustive schedule exploration.
//!
//! The simulator samples schedules; the model checker enumerates them.
//! Starting from `start_all()` (plus optional client proposals), it
//! explores every interleaving of:
//!
//! * delivering any pending message,
//! * crashing a process (up to a bound),
//! * firing any armed timer (up to a per-process budget — timers like
//!   the new-ballot timer re-arm forever, so unbounded firing would
//!   never terminate),
//!
//! pruning states already visited (by global fingerprint). At every
//! state it checks Agreement over the full decide log and Validity
//! against the proposed values. A violation yields a replayable
//! [`Action`] script.
//!
//! State counts grow fast; this is meant for `n ≤ 5` and small budgets,
//! which is exactly the regime of the paper's bounds (the interesting
//! configurations are `n = 2e+f-2 … 2e+f`).

use twostep_sim::ManualExecutor;
use twostep_types::protocol::{Protocol, TimerId};
use twostep_types::{ProcessId, SystemConfig, Value};

use std::collections::HashSet;

/// One schedule step in a counterexample script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Deliver the in-flight message described by `(from, to, kind)`;
    /// `index` is its position among pending messages at that point.
    Deliver {
        /// Position in the pending list when taken.
        index: usize,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Debug rendering of the payload.
        describe: String,
    },
    /// Crash a process.
    Crash(ProcessId),
    /// Fire an armed timer.
    Fire(ProcessId, TimerId),
}

/// Result of a bounded exploration.
#[derive(Debug)]
pub enum CheckOutcome {
    /// No violation in any explored schedule.
    Clean {
        /// Distinct states visited.
        states: usize,
        /// Whether exploration hit the state bound (so the result is a
        /// bounded guarantee, not a proof).
        truncated: bool,
    },
    /// A schedule violating safety, with the script that reaches it.
    Violation {
        /// What went wrong, human-readable.
        report: String,
        /// The schedule (from the initial state) that triggers it.
        script: Vec<Action>,
        /// Distinct states visited before finding it.
        states: usize,
    },
}

impl CheckOutcome {
    /// Whether the exploration found no violation.
    pub fn is_clean(&self) -> bool {
        matches!(self, CheckOutcome::Clean { .. })
    }
}

/// A bounded-exhaustive model checker over one protocol family.
pub struct ModelChecker<V: Value> {
    max_states: usize,
    max_crashes: usize,
    timer_budget: usize,
    timers: Vec<TimerId>,
    proposed: Vec<V>,
}

impl<V: Value> ModelChecker<V> {
    /// Creates a checker with defaults: 200 000 states, no crashes, no
    /// timer firings.
    pub fn new() -> Self {
        ModelChecker {
            max_states: 200_000,
            max_crashes: 0,
            timer_budget: 0,
            timers: vec![TimerId::NEW_BALLOT],
            proposed: Vec::new(),
        }
    }

    /// Caps the number of distinct states explored.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Allows up to `n` crash actions per schedule.
    pub fn max_crashes(mut self, n: usize) -> Self {
        self.max_crashes = n;
        self
    }

    /// Allows each process up to `n` timer firings per schedule, for the
    /// given timers (default: only `NEW_BALLOT` — heartbeat timers only
    /// add noise under manual scheduling).
    pub fn timer_budget(mut self, n: usize, timers: Vec<TimerId>) -> Self {
        self.timer_budget = n;
        self.timers = timers;
        self
    }

    /// Declares the set of proposed values for the Validity check.
    pub fn proposed(mut self, values: Vec<V>) -> Self {
        self.proposed = values;
        self
    }

    /// Explores all schedules of the system built by `setup`.
    ///
    /// `setup` receives the config and must return a started executor
    /// (typically: build, `start_all()`, issue proposals).
    pub fn run<P, F>(&self, cfg: SystemConfig, setup: F) -> CheckOutcome
    where
        P: Protocol<V> + Clone,
        F: Fn(SystemConfig) -> ManualExecutor<V, P>,
    {
        // (executor, script, crashes_used, timer_fires_per_process)
        type Frame<V, P> = (ManualExecutor<V, P>, Vec<Action>, usize, Vec<usize>);
        let root = setup(cfg);
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<Frame<V, P>> = Vec::new();
        visited.insert(root.fingerprint());
        stack.push((root, Vec::new(), 0, vec![0; cfg.n()]));
        let mut states = 1usize;

        while let Some((ex, script, crashes, fires)) = stack.pop() {
            // Safety checks on the popped state.
            if let Some(report) = self.violated(&ex) {
                return CheckOutcome::Violation {
                    report,
                    script,
                    states,
                };
            }
            if states >= self.max_states {
                return CheckOutcome::Clean {
                    states,
                    truncated: true,
                };
            }

            // Enumerate successor actions.
            // 1. Deliveries.
            let pending: Vec<(usize, ProcessId, ProcessId, String)> = ex
                .pending()
                .iter()
                .enumerate()
                .map(|(i, m)| (i, m.from, m.to, format!("{:?}", m.msg)))
                .collect();
            for (index, from, to, describe) in pending {
                let mut next = ex.clone();
                let ids = next.pending_matching(|_| true);
                next.deliver(ids[index]);
                if visited.insert(next.fingerprint()) {
                    states += 1;
                    let mut s = script.clone();
                    s.push(Action::Deliver {
                        index,
                        from,
                        to,
                        describe,
                    });
                    stack.push((next, s, crashes, fires.clone()));
                }
            }
            // 2. Crashes.
            if crashes < self.max_crashes {
                for p in ex.alive().iter() {
                    let mut next = ex.clone();
                    next.crash(p);
                    if visited.insert(next.fingerprint()) {
                        states += 1;
                        let mut s = script.clone();
                        s.push(Action::Crash(p));
                        stack.push((next, s, crashes + 1, fires.clone()));
                    }
                }
            }
            // 3. Timer firings.
            for p in ex.alive().iter() {
                if fires[p.index()] >= self.timer_budget {
                    continue;
                }
                for timer in ex.armed_timers(p) {
                    if !self.timers.contains(&timer) {
                        continue;
                    }
                    let mut next = ex.clone();
                    next.fire_timer(p, timer);
                    if visited.insert(next.fingerprint()) {
                        states += 1;
                        let mut s = script.clone();
                        s.push(Action::Fire(p, timer));
                        let mut f2 = fires.clone();
                        f2[p.index()] += 1;
                        stack.push((next, s, crashes, f2));
                    }
                }
            }
        }

        CheckOutcome::Clean {
            states,
            truncated: false,
        }
    }

    fn violated<P: Protocol<V>>(&self, ex: &ManualExecutor<V, P>) -> Option<String> {
        let log = ex.decide_log();
        if let Some((p0, v0)) = log.first() {
            for (p, v) in &log[1..] {
                if v != v0 {
                    return Some(format!(
                        "agreement violated: {p0} decided {v0:?}, {p} decided {v:?}"
                    ));
                }
            }
            if !self.proposed.is_empty() {
                for (p, v) in log {
                    if !self.proposed.contains(v) {
                        return Some(format!("validity violated: {p} decided unproposed {v:?}"));
                    }
                }
            }
        }
        None
    }
}

impl<V: Value> Default for ModelChecker<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use twostep_types::protocol::Effects;

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct M(u64);

    /// Deliberately broken "consensus": decide the first value received.
    #[derive(Debug, Clone)]
    struct FirstWins {
        me: ProcessId,
        n: usize,
        value: u64,
        decided: Option<u64>,
    }

    impl Protocol<u64> for FirstWins {
        type Message = M;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, eff: &mut Effects<u64, M>) {
            eff.broadcast_others(M(self.value), self.n, self.me);
        }
        fn on_propose(&mut self, _: u64, _: &mut Effects<u64, M>) {}
        fn on_message(&mut self, _: ProcessId, m: M, eff: &mut Effects<u64, M>) {
            if self.decided.is_none() {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, M>) {}
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    /// Trivially safe: never decides.
    #[derive(Debug, Clone)]
    struct Mute(ProcessId);

    impl Protocol<u64> for Mute {
        type Message = M;
        fn id(&self) -> ProcessId {
            self.0
        }
        fn on_start(&mut self, eff: &mut Effects<u64, M>) {
            eff.send(ProcessId::new(0), M(1));
        }
        fn on_propose(&mut self, _: u64, _: &mut Effects<u64, M>) {}
        fn on_message(&mut self, _: ProcessId, _: M, _: &mut Effects<u64, M>) {}
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, M>) {}
        fn decision(&self) -> Option<u64> {
            None
        }
    }

    #[test]
    fn finds_agreement_violation_in_broken_protocol() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::new().proposed(vec![0, 1, 2]).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: u64::from(q.as_u32()),
                decided: None,
            });
            ex.start_all();
            ex
        });
        let CheckOutcome::Violation { report, script, .. } = outcome else {
            panic!("first-wins must violate agreement under some schedule");
        };
        assert!(report.contains("agreement violated"));
        assert!(!script.is_empty());
    }

    #[test]
    fn counterexample_script_replays_to_the_violation() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let build = |cfg: SystemConfig| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: u64::from(q.as_u32()),
                decided: None,
            });
            ex.start_all();
            ex
        };
        let CheckOutcome::Violation { script, .. } = ModelChecker::new().run(cfg, build) else {
            panic!("expected a violation");
        };
        // Replay.
        let mut ex = build(cfg);
        for action in &script {
            match action {
                Action::Deliver { index, .. } => {
                    let ids = ex.pending_matching(|_| true);
                    ex.deliver(ids[*index]);
                }
                Action::Crash(q) => ex.crash(*q),
                Action::Fire(q, t) => {
                    ex.fire_timer(*q, *t);
                }
            }
        }
        assert!(
            !ex.agreement(),
            "replayed script must reproduce the violation"
        );
    }

    #[test]
    fn clean_protocol_reports_clean() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new().run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, Mute);
            ex.start_all();
            ex
        });
        match outcome {
            CheckOutcome::Clean { states, truncated } => {
                assert!(!truncated);
                assert!(states >= 2, "at least root + one delivery");
            }
            CheckOutcome::Violation { report, .. } => panic!("mute protocol violated: {report}"),
        }
    }

    #[test]
    fn state_bound_truncates() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new().max_states(2).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: 7, // all same value: no violation possible
                decided: None,
            });
            ex.start_all();
            ex
        });
        match outcome {
            CheckOutcome::Clean { truncated, .. } => assert!(truncated),
            CheckOutcome::Violation { report, .. } => panic!("unexpected: {report}"),
        }
    }

    #[test]
    fn validity_checked_against_proposed_set() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::new().proposed(vec![100]).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: 7, // not in the declared proposed set
                decided: None,
            });
            ex.start_all();
            ex
        });
        let CheckOutcome::Violation { report, .. } = outcome else {
            panic!("expected validity violation");
        };
        assert!(report.contains("validity"));
    }

    #[test]
    fn crash_actions_respect_bound() {
        // With crashes enabled, Mute stays clean and exploration
        // terminates (crashes only shrink behavior).
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new().max_crashes(1).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, Mute);
            ex.start_all();
            ex
        });
        assert!(outcome.is_clean());
    }
}
