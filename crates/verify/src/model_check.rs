//! Exhaustive state-space exploration over the two-step protocols.
//!
//! The simulator samples schedules; the model checker enumerates them.
//! Starting from `start_all()` (plus optional client proposals), it
//! explores every interleaving of:
//!
//! * delivering any pending message,
//! * crashing a process (up to a bound),
//! * firing an armed timer (up to a per-process budget — timers like
//!   the new-ballot timer re-arm forever, so unbounded firing would
//!   never terminate),
//!
//! pruning states already visited. At every state it checks Agreement
//! over the full decide log and Validity against the proposed values. A
//! violation yields a replayable [`Action`] script, convertible into the
//! `twostep-fuzz --replay` token format by [`fuzz_replay_tokens`].
//!
//! # Reductions
//!
//! Three reductions keep the boundary configurations (`n = 2e+f−2 …
//! 2e+f`, crash budgets up to `f`) tractable; all are sound in the sense
//! that they can hide no Agreement/Validity violation:
//!
//! * **Process-symmetry canonicalization** (`symmetry(true)`, the
//!   default). A state is keyed by the *minimum* relabeled fingerprint
//!   over a group of replica-id permutations (see
//!   [`twostep_types::relabel`]). The group fixes every distinguished
//!   process (builder-declared, plus any `timer_processes`) and is
//!   restricted to the stabilizer of the *root* state, so asymmetric
//!   initial proposals shrink the group instead of breaking soundness.
//!   States (or in-flight payloads) that cannot be relabeled under a
//!   permutation decline it (`None`); a state declined by every group
//!   element falls back to its plain fingerprint. Since Agreement and
//!   Validity are invariant under replica-id permutations, a pruned
//!   state violates iff its explored representative's orbit does.
//! * **Partial-order reduction by inert-mail scrubbing** (`por(true)`,
//!   the default). After every transition the engine drops from the
//!   network soup all mail addressed to crashed processes (sound
//!   because the checker has no restart action) and all mail the
//!   receiver's protocol declares a *permanent* no-op
//!   ([`Protocol::message_is_noop`]). Delivering such a message
//!   commutes with every other action and has no visible effect, so
//!   each inert message would otherwise double the residual state
//!   space (delivered-or-not, interleaved everywhere) without changing
//!   any verdict. This is an ample-set-style reduction where the inert
//!   deliveries form singleton ample sets of globally independent,
//!   invisible actions — executed eagerly as "drops".
//! * **Duplicate-delivery merging.** Two pending messages with equal
//!   `(from, to, content)` produce identical successors; only one is
//!   expanded.
//!
//! Violations are checked at successor *creation*, before dedup — the
//! decide log is deliberately not part of the fingerprint (its length
//! grows without bound under re-delivery), so a violating state may
//! share a fingerprint with an already-visited clean one and must not
//! be merged away.
//!
//! # Parallelism
//!
//! `workers(k)` explores the frontier with `k` worker threads over a
//! sharded visited-set: each worker expands frames from a local stack
//! and offloads half of it to a shared injector when the injector runs
//! dry. `workers(1)` (the default) is fully deterministic.

use twostep_sim::ManualExecutor;
use twostep_types::protocol::{Protocol, TimerId};
use twostep_types::relabel::{RelabelHash, Relabeling};
use twostep_types::{ProcessId, ProcessSet, SystemConfig, Value};

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One schedule step in a counterexample script.
///
/// Deliveries are identified by *stable message content*
/// (`(from, to, content_key)`, see
/// [`twostep_sim::InFlight::content_key`]), not by pending-list
/// position: positions shift under reduction and across replay
/// environments, content does not. Two pending messages with the same
/// triple are interchangeable by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Deliver the pending message with this sender, receiver and
    /// payload content key.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Stable payload hash ([`twostep_sim::InFlight::content_key`]).
        key: u64,
    },
    /// Crash a process.
    Crash(ProcessId),
    /// Fire an armed timer.
    Fire(ProcessId, TimerId),
}

/// Counters describing one exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Distinct states visited (after reduction).
    pub states: usize,
    /// Transitions executed (successor states generated, pre-dedup).
    pub transitions: usize,
    /// Successors merged into an already-visited state.
    pub deduped: usize,
    /// Inert messages scrubbed by the partial-order reduction.
    pub scrubbed: usize,
    /// States keyed through the symmetry canonicalization.
    pub sym_canonical: usize,
    /// States where every permutation declined (plain-fingerprint
    /// fallback).
    pub sym_fallback: usize,
    /// Wall-clock exploration time.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl ExploreStats {
    /// Visited states per second of wall-clock exploration.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            self.states as f64
        }
    }
}

/// Result of a bounded exploration.
#[derive(Debug)]
pub enum CheckOutcome {
    /// No violation in any explored schedule.
    Clean {
        /// Distinct states visited.
        states: usize,
        /// Whether exploration hit the state bound (so the result is a
        /// bounded guarantee, not a proof).
        truncated: bool,
        /// Exploration counters.
        stats: ExploreStats,
    },
    /// A schedule violating safety, with the script that reaches it.
    Violation {
        /// What went wrong, human-readable.
        report: String,
        /// The schedule (from the initial state) that triggers it.
        script: Vec<Action>,
        /// Distinct states visited before finding it.
        states: usize,
        /// Exploration counters.
        stats: ExploreStats,
    },
}

impl CheckOutcome {
    /// Whether the exploration found no violation.
    pub fn is_clean(&self) -> bool {
        matches!(self, CheckOutcome::Clean { .. })
    }

    /// The exploration counters, whichever way it ended.
    pub fn stats(&self) -> &ExploreStats {
        match self {
            CheckOutcome::Clean { stats, .. } => stats,
            CheckOutcome::Violation { stats, .. } => stats,
        }
    }
}

/// A bounded-exhaustive model checker over one protocol family.
pub struct ModelChecker<V: Value> {
    max_states: usize,
    max_crashes: usize,
    timer_budget: usize,
    timers: Vec<TimerId>,
    timer_processes: Option<ProcessSet>,
    proposed: Vec<V>,
    symmetry: bool,
    por: bool,
    workers: usize,
    distinguished: ProcessSet,
}

impl<V: Value> ModelChecker<V> {
    /// Creates a checker with defaults: 200 000 states, no crashes, no
    /// timer firings, symmetry + partial-order reduction on, one
    /// worker.
    pub fn new() -> Self {
        ModelChecker {
            max_states: 200_000,
            max_crashes: 0,
            timer_budget: 0,
            timers: vec![TimerId::NEW_BALLOT],
            timer_processes: None,
            proposed: Vec::new(),
            symmetry: true,
            por: true,
            workers: 1,
            distinguished: ProcessSet::new(),
        }
    }

    /// Caps the number of distinct states explored.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Allows up to `n` crash actions per schedule.
    pub fn max_crashes(mut self, n: usize) -> Self {
        self.max_crashes = n;
        self
    }

    /// Allows each process up to `n` timer firings per schedule, for the
    /// given timers (default: only `NEW_BALLOT` — heartbeat timers only
    /// add noise under manual scheduling).
    pub fn timer_budget(mut self, n: usize, timers: Vec<TimerId>) -> Self {
        self.timer_budget = n;
        self.timers = timers;
        self
    }

    /// Restricts timer firings to the given processes (e.g. only the
    /// pinned leader's new-ballot timer matters in a static-Ω sweep).
    /// These processes are implicitly distinguished for the symmetry
    /// reduction.
    pub fn timer_processes(mut self, procs: ProcessSet) -> Self {
        self.timer_processes = Some(procs);
        self
    }

    /// Declares the set of proposed values for the Validity check.
    pub fn proposed(mut self, values: Vec<V>) -> Self {
        self.proposed = values;
        self
    }

    /// Enables or disables the process-symmetry canonicalization.
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Enables or disables the inert-mail partial-order reduction.
    pub fn por(mut self, on: bool) -> Self {
        self.por = on;
        self
    }

    /// Number of exploration worker threads (default 1, deterministic).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Marks processes whose identity the *environment* distinguishes
    /// (beyond what the protocols themselves decline): the symmetry
    /// group will fix them pointwise.
    pub fn distinguished(mut self, procs: ProcessSet) -> Self {
        self.distinguished = procs;
        self
    }

    /// Explores all schedules of the system built by `setup`.
    ///
    /// `setup` receives the config and must return a started executor
    /// (typically: build, `start_all()`, issue proposals).
    pub fn run<P, F>(&self, cfg: SystemConfig, setup: F) -> CheckOutcome
    where
        V: Sync,
        P: Protocol<V> + Clone,
        P::Message: RelabelHash,
        F: Fn(SystemConfig) -> ManualExecutor<V, P>,
    {
        self.explore(cfg, setup, None)
    }

    /// Like [`ModelChecker::run`], additionally collecting the set of
    /// decision vectors (`decisions()` snapshots) over all visited
    /// states — the observable the reduction-equivalence tests compare
    /// against unreduced exploration. The set is only complete when the
    /// outcome is `Clean` and untruncated (a violation stops the
    /// search).
    pub fn run_collecting<P, F>(
        &self,
        cfg: SystemConfig,
        setup: F,
    ) -> (CheckOutcome, BTreeSet<Vec<Option<V>>>)
    where
        V: Sync,
        P: Protocol<V> + Clone,
        P::Message: RelabelHash,
        F: Fn(SystemConfig) -> ManualExecutor<V, P>,
    {
        let collector = Mutex::new(BTreeSet::new());
        let outcome = self.explore(cfg, setup, Some(&collector));
        (outcome, collector.into_inner().unwrap())
    }

    fn explore<P, F>(
        &self,
        cfg: SystemConfig,
        setup: F,
        collect: Option<&Mutex<BTreeSet<Vec<Option<V>>>>>,
    ) -> CheckOutcome
    where
        V: Sync,
        P: Protocol<V> + Clone,
        P::Message: RelabelHash,
        F: Fn(SystemConfig) -> ManualExecutor<V, P>,
    {
        let start = Instant::now();
        let n = cfg.n();
        let mut root = setup(cfg);
        let mut scrubbed_at_root = 0;
        if self.por {
            scrubbed_at_root = root.scrub_inert_mail();
        }

        // The symmetry group: permutations fixing every distinguished
        // process, restricted to the stabilizer of the root state (a
        // permutation that changes the root would equate runs of
        // *different* systems, e.g. swapping processes with different
        // initial proposals).
        let mut distinguished = self.distinguished;
        if let Some(tp) = self.timer_processes {
            for p in tp.iter() {
                distinguished.insert(p);
            }
        }
        let identity = Relabeling::identity(n);
        let group: Vec<Relabeling> = if self.symmetry {
            match root.fingerprint_relabeled(&identity) {
                None => vec![identity.clone()],
                Some(root_fp) => Relabeling::permutations_fixing(n, distinguished)
                    .into_iter()
                    .filter(|rl| root.fingerprint_relabeled(rl) == Some(root_fp))
                    .collect(),
            }
        } else {
            vec![identity.clone()]
        };

        let shared = Shared {
            visited: (0..VISITED_SHARDS)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            queue: Mutex::new(Vec::new()),
            idle: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            truncated: AtomicBool::new(false),
            violation: Mutex::new(None),
            arena: Mutex::new(Vec::new()),
            states: AtomicUsize::new(0),
            transitions: AtomicUsize::new(0),
            deduped: AtomicUsize::new(0),
            scrubbed: AtomicUsize::new(scrubbed_at_root),
            sym_canonical: AtomicUsize::new(0),
            sym_fallback: AtomicUsize::new(0),
        };
        let engine = Engine {
            checker: self,
            group: &group,
            shared: &shared,
            collect,
        };

        // Seed with the root.
        let root_fires = vec![0usize; n];
        let (root_key, root_canonical) = engine.canonical_key(&root, &root_fires);
        engine.record_key_scheme(root_canonical);
        engine.insert_visited(root_key);
        shared.states.store(1, Ordering::SeqCst);
        if let Some(c) = collect {
            c.lock().unwrap().insert(root.decisions().to_vec());
        }
        if let Some(report) = self.violated(&root) {
            return CheckOutcome::Violation {
                report,
                script: Vec::new(),
                states: 1,
                stats: engine.stats_snapshot(start),
            };
        }
        shared.in_flight.store(1, Ordering::SeqCst);
        shared.queue.lock().unwrap().push(Frame {
            ex: root,
            node: ROOT_NODE,
            crashes: 0,
            fires: root_fires,
        });

        if self.workers == 1 {
            engine.worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..self.workers {
                    s.spawn(|| engine.worker());
                }
            });
        }

        let stats = engine.stats_snapshot(start);
        let states = stats.states;
        let violation = shared.violation.lock().unwrap().take();
        match violation {
            Some((report, node)) => {
                let arena = shared.arena.lock().unwrap();
                let mut script = Vec::new();
                let mut cur = node;
                while cur != ROOT_NODE {
                    script.push(arena[cur].action);
                    cur = arena[cur].parent;
                }
                script.reverse();
                CheckOutcome::Violation {
                    report,
                    script,
                    states,
                    stats,
                }
            }
            None => CheckOutcome::Clean {
                states,
                truncated: shared.truncated.load(Ordering::SeqCst),
                stats,
            },
        }
    }

    fn violated<P: Protocol<V>>(&self, ex: &ManualExecutor<V, P>) -> Option<String> {
        let log = ex.decide_log();
        if let Some((p0, v0)) = log.first() {
            for (p, v) in &log[1..] {
                if v != v0 {
                    return Some(format!(
                        "agreement violated: {p0} decided {v0:?}, {p} decided {v:?}"
                    ));
                }
            }
            if !self.proposed.is_empty() {
                for (p, v) in log {
                    if !self.proposed.contains(v) {
                        return Some(format!("validity violated: {p} decided unproposed {v:?}"));
                    }
                }
            }
        }
        None
    }
}

impl<V: Value> Default for ModelChecker<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Visited-set shards; keys are distributed by `key % VISITED_SHARDS`.
const VISITED_SHARDS: usize = 64;
/// Arena sentinel for "no parent" (the root state).
const ROOT_NODE: usize = usize::MAX;

/// Parent-pointer trace node: scripts are reconstructed by walking the
/// arena backwards from the violating state, so frames carry one
/// `usize` instead of a cloned `Vec<Action>` each.
struct ArenaNode {
    parent: usize,
    action: Action,
}

struct Frame<V: Value, P: Protocol<V>> {
    ex: ManualExecutor<V, P>,
    node: usize,
    crashes: usize,
    fires: Vec<usize>,
}

struct Shared<V: Value, P: Protocol<V>> {
    visited: Vec<Mutex<HashSet<u64>>>,
    queue: Mutex<Vec<Frame<V, P>>>,
    idle: Condvar,
    /// Frames created but not yet fully expanded; 0 means exploration
    /// is complete.
    in_flight: AtomicUsize,
    stop: AtomicBool,
    truncated: AtomicBool,
    violation: Mutex<Option<(String, usize)>>,
    arena: Mutex<Vec<ArenaNode>>,
    states: AtomicUsize,
    transitions: AtomicUsize,
    deduped: AtomicUsize,
    scrubbed: AtomicUsize,
    sym_canonical: AtomicUsize,
    sym_fallback: AtomicUsize,
}

struct Engine<'a, V: Value, P: Protocol<V>> {
    checker: &'a ModelChecker<V>,
    group: &'a [Relabeling],
    shared: &'a Shared<V, P>,
    collect: Option<&'a Mutex<BTreeSet<Vec<Option<V>>>>>,
}

impl<'a, V: Value, P: Protocol<V> + Clone> Engine<'a, V, P>
where
    P::Message: RelabelHash,
{
    /// Canonical visited-set key of a state: the minimum relabeled
    /// fingerprint over the symmetry group (with the per-process timer
    /// budget residuals permuted alongside), or the plain fingerprint
    /// when every permutation declines. The two schemes are tagged so
    /// they occupy disjoint key spaces; within one run the scheme is
    /// uniform because the identity permutation never declines for a
    /// protocol that implements relabeled fingerprints at all.
    fn canonical_key(&self, ex: &ManualExecutor<V, P>, fires: &[usize]) -> (u64, bool) {
        let mut best: Option<u64> = None;
        for rl in self.group {
            if let Some(fp) = ex.fingerprint_relabeled(rl) {
                let mut h = DefaultHasher::new();
                1u8.hash(&mut h);
                fp.hash(&mut h);
                for j in 0..fires.len() {
                    fires[rl.preimage(ProcessId::new(j as u32)).index()].hash(&mut h);
                }
                let key = h.finish();
                best = Some(best.map_or(key, |b| b.min(key)));
            }
        }
        match best {
            Some(key) => (key, true),
            None => {
                let mut h = DefaultHasher::new();
                0u8.hash(&mut h);
                ex.fingerprint().hash(&mut h);
                fires.hash(&mut h);
                (h.finish(), false)
            }
        }
    }

    fn record_key_scheme(&self, canonical: bool) {
        if canonical {
            self.shared.sym_canonical.fetch_add(1, Ordering::SeqCst);
        } else {
            self.shared.sym_fallback.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn insert_visited(&self, key: u64) -> bool {
        let shard = (key % VISITED_SHARDS as u64) as usize;
        self.shared.visited[shard].lock().unwrap().insert(key)
    }

    fn stats_snapshot(&self, start: Instant) -> ExploreStats {
        let s = self.shared;
        ExploreStats {
            states: s.states.load(Ordering::SeqCst),
            transitions: s.transitions.load(Ordering::SeqCst),
            deduped: s.deduped.load(Ordering::SeqCst),
            scrubbed: s.scrubbed.load(Ordering::SeqCst),
            sym_canonical: s.sym_canonical.load(Ordering::SeqCst),
            sym_fallback: s.sym_fallback.load(Ordering::SeqCst),
            elapsed: start.elapsed(),
            workers: self.checker.workers,
        }
    }

    fn halt(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _guard = self.shared.queue.lock().unwrap();
        self.shared.idle.notify_all();
    }

    /// Worker loop: expand frames from a local stack, refill from (and
    /// offload to) the shared injector.
    fn worker(&self) {
        let mut local: Vec<Frame<V, P>> = Vec::new();
        loop {
            let frame = match local.pop() {
                Some(f) => f,
                None => {
                    let mut queue = self.shared.queue.lock().unwrap();
                    loop {
                        if self.shared.stop.load(Ordering::SeqCst)
                            || self.shared.in_flight.load(Ordering::SeqCst) == 0
                        {
                            return;
                        }
                        if let Some(f) = queue.pop() {
                            break f;
                        }
                        queue = self.shared.idle.wait(queue).unwrap();
                    }
                }
            };
            self.expand(frame, &mut local);
            if self.shared.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last frame done: wake idle workers so they observe
                // in_flight == 0 and exit.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.idle.notify_all();
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            // Work stealing, donor side: when the injector is dry and
            // we hold more than one frame, donate the older half.
            if local.len() > 1 {
                if let Ok(mut queue) = self.shared.queue.try_lock() {
                    if queue.is_empty() {
                        let donate = local.len() / 2;
                        queue.extend(local.drain(..donate));
                        self.shared.idle.notify_all();
                    }
                }
            }
        }
    }

    /// Applies every enabled action to `frame`, pushing new states onto
    /// `local`.
    fn expand(&self, frame: Frame<V, P>, local: &mut Vec<Frame<V, P>>) {
        let ck = self.checker;
        let ex = &frame.ex;

        // 1. Deliveries, one per distinct (from, to, content) triple —
        //    duplicate messages yield identical successors.
        let mut seen: HashSet<(ProcessId, ProcessId, u64)> = HashSet::new();
        let deliveries: Vec<Action> = ex
            .pending()
            .iter()
            .filter(|m| seen.insert((m.from, m.to, m.content_key())))
            .map(|m| Action::Deliver {
                from: m.from,
                to: m.to,
                key: m.content_key(),
            })
            .collect();
        for action in deliveries {
            self.push_successor(&frame, action, local);
        }
        // 2. Crashes.
        if frame.crashes < ck.max_crashes {
            for p in ex.alive().iter() {
                self.push_successor(&frame, Action::Crash(p), local);
            }
        }
        // 3. Timer firings.
        for p in ex.alive().iter() {
            if frame.fires[p.index()] >= ck.timer_budget {
                continue;
            }
            if let Some(allowed) = ck.timer_processes {
                if !allowed.contains(p) {
                    continue;
                }
            }
            for timer in ex.armed_timers(p) {
                if !ck.timers.contains(&timer) {
                    continue;
                }
                self.push_successor(&frame, Action::Fire(p, timer), local);
            }
        }
    }

    fn push_successor(&self, frame: &Frame<V, P>, action: Action, local: &mut Vec<Frame<V, P>>) {
        if self.shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let ck = self.checker;
        let mut next = frame.ex.clone();
        let mut crashes = frame.crashes;
        let mut fires = frame.fires.clone();
        match action {
            Action::Deliver { from, to, key } => {
                let id = next
                    .pending_matching(|m| m.from == from && m.to == to && m.content_key() == key)
                    .into_iter()
                    .next()
                    .expect("enumerated delivery exists");
                next.deliver(id);
            }
            Action::Crash(p) => {
                next.crash(p);
                crashes += 1;
            }
            Action::Fire(p, t) => {
                next.fire_timer(p, t);
                fires[p.index()] += 1;
            }
        }
        self.shared.transitions.fetch_add(1, Ordering::SeqCst);
        if ck.por {
            let dropped = next.scrub_inert_mail();
            if dropped > 0 {
                self.shared.scrubbed.fetch_add(dropped, Ordering::SeqCst);
            }
        }

        // Violation check *before* dedup: the decide log is not part of
        // the fingerprint, so a violating state may collide with a
        // clean visited one and must not be merged away.
        if let Some(report) = ck.violated(&next) {
            let node = {
                let mut arena = self.shared.arena.lock().unwrap();
                arena.push(ArenaNode {
                    parent: frame.node,
                    action,
                });
                arena.len() - 1
            };
            let mut slot = self.shared.violation.lock().unwrap();
            if slot.is_none() {
                *slot = Some((report, node));
            }
            drop(slot);
            self.halt();
            return;
        }

        let (key, canonical) = self.canonical_key(&next, &fires);
        if !self.insert_visited(key) {
            self.shared.deduped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        self.record_key_scheme(canonical);
        let states = self.shared.states.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(c) = self.collect {
            c.lock().unwrap().insert(next.decisions().to_vec());
        }
        if states >= ck.max_states {
            self.shared.truncated.store(true, Ordering::SeqCst);
            self.halt();
            return;
        }
        let node = {
            let mut arena = self.shared.arena.lock().unwrap();
            arena.push(ArenaNode {
                parent: frame.node,
                action,
            });
            arena.len() - 1
        };
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        local.push(Frame {
            ex: next,
            node,
            crashes,
            fires,
        });
    }
}

/// Replays a counterexample `script` against `ex` (typically a fresh
/// executor from the same `setup` closure the checker ran). Returns
/// `false` if any step did not apply — a sign the executor was built
/// differently from the checked one.
///
/// Deliveries match the first pending message (in send order) with the
/// scripted `(from, to, content_key)` triple; equal-triple duplicates
/// are interchangeable, so the choice cannot change any decision.
pub fn replay_script<V, P>(ex: &mut ManualExecutor<V, P>, script: &[Action]) -> bool
where
    V: Value,
    P: Protocol<V>,
{
    for action in script {
        match *action {
            Action::Deliver { from, to, key } => {
                let Some(id) = ex
                    .pending_matching(|m| m.from == from && m.to == to && m.content_key() == key)
                    .into_iter()
                    .next()
                else {
                    return false;
                };
                ex.deliver(id);
            }
            Action::Crash(p) => ex.crash(p),
            Action::Fire(p, t) => {
                if !ex.fire_timer(p, t) {
                    return false;
                }
            }
        }
    }
    true
}

/// Renders `script` in the `twostep-fuzz --replay` token format
/// (`i:K` deliver-by-index, `c:A` crash, `t:A.K` fire timer `K` of
/// process `A`), replaying it against a fresh executor built by
/// `setup` — which must match the closure handed to
/// [`ModelChecker::run`].
///
/// The fuzzer addresses pending messages and armed timers
/// *positionally*, and it never scrubs inert mail, so the positions are
/// computed against the unreduced soup the fuzzer will actually see
/// (scrubbed-in-the-checker messages linger there harmlessly: by
/// construction they are permanent no-ops or addressed to the dead).
/// Returns `None` if the script references a message or timer the
/// replay executor does not have.
pub fn fuzz_replay_tokens<V, P, F>(
    cfg: SystemConfig,
    setup: F,
    script: &[Action],
) -> Option<Vec<String>>
where
    V: Value,
    P: Protocol<V>,
    F: FnOnce(SystemConfig) -> ManualExecutor<V, P>,
{
    let mut ex = setup(cfg);
    let mut out = Vec::with_capacity(script.len());
    for action in script {
        match *action {
            Action::Deliver { from, to, key } => {
                let (pos, id) = {
                    let pending = ex.pending();
                    let pos = pending
                        .iter()
                        .position(|m| m.from == from && m.to == to && m.content_key() == key)?;
                    (pos, pending[pos].id)
                };
                out.push(format!("i:{pos}"));
                ex.deliver(id);
            }
            Action::Crash(p) => {
                out.push(format!("c:{}", p.as_u32()));
                ex.crash(p);
            }
            Action::Fire(p, t) => {
                let pos = ex.armed_timers(p).iter().position(|&x| x == t)?;
                out.push(format!("t:{}.{pos}", p.as_u32()));
                ex.fire_timer(p, t);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use twostep_types::protocol::Effects;

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct M(u64);

    impl RelabelHash for M {}

    /// Deliberately broken "consensus": decide the first value received.
    #[derive(Debug, Clone)]
    struct FirstWins {
        me: ProcessId,
        n: usize,
        value: u64,
        decided: Option<u64>,
    }

    impl Protocol<u64> for FirstWins {
        type Message = M;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, eff: &mut Effects<u64, M>) {
            eff.broadcast_others(M(self.value), self.n, self.me);
        }
        fn on_propose(&mut self, _: u64, _: &mut Effects<u64, M>) {}
        fn on_message(&mut self, _: ProcessId, m: M, eff: &mut Effects<u64, M>) {
            if self.decided.is_none() {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, M>) {}
        fn decision(&self) -> Option<u64> {
            self.decided
        }
        fn message_is_noop(&self, _: ProcessId, _: &M) -> bool {
            // Once decided, further messages change nothing — and
            // `decided` is never cleared.
            self.decided.is_some()
        }
    }

    /// Trivially safe: never decides.
    #[derive(Debug, Clone)]
    struct Mute(ProcessId);

    impl Protocol<u64> for Mute {
        type Message = M;
        fn id(&self) -> ProcessId {
            self.0
        }
        fn on_start(&mut self, eff: &mut Effects<u64, M>) {
            eff.send(ProcessId::new(0), M(1));
        }
        fn on_propose(&mut self, _: u64, _: &mut Effects<u64, M>) {}
        fn on_message(&mut self, _: ProcessId, _: M, _: &mut Effects<u64, M>) {}
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, M>) {}
        fn decision(&self) -> Option<u64> {
            None
        }
        fn message_is_noop(&self, _: ProcessId, _: &M) -> bool {
            true
        }
    }

    fn first_wins(cfg: SystemConfig) -> ManualExecutor<u64, FirstWins> {
        let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
            me: q,
            n: cfg.n(),
            value: u64::from(q.as_u32()),
            decided: None,
        });
        ex.start_all();
        ex
    }

    #[test]
    fn finds_agreement_violation_in_broken_protocol() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::new()
            .proposed(vec![0, 1, 2])
            .run(cfg, first_wins);
        let CheckOutcome::Violation { report, script, .. } = outcome else {
            panic!("first-wins must violate agreement under some schedule");
        };
        assert!(report.contains("agreement violated"));
        assert!(!script.is_empty());
    }

    #[test]
    fn counterexample_script_replays_to_the_violation() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let CheckOutcome::Violation { script, .. } = ModelChecker::new().run(cfg, first_wins)
        else {
            panic!("expected a violation");
        };
        let mut ex = first_wins(cfg);
        assert!(replay_script(&mut ex, &script), "script must apply");
        assert!(
            !ex.agreement(),
            "replayed script must reproduce the violation"
        );
    }

    #[test]
    fn violation_script_survives_reduction_toggles() {
        // Content-keyed actions replay identically whether or not the
        // finding run reduced its state space.
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        for (symmetry, por) in [(false, false), (true, false), (false, true), (true, true)] {
            let outcome = ModelChecker::new()
                .symmetry(symmetry)
                .por(por)
                .run(cfg, first_wins);
            let CheckOutcome::Violation { script, .. } = outcome else {
                panic!("expected a violation at symmetry={symmetry} por={por}");
            };
            let mut ex = first_wins(cfg);
            assert!(replay_script(&mut ex, &script));
            assert!(!ex.agreement(), "symmetry={symmetry} por={por}");
        }
    }

    #[test]
    fn fuzz_tokens_positionally_encode_the_script() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let CheckOutcome::Violation { script, .. } = ModelChecker::new().run(cfg, first_wins)
        else {
            panic!("expected a violation");
        };
        let tokens = fuzz_replay_tokens(cfg, first_wins, &script).expect("script must tokenize");
        assert_eq!(tokens.len(), script.len());
        assert!(tokens.iter().all(|t| t.starts_with("i:")));
        // Decode the positional tokens the way the fuzzer does and
        // check the violation still reproduces.
        let mut ex = first_wins(cfg);
        for t in &tokens {
            let k: usize = t.strip_prefix("i:").unwrap().parse().unwrap();
            let ids: Vec<_> = ex.pending().iter().map(|m| m.id).collect();
            ex.deliver(ids[k % ids.len()]);
        }
        assert!(!ex.agreement());
    }

    #[test]
    fn clean_protocol_reports_clean() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new().por(false).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, Mute);
            ex.start_all();
            ex
        });
        match outcome {
            CheckOutcome::Clean {
                states, truncated, ..
            } => {
                assert!(!truncated);
                assert!(states >= 2, "at least root + one delivery");
            }
            CheckOutcome::Violation { report, .. } => panic!("mute protocol violated: {report}"),
        }
    }

    #[test]
    fn por_scrubs_inert_mail() {
        // Mute declares every message a permanent no-op: with POR on,
        // the whole soup is scrubbed at the root and exploration
        // collapses to the single root state.
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new().run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, Mute);
            ex.start_all();
            ex
        });
        let CheckOutcome::Clean {
            states,
            truncated,
            stats,
        } = outcome
        else {
            panic!("mute protocol must be clean");
        };
        assert!(!truncated);
        assert_eq!(states, 1, "all mail was inert");
        assert_eq!(stats.scrubbed, 3, "every Mute send scrubbed at root");
    }

    #[test]
    fn state_bound_truncates() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new().max_states(2).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: 7, // all same value: no violation possible
                decided: None,
            });
            ex.start_all();
            ex
        });
        match outcome {
            CheckOutcome::Clean { truncated, .. } => assert!(truncated),
            CheckOutcome::Violation { report, .. } => panic!("unexpected: {report}"),
        }
    }

    #[test]
    fn validity_checked_against_proposed_set() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::new().proposed(vec![100]).run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: 7, // not in the declared proposed set
                decided: None,
            });
            ex.start_all();
            ex
        });
        let CheckOutcome::Violation { report, .. } = outcome else {
            panic!("expected validity violation");
        };
        assert!(report.contains("validity"));
    }

    #[test]
    fn crash_actions_respect_bound() {
        // With crashes enabled, Mute stays clean and exploration
        // terminates (crashes only shrink behavior).
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::<u64>::new()
            .max_crashes(1)
            .por(false)
            .run(cfg, |cfg| {
                let mut ex = ManualExecutor::new(cfg, Mute);
                ex.start_all();
                ex
            });
        assert!(outcome.is_clean());
    }

    #[test]
    fn parallel_exploration_matches_single_worker() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let build = |cfg: SystemConfig| {
            let mut ex = ManualExecutor::new(cfg, |q| FirstWins {
                me: q,
                n: cfg.n(),
                value: 7,
                decided: None,
            });
            ex.start_all();
            ex
        };
        let single = ModelChecker::<u64>::new().run(cfg, build);
        let multi = ModelChecker::<u64>::new().workers(4).run(cfg, build);
        let (CheckOutcome::Clean { states: s1, .. }, CheckOutcome::Clean { states: s2, .. }) =
            (&single, &multi)
        else {
            panic!("same-value first-wins cannot violate");
        };
        assert_eq!(s1, s2, "visited-state count is schedule-independent");
        assert_eq!(multi.stats().workers, 4);
    }

    #[test]
    fn stats_report_rates_and_counters() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let outcome = ModelChecker::new().run(cfg, first_wins);
        let stats = outcome.stats();
        assert!(stats.transitions >= stats.states - 1);
        assert!(stats.states_per_sec() > 0.0);
    }
}
