//! Trace checkers for the consensus task specification (§2).

use std::fmt;

use twostep_sim::Trace;
use twostep_types::{Duration, ProcessId, ProcessSet, Time, Value};

/// A violated consensus property, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation<V> {
    /// Two different values were decided.
    Agreement {
        /// First decision observed.
        first: (ProcessId, V),
        /// The conflicting decision.
        conflicting: (ProcessId, V),
    },
    /// A decided value was never proposed.
    Validity {
        /// The offending decider.
        process: ProcessId,
        /// The unproposed value it decided.
        value: V,
    },
    /// A process decided more than once.
    Integrity {
        /// The offending process.
        process: ProcessId,
        /// How many decide events it produced.
        times: usize,
    },
    /// A correct process never decided.
    Termination {
        /// The processes that should have decided but did not.
        undecided: ProcessSet,
    },
}

impl<V: fmt::Debug> fmt::Display for Violation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Agreement { first, conflicting } => write!(
                f,
                "agreement violated: {} decided {:?} but {} decided {:?}",
                first.0, first.1, conflicting.0, conflicting.1
            ),
            Violation::Validity { process, value } => {
                write!(
                    f,
                    "validity violated: {process} decided unproposed value {value:?}"
                )
            }
            Violation::Integrity { process, times } => {
                write!(f, "integrity violated: {process} decided {times} times")
            }
            Violation::Termination { undecided } => {
                write!(f, "termination violated: {undecided} never decided")
            }
        }
    }
}

/// Checks Agreement over **every** decide event in the trace (including
/// re-decisions and decisions by processes that later crashed — the
/// paper's Agreement is uniform).
pub fn check_agreement<V: Value>(trace: &Trace<V>) -> Result<(), Violation<V>> {
    let decisions = trace.decisions();
    let Some((p0, v0, _)) = decisions.first() else {
        return Ok(());
    };
    for (p, v, _) in &decisions[1..] {
        if v != v0 {
            return Err(Violation::Agreement {
                first: (*p0, v0.clone()),
                conflicting: (*p, v.clone()),
            });
        }
    }
    Ok(())
}

/// Checks Validity: every decided value is among `proposed`.
///
/// `proposed` should contain the values that actually *entered the
/// system* — for task protocols, the initial values of processes that
/// took at least one step; for object protocols, the arguments of
/// `propose` invocations.
pub fn check_validity<V: Value>(trace: &Trace<V>, proposed: &[V]) -> Result<(), Violation<V>> {
    for (p, v, _) in trace.decisions() {
        if !proposed.contains(&v) {
            return Err(Violation::Validity {
                process: p,
                value: v,
            });
        }
    }
    Ok(())
}

/// Checks Integrity: each process decides at most once.
pub fn check_integrity<V: Value>(trace: &Trace<V>) -> Result<(), Violation<V>> {
    let decisions = trace.decisions();
    for p in decisions.iter().map(|(p, _, _)| *p).collect::<ProcessSet>() {
        let times = decisions.iter().filter(|(q, _, _)| *q == p).count();
        if times > 1 {
            return Err(Violation::Integrity { process: p, times });
        }
    }
    Ok(())
}

/// Checks Termination: every process in `correct` decided.
pub fn check_termination<V: Value>(
    trace: &Trace<V>,
    correct: ProcessSet,
) -> Result<(), Violation<V>> {
    let deciders: ProcessSet = trace.decisions().iter().map(|(p, _, _)| *p).collect();
    let undecided = correct.difference(deciders);
    if undecided.is_empty() {
        Ok(())
    } else {
        Err(Violation::Termination { undecided })
    }
}

/// The processes whose runs were two-step (Definition 3: decided by
/// `2Δ`), per the trace.
pub fn two_step_deciders<V: Value>(trace: &Trace<V>) -> ProcessSet {
    let deadline = Time::ZERO + Duration::deltas(2);
    trace
        .decisions()
        .iter()
        .filter(|(_, _, t)| *t <= deadline)
        .map(|(p, _, _)| *p)
        .collect()
}

/// Runs all safety checks plus termination; returns every violation
/// found (empty = clean run).
pub fn check_all<V: Value>(
    trace: &Trace<V>,
    proposed: &[V],
    correct: ProcessSet,
) -> Vec<Violation<V>> {
    let mut violations = Vec::new();
    if let Err(v) = check_agreement(trace) {
        violations.push(v);
    }
    if let Err(v) = check_validity(trace, proposed) {
        violations.push(v);
    }
    if let Err(v) = check_integrity(trace) {
        violations.push(v);
    }
    if let Err(v) = check_termination(trace, correct) {
        violations.push(v);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_sim::TraceEvent;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn decided(tr: &mut Trace<u64>, i: u32, v: u64, t: u64) {
        tr.push(TraceEvent::Decided {
            time: Time::from_units(t),
            process: p(i),
            value: v,
        });
    }

    #[test]
    fn clean_trace_passes_everything() {
        let mut tr: Trace<u64> = Trace::new();
        decided(&mut tr, 0, 5, 1000);
        decided(&mut tr, 1, 5, 2000);
        let correct: ProcessSet = [p(0), p(1)].into_iter().collect();
        assert!(check_all(&tr, &[5, 9], correct).is_empty());
    }

    #[test]
    fn agreement_violation_reported_with_evidence() {
        let mut tr: Trace<u64> = Trace::new();
        decided(&mut tr, 0, 5, 1000);
        decided(&mut tr, 1, 6, 2000);
        let err = check_agreement(&tr).unwrap_err();
        assert_eq!(
            err,
            Violation::Agreement {
                first: (p(0), 5),
                conflicting: (p(1), 6)
            }
        );
        assert!(err.to_string().contains("agreement violated"));
    }

    #[test]
    fn validity_catches_invented_values() {
        let mut tr: Trace<u64> = Trace::new();
        decided(&mut tr, 0, 42, 1000);
        assert!(check_validity(&tr, &[42]).is_ok());
        let err = check_validity(&tr, &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            Violation::Validity {
                process: p(0),
                value: 42
            }
        );
    }

    #[test]
    fn integrity_catches_double_decision() {
        let mut tr: Trace<u64> = Trace::new();
        decided(&mut tr, 0, 5, 1000);
        decided(&mut tr, 0, 5, 2000);
        let err = check_integrity(&tr).unwrap_err();
        assert_eq!(
            err,
            Violation::Integrity {
                process: p(0),
                times: 2
            }
        );
    }

    #[test]
    fn termination_lists_stragglers() {
        let mut tr: Trace<u64> = Trace::new();
        decided(&mut tr, 0, 5, 1000);
        let correct: ProcessSet = [p(0), p(1), p(2)].into_iter().collect();
        let err = check_termination(&tr, correct).unwrap_err();
        let Violation::Termination { undecided } = err else {
            panic!("wrong violation kind")
        };
        assert_eq!(undecided.len(), 2);
        assert!(undecided.contains(p(1)) && undecided.contains(p(2)));
    }

    #[test]
    fn two_step_boundary_inclusive() {
        let mut tr: Trace<u64> = Trace::new();
        decided(&mut tr, 0, 5, 2000); // exactly 2Δ: two-step
        decided(&mut tr, 1, 5, 2001); // just over: not
        let fast = two_step_deciders(&tr);
        assert!(fast.contains(p(0)));
        assert!(!fast.contains(p(1)));
    }

    #[test]
    fn empty_trace_is_vacuously_safe() {
        let tr: Trace<u64> = Trace::new();
        assert!(check_agreement(&tr).is_ok());
        assert!(check_validity(&tr, &[]).is_ok());
        assert!(check_integrity(&tr).is_ok());
        assert!(check_termination(&tr, ProcessSet::new()).is_ok());
    }
}
