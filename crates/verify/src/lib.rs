//! Verification toolkit for the two-step consensus reproduction.
//!
//! Four instruments, each mechanizing a different part of the paper:
//!
//! * [`props`] — trace checkers for the consensus task specification
//!   (§2): Agreement, Validity, Integrity, Termination, and two-step-ness
//!   (Definition 3). Run over [`twostep_sim::Trace`]s from any engine.
//! * [`linearizability`] — a history checker for the consensus *object*
//!   specification (linearizable wait-free `propose`), with a
//!   brute-force reference implementation used to validate the fast
//!   checker.
//! * [`model_check`] — a bounded-exhaustive explorer over
//!   [`twostep_sim::ManualExecutor`] schedules: every interleaving of
//!   message deliveries, bounded crashes and bounded timer firings, with
//!   process-symmetry canonicalization, inert-mail partial-order
//!   reduction, and a parallel work-stealing frontier. Checks safety in
//!   *all* schedules, not just sampled ones, and emits counterexamples
//!   replayable through `twostep-fuzz --replay`.
//! * [`adversary`] — the paper's lower-bound proofs (§B.1, §B.2) turned
//!   into executable schedules: below the tight bounds the constructed
//!   interleavings drive the real protocol into an agreement violation;
//!   at the bounds the same strategies are exhibited failing (the
//!   recovery rule's tie-break and proposer exclusion save the run).
//!   This is the empirical content of Theorems 5 and 6 "only if".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod linearizability;
pub mod model_check;
pub mod props;
pub mod twostep;

pub use adversary::{
    fast_paxos_at_bound, fast_paxos_below_bound, object_adversary_grid, object_at_bound,
    object_below_bound, object_exclusion_demo, object_guard_demo, task_adversary_grid,
    task_at_bound, task_at_bound_with, task_below_bound, AdversaryReport,
};
pub use linearizability::{History, LinearizabilityError, Op};
pub use model_check::{
    fuzz_replay_tokens, replay_script, Action, CheckOutcome, ExploreStats, ModelChecker,
};
pub use props::{check_agreement, check_integrity, check_termination, check_validity, Violation};
pub use twostep::{check_object_conformance, check_task_conformance, ConformanceReport};
