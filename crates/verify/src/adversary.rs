//! The lower-bound proofs of Appendix B, mechanized.
//!
//! Theorems 5 and 6 ("only if") prove that **no** protocol can be
//! f-resilient and e-two-step below `max{2e+f, 2f+1}` (task) or
//! `max{2e+f-1, 2f+1}` (object). The proofs are constructive: they
//! splice two-step runs into a single run in which two different values
//! get decided. This module executes those splices against the paper's
//! own protocol deliberately deployed below its bound, producing a
//! *concrete agreement violation* — and shows the same adversarial
//! strategy failing at the bound, where the recovery rule's proposer
//! exclusion and max-value tie-break neutralize it.
//!
//! ## Task splice (§B.1 instantiated)
//!
//! At `n = 2e+f-1`, partition `Π = E0 ∪ F0 ∪ X ∪ E1` with `|E0| = e`,
//! `|F0| = f-1`, `|E1| = e` (`X` empty below the bound). `E0 ∪ F0`
//! propose value 0, `E1` propose value 1. The adversary:
//!
//! 1. lets `w = max(E1)` win the fast path with votes from
//!    `E1\{w} ∪ F0` — exactly `n-e` supporters including `w`, so `w`
//!    **decides 1**;
//! 2. lets `E0` vote for value 0 proposed by `c ∈ F0`;
//! 3. crashes `F0 ∪ {w}` (that's `f` crashes) and withholds all other
//!    messages;
//! 4. runs a recovery ballot among the survivors `E0 ∪ E1\{w}`
//!    (`= n-f`). In the `1B` quorum, value 0 has `e` votes and value 1
//!    has `e-1`; the threshold is `n-f-e = e-1`, so 0 sits *above* the
//!    threshold and the rule must select 0 — **deciding 0** and
//!    violating agreement. At `n = 2e+f` the same strategy leaves the
//!    fast-decided 1 tied at the threshold and the max-value tie-break
//!    rescues it (Lemma 7 working as proved).
//!
//! ## Object splice (§B.2 instantiated)
//!
//! At `n = 2e+f-2`, take quorums `E0 ∋ p`, `E1 ∋ q` of size `n-e` with
//! `F = E0 ∩ E1` (`|F| = f-2`). Only `p` proposes 0 and `q` proposes 1.
//! The adversary delivers `Propose(0)` to `E0* = E0\(F ∪ {p})`,
//! `Propose(1)` to `E1* ∪ F`, completes `q`'s fast quorum
//! (`F ∪ E1* ∪ {q}`, size `n-e`) so `q` **decides 1**, crashes
//! `F ∪ {q}` (`f-1` crashes), and runs recovery among `E0* ∪ E1*`
//! (`= n-f`, excluding the silent `p`). Both values then have `e-1`
//! votes — *both above* the threshold `n-f-e = e-2` — and the rule's
//! forced pick decides 0. At `n = 2e+f-1` the uniqueness count
//! `2(n-f-e)+2 > n-f` holds again and the strategy fails.

use twostep_core::{Ablations, OmegaMode, TwoStepBuilder};
use twostep_sim::ManualExecutor;
use twostep_types::protocol::TimerId;
use twostep_types::{ProcessId, ProcessSet, SystemConfig};

use twostep_core::Msg;

/// The outcome of one adversarial construction.
#[derive(Debug)]
pub struct AdversaryReport {
    /// The configuration attacked.
    pub cfg: SystemConfig,
    /// Every decision the run produced, in order.
    pub decisions: Vec<(ProcessId, u64)>,
    /// Whether agreement was violated.
    pub agreement_violated: bool,
    /// Human-readable account of the schedule.
    pub narrative: String,
}

impl AdversaryReport {
    fn from_log(cfg: SystemConfig, log: &[(ProcessId, u64)], narrative: String) -> Self {
        let violated = log
            .first()
            .is_some_and(|(_, v0)| log.iter().any(|(_, v)| v != v0));
        AdversaryReport {
            cfg,
            decisions: log.to_vec(),
            agreement_violated: violated,
            narrative,
        }
    }
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i as u32)
}

/// Runs the §B.1 splice against the task protocol at `n = 2e+f-1` (one
/// below the Theorem 5 bound). Requires `f ≥ 2` and `2e ≥ f+2` so that
/// the two-step constraint (not bare resilience) is binding.
///
/// # Panics
///
/// Panics if `(e, f)` does not satisfy the preconditions above.
pub fn task_below_bound(e: usize, f: usize) -> AdversaryReport {
    assert!(f >= 2, "the splice needs |F0| = f-1 >= 1");
    assert!(
        2 * e >= f + 2,
        "need 2e+f-1 >= 2f+1 so the two-step bound binds"
    );
    let n = 2 * e + f - 1;
    run_task_splice(e, f, n)
}

/// Runs the *same* adversarial strategy at the Theorem 5 bound
/// `n = 2e+f`; the report must show agreement intact (the max-value
/// tie-break selects the fast-decided value).
///
/// # Panics
///
/// Panics if `(e, f)` does not satisfy the same preconditions as
/// [`task_below_bound`].
pub fn task_at_bound(e: usize, f: usize) -> AdversaryReport {
    assert!(f >= 2 && 2 * e >= f + 2);
    let n = 2 * e + f;
    run_task_splice(e, f, n)
}

/// The parameterized §B.1 splice. Partition (by id):
/// `E0 = {0..e}`, `F0 = {e..e+f-1}`, `X = {e+f-1..n-e}` (extras, empty
/// below the bound), `E1 = {n-e..n}`, `w = n-1`, `c = e` (first of F0).
fn run_task_splice_with(e: usize, f: usize, n: usize, ablations: Ablations) -> AdversaryReport {
    let cfg = SystemConfig::new(n, e, f).expect("valid adversary configuration");
    let leader = p(0);
    let mut ex = ManualExecutor::new(cfg, |q| {
        // Values: E1 members propose 1, everyone else proposes 0.
        let value = if q.index() >= n - e { 1u64 } else { 0u64 };
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .ablations(ablations)
            .task(q, value)
    });
    let w = p(n - 1);
    let c = p(e);
    let e0: Vec<ProcessId> = (0..e).map(p).collect();
    let f0: Vec<ProcessId> = (e..e + f - 1).map(p).collect();
    let extras: Vec<ProcessId> = (e + f - 1..n - e).map(p).collect();
    let e1_rest: Vec<ProcessId> = (n - e..n - 1).map(p).collect();

    let mut narrative = format!(
        "task splice at {cfg}: E0={e0:?} F0={f0:?} X={extras:?} E1\\{{w}}={e1_rest:?} w={w} c={c}\n"
    );

    ex.start_all();

    // Step 1: w's Propose(1) reaches E1\{w}, F0 and the extras; all vote 1.
    let voters_for_w: Vec<ProcessId> = e1_rest.iter().chain(&f0).chain(&extras).copied().collect();
    for &q in &voters_for_w {
        for id in
            ex.pending_matching(|m| m.from == w && m.to == q && matches!(m.msg, Msg::Propose(_)))
        {
            ex.deliver(id);
        }
    }
    // Their fast votes flow back to w: with w itself that is n-e — w
    // decides 1 on the fast path.
    for &q in &voters_for_w {
        for id in
            ex.pending_matching(|m| m.from == q && m.to == w && matches!(m.msg, Msg::TwoB(..)))
        {
            ex.deliver(id);
        }
    }
    narrative += &format!("w={w} fast-decided {:?}\n", ex.decision_of(w));

    // Step 2: c's Propose(0) reaches E0; they vote 0.
    for &q in &e0 {
        for id in
            ex.pending_matching(|m| m.from == c && m.to == q && matches!(m.msg, Msg::Propose(_)))
        {
            ex.deliver(id);
        }
    }

    // Step 3: crash F0 ∪ {w} — exactly f processes.
    for &q in f0.iter().chain(std::iter::once(&w)) {
        ex.crash(q);
    }
    narrative += &format!("crashed F0 ∪ {{w}} = {:?} ∪ {{{w}}}\n", f0);

    // Step 4: recovery ballot led by p0 among the n-f survivors.
    let survivors: Vec<ProcessId> = e0.iter().chain(&extras).chain(&e1_rest).copied().collect();
    run_recovery(&mut ex, leader, &survivors, &mut narrative);

    AdversaryReport::from_log(cfg, ex.decide_log(), narrative)
}

/// Runs the §B.2 splice against the object protocol at `n = 2e+f-2`
/// (one below the Theorem 6 bound). Requires `f ≥ 3` and `2e ≥ f+3`
/// (with `e ≤ f`) so the configuration is valid and the two-step bound
/// binds.
///
/// # Panics
///
/// Panics if `(e, f)` does not satisfy the preconditions above.
pub fn object_below_bound(e: usize, f: usize) -> AdversaryReport {
    assert!(f >= 3, "the splice needs |F| = f-2 >= 1");
    assert!(
        2 * e >= f + 3,
        "need 2e+f-2 >= 2f+1 so the two-step bound binds"
    );
    assert!(e <= f, "the paper assumes e <= f");
    let n = 2 * e + f - 2;
    run_object_splice(e, f, n)
}

/// Runs the *same* strategy at the Theorem 6 bound `n = 2e+f-1`; the
/// report must show agreement intact.
///
/// # Panics
///
/// Panics if `(e, f)` does not satisfy the same preconditions as
/// [`object_below_bound`].
pub fn object_at_bound(e: usize, f: usize) -> AdversaryReport {
    assert!(f >= 3 && 2 * e >= f + 3 && e <= f);
    let n = 2 * e + f - 1;
    run_object_splice(e, f, n)
}

/// The parameterized §B.2 splice. Partition (by id):
/// `F = {0..f-2}`, `E0* = {f-2..f-2+(e-1)}`, `E1* = next e-1`,
/// `X = extras` (empty below the bound), `p = n-2`, `q = n-1`.
fn run_object_splice(e: usize, f: usize, n: usize) -> AdversaryReport {
    let cfg = SystemConfig::new(n, e, f).expect("valid adversary configuration");
    let f_set: Vec<ProcessId> = (0..f - 2).map(p).collect();
    let e0_star: Vec<ProcessId> = (f - 2..f - 2 + (e - 1)).map(p).collect();
    let e1_star: Vec<ProcessId> = (f - 2 + (e - 1)..f - 2 + 2 * (e - 1)).map(p).collect();
    let extras: Vec<ProcessId> = (f - 2 + 2 * (e - 1)..n - 2).map(p).collect();
    let proposer_p = p(n - 2);
    let proposer_q = p(n - 1);
    let leader = e0_star[0];

    let mut ex = ManualExecutor::new(cfg, |q| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .object::<u64>(q)
    });

    let mut narrative = format!(
        "object splice at {cfg}: F={f_set:?} E0*={e0_star:?} E1*={e1_star:?} X={extras:?} \
         p={proposer_p} q={proposer_q}\n"
    );

    ex.start_all();
    ex.propose(proposer_p, 0);
    ex.propose(proposer_q, 1);

    // Propose(0) → E0*: they vote 0.
    for &r in &e0_star {
        for id in ex.pending_matching(|m| m.from == proposer_p && m.to == r) {
            ex.deliver(id);
        }
    }
    // Propose(1) → F, E1* and the extras: they vote 1.
    let q_voters: Vec<ProcessId> = f_set
        .iter()
        .chain(&e1_star)
        .chain(&extras)
        .copied()
        .collect();
    for &r in &q_voters {
        for id in ex.pending_matching(|m| m.from == proposer_q && m.to == r) {
            ex.deliver(id);
        }
    }
    // Their votes reach q: F ∪ E1* ∪ X ∪ {q} = n-e — q decides 1 fast.
    for &r in &q_voters {
        for id in ex.pending_matching(|m| {
            m.from == r && m.to == proposer_q && matches!(m.msg, Msg::TwoB(..))
        }) {
            ex.deliver(id);
        }
    }
    narrative += &format!(
        "q={proposer_q} fast-decided {:?}\n",
        ex.decision_of(proposer_q)
    );

    // Crash F ∪ {q}: f-1 processes.
    for &r in f_set.iter().chain(std::iter::once(&proposer_q)) {
        ex.crash(r);
    }
    narrative += &format!("crashed F ∪ {{q}} = {f_set:?} ∪ {{{proposer_q}}}\n");

    // Recovery among E0* ∪ E1* ∪ X — exactly n-f processes; proposer p
    // stays silent (alive, but its messages delayed past the ballot).
    let survivors: Vec<ProcessId> = e0_star
        .iter()
        .chain(&e1_star)
        .chain(&extras)
        .copied()
        .collect();
    run_recovery(&mut ex, leader, &survivors, &mut narrative);

    AdversaryReport::from_log(cfg, ex.decide_log(), narrative)
}

/// Drives one slow ballot at `leader` with exactly the `participants` as
/// the `1B`/`2B` quorum.
fn run_recovery<P>(
    ex: &mut ManualExecutor<u64, P>,
    leader: ProcessId,
    participants: &[ProcessId],
    narrative: &mut String,
) where
    P: twostep_types::protocol::Protocol<u64, Message = Msg<u64>> + Clone,
{
    ex.fire_timer(leader, TimerId::NEW_BALLOT);
    // 1A → participants only.
    for &r in participants {
        for id in
            ex.pending_matching(|m| m.from == leader && m.to == r && matches!(m.msg, Msg::OneA(_)))
        {
            ex.deliver(id);
        }
    }
    // 1B ← participants.
    for &r in participants {
        for id in ex.pending_matching(|m| {
            m.from == r && m.to == leader && matches!(m.msg, Msg::OneB { .. })
        }) {
            ex.deliver(id);
        }
    }
    // 2A → participants.
    for &r in participants {
        for id in
            ex.pending_matching(|m| m.from == leader && m.to == r && matches!(m.msg, Msg::TwoA(..)))
        {
            ex.deliver(id);
        }
    }
    // 2B ← participants.
    for &r in participants {
        for id in
            ex.pending_matching(|m| m.from == r && m.to == leader && matches!(m.msg, Msg::TwoB(..)))
        {
            ex.deliver(id);
        }
    }
    narrative.push_str(&format!(
        "recovery at {leader} over {participants:?} decided {:?}\n",
        ex.decision_of(leader)
    ));
}

/// Ablation demo: replays the at-bound task splice with custom
/// [`Ablations`]. With `no_max_tiebreak`, the exact-threshold tie
/// `{0: e, 1: e}` resolves to the *minimum*, overturning the
/// fast-decided 1 — demonstrating the tie-break (Figure 1 line 58) is
/// necessary at `n = 2e+f`.
///
/// # Panics
///
/// Same preconditions as [`task_at_bound`].
pub fn task_at_bound_with(e: usize, f: usize, ablations: Ablations) -> AdversaryReport {
    assert!(f >= 2 && 2 * e >= f + 2);
    let n = 2 * e + f;
    run_task_splice_with(e, f, n, ablations)
}

fn run_task_splice(e: usize, f: usize, n: usize) -> AdversaryReport {
    run_task_splice_with(e, f, n, Ablations::NONE)
}

/// Ablation demo for the proposer-exclusion set `R` (Figure 1 line 47),
/// at the object bound `n = 2e+f-1`.
///
/// Schedule: `q` proposes 1 and fast-decides with voters
/// `F ∪ E1* ∪ X ∪ {q}` (`n-e`); meanwhile `z` proposes 2 and gathers
/// `e-1` votes from `C`. After crashing `F ∪ {q}`, recovery runs over
/// `Q = E1* ∪ {z} ∪ C` (`n-f`), with `X` silent. Value 1 has exactly
/// `n-f-e = e-1` votes in `R`; value 2 also has `e-1` votes **but its
/// proposer `z` sits inside `Q`**, so the exclusion rule discards them
/// and 1 survives. With `no_proposer_exclusion`, the 2-votes count,
/// 2 > 1 wins the tie-break, and agreement breaks.
///
/// Requires `e ≥ 2`, `f ≥ 2`, `2e ≥ f+2`.
///
/// # Panics
///
/// Panics if the preconditions are not met.
pub fn object_exclusion_demo(e: usize, f: usize, ablations: Ablations) -> AdversaryReport {
    assert!(e >= 2, "the demo needs |E1*| = |C| = e-1 >= 1");
    assert!(f >= 2 && 2 * e >= f + 2, "need 2e+f-1 >= 2f+1");
    let n = 2 * e + f - 1;
    let cfg = SystemConfig::new(n, e, f).expect("valid configuration");

    // Layout by id: F = {0..f-2}, E1* = next e-1, C = next e-1,
    // z, x, q = last three.
    let f_set: Vec<ProcessId> = (0..f.saturating_sub(2)).map(p).collect();
    let e1_star: Vec<ProcessId> = (f - 2..f - 2 + (e - 1)).map(p).collect();
    let c_set: Vec<ProcessId> = (f - 2 + (e - 1)..f - 2 + 2 * (e - 1)).map(p).collect();
    let z = p(n - 3);
    let x = p(n - 2);
    let q = p(n - 1);
    let leader = e1_star[0];

    let mut ex = ManualExecutor::new(cfg, |r| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .ablations(ablations)
            .object::<u64>(r)
    });
    let mut narrative = format!(
        "exclusion demo at {cfg}: F={f_set:?} E1*={e1_star:?} C={c_set:?} z={z} x={x} q={q}\n"
    );

    ex.start_all();
    ex.propose(q, 1);
    ex.propose(z, 2);

    // q's fast quorum: F, E1* and x vote 1.
    let q_voters: Vec<ProcessId> = f_set
        .iter()
        .chain(&e1_star)
        .chain(std::iter::once(&x))
        .copied()
        .collect();
    for &r in &q_voters {
        for id in ex.pending_matching(|m| m.from == q && m.to == r) {
            ex.deliver(id);
        }
    }
    for &r in &q_voters {
        for id in
            ex.pending_matching(|m| m.from == r && m.to == q && matches!(m.msg, Msg::TwoB(..)))
        {
            ex.deliver(id);
        }
    }
    narrative += &format!("q={q} fast-decided {:?}\n", ex.decision_of(q));

    // z's rival support: C votes 2.
    for &r in &c_set {
        for id in ex.pending_matching(|m| m.from == z && m.to == r) {
            ex.deliver(id);
        }
    }

    // Crash F ∪ {q} (f-1 processes); x stays alive but silent.
    for &r in f_set.iter().chain(std::iter::once(&q)) {
        ex.crash(r);
    }

    // Recovery over Q = E1* ∪ {z} ∪ C (n-f processes).
    let survivors: Vec<ProcessId> = e1_star
        .iter()
        .chain(std::iter::once(&z))
        .chain(&c_set)
        .copied()
        .collect();
    run_recovery(&mut ex, leader, &survivors, &mut narrative);

    AdversaryReport::from_log(cfg, ex.decide_log(), narrative)
}

/// Ablation demo for the object red-line precondition (Figure 1
/// line 10), at the object bound `n = 2e+f-1`.
///
/// Every process proposes at startup (`E0 ∪ F0` propose 0, `E1`
/// propose 1) and the §B.1 task splice is replayed. With the red line,
/// `F0` (who proposed 0) refuse to vote for `w`'s 1, the fast path
/// never completes, and the run stays safe. With `no_object_guard`,
/// `F0` vote 1, `w` fast-decides, and recovery — facing `e` votes for 0
/// above the threshold — decides 0: agreement breaks, exactly the task
/// lower bound reasserting itself once the red line is gone.
///
/// # Panics
///
/// Same preconditions as [`task_below_bound`].
pub fn object_guard_demo(e: usize, f: usize, ablations: Ablations) -> AdversaryReport {
    assert!(f >= 2 && 2 * e >= f + 2);
    let n = 2 * e + f - 1; // the object bound
    let cfg = SystemConfig::new(n, e, f).expect("valid configuration");
    let leader = p(0);
    let mut ex = ManualExecutor::new(cfg, |r| {
        TwoStepBuilder::new(cfg)
            .omega(OmegaMode::Static(leader))
            .ablations(ablations)
            .object::<u64>(r)
    });
    let w = p(n - 1);
    let c = p(e);
    let e0: Vec<ProcessId> = (0..e).map(p).collect();
    let f0: Vec<ProcessId> = (e..e + f - 1).map(p).collect();
    let e1_rest: Vec<ProcessId> = (n - e..n - 1).map(p).collect();

    let mut narrative =
        format!("guard demo at {cfg}: E0={e0:?} F0={f0:?} E1\\{{w}}={e1_rest:?} w={w} c={c}\n");

    ex.start_all();
    // Everyone proposes: E1 members 1, everyone else 0.
    for i in 0..n {
        let value = if i >= n - e { 1u64 } else { 0u64 };
        ex.propose(p(i), value);
    }

    // w's Propose(1) reaches E1\{w} and F0.
    let targets: Vec<ProcessId> = e1_rest.iter().chain(&f0).copied().collect();
    for &r in &targets {
        for id in
            ex.pending_matching(|m| m.from == w && m.to == r && matches!(m.msg, Msg::Propose(_)))
        {
            ex.deliver(id);
        }
    }
    for &r in &targets {
        for id in
            ex.pending_matching(|m| m.from == r && m.to == w && matches!(m.msg, Msg::TwoB(..)))
        {
            ex.deliver(id);
        }
    }
    narrative += &format!("w={w} fast decision: {:?}\n", ex.decision_of(w));

    // E0 vote for c's 0 (same value as their own proposal: red line ok).
    for &r in &e0 {
        for id in
            ex.pending_matching(|m| m.from == c && m.to == r && matches!(m.msg, Msg::Propose(_)))
        {
            ex.deliver(id);
        }
    }

    // Crash F0 ∪ {w}; recover among the rest.
    for &r in f0.iter().chain(std::iter::once(&w)) {
        ex.crash(r);
    }
    let survivors: Vec<ProcessId> = e0.iter().chain(&e1_rest).copied().collect();
    run_recovery(&mut ex, leader, &survivors, &mut narrative);

    AdversaryReport::from_log(cfg, ex.decide_log(), narrative)
}

/// Runs an O4-ambiguity splice against **Fast Paxos** at `n = 2e+f`
/// (one below Lamport's bound) — the same tightness statement for the
/// baseline: Lamport's `2e+f+1` is exactly what the O4 recovery rule
/// needs.
///
/// Schedule (no crashes required): proposer `w` gets a full fast quorum
/// of `n-e` votes for value 1 and a learner `L` decides 1; proposer `z`
/// gathers the remaining `e` votes for value 2. The coordinator's `1B`
/// quorum is packed with all `e` 2-voters plus `e` 1-voters: at
/// `n = 2e+f` the O4 threshold `n-f-e = e` is met by *both* values, the
/// rule picks one arbitrarily (here: the max, 2), and agreement breaks.
/// At `n = 2e+f+1` the threshold rises to `e+1`, only the fast-decided
/// value qualifies, and the run stays safe.
///
/// # Panics
///
/// Panics unless `2e ≥ f+1` (so `2e+f ≥ 2f+1` keeps the configuration
/// valid below Lamport's bound).
pub fn fast_paxos_below_bound(e: usize, f: usize) -> AdversaryReport {
    assert!(2 * e > f, "need 2e+f >= 2f+1 so the configuration is valid");
    run_fast_paxos_splice(e, f, 2 * e + f)
}

/// The same strategy at Lamport's bound `n = 2e+f+1`; the report must
/// show agreement intact.
///
/// # Panics
///
/// Same preconditions as [`fast_paxos_below_bound`].
pub fn fast_paxos_at_bound(e: usize, f: usize) -> AdversaryReport {
    assert!(2 * e > f);
    run_fast_paxos_splice(e, f, 2 * e + f + 1)
}

/// Layout by id: `z = p0` (proposes 2, also the Ω coordinator),
/// `C2 = p1..p_{e-1}` (further 2-voters), 1-voters next, learner
/// `L = p_{n-2}`, `w = p_{n-1}` (proposes 1).
fn run_fast_paxos_splice(e: usize, f: usize, n: usize) -> AdversaryReport {
    use twostep_baselines::fastpaxos::FastPaxosMsg;
    use twostep_baselines::FastPaxos;

    let cfg = SystemConfig::new(n, e, f).expect("valid adversary configuration");
    let z = p(0);
    let w = p(n - 1);
    let learner = p(n - 2);
    let two_voters: Vec<ProcessId> = (0..e).map(p).collect(); // z included
    let one_voters: Vec<ProcessId> = (e..n).map(p).collect(); // w, L included

    let mut ex = ManualExecutor::new(cfg, |q| {
        // Only z and w carry real values; everyone else proposes nothing.
        if q == z {
            FastPaxos::new(cfg, q, 2u64)
        } else if q == w {
            FastPaxos::new(cfg, q, 1u64)
        } else {
            FastPaxos::passive(cfg, q)
        }
    });
    let mut narrative = format!(
        "fast paxos splice at {cfg}: z={z} (value 2) voters {two_voters:?}, \
         w={w} (value 1) voters {one_voters:?}, learner L={learner}\n"
    );
    ex.start_all();

    // The e 2-voters receive Propose(2) first and vote 2.
    for &r in &two_voters {
        for id in ex.pending_matching(|m| {
            m.from == z && m.to == r && matches!(m.msg, FastPaxosMsg::Propose(_))
        }) {
            ex.deliver(id);
        }
    }
    // The n-e 1-voters receive Propose(1) first and vote 1.
    for &r in &one_voters {
        for id in ex.pending_matching(|m| {
            m.from == w && m.to == r && matches!(m.msg, FastPaxosMsg::Propose(_))
        }) {
            ex.deliver(id);
        }
    }
    // All n-e fast votes for 1 reach the learner: it decides 1 (value 1
    // IS chosen under Fast Paxos semantics — a full fast quorum voted it).
    for &r in &one_voters {
        for id in ex.pending_matching(|m| {
            m.from == r && m.to == learner && matches!(m.msg, FastPaxosMsg::TwoB(..))
        }) {
            ex.deliver(id);
        }
    }
    narrative += &format!("learner {learner} decided {:?}\n", ex.decision_of(learner));

    // Coordinator recovery at z: the 1B quorum is all e 2-voters plus
    // the first n-f-e 1-voters (excluding the learner and w when
    // possible, irrelevant to the counts).
    let quorum: Vec<ProcessId> = two_voters
        .iter()
        .chain(one_voters.iter().take(n - f - e))
        .copied()
        .collect();
    debug_assert_eq!(quorum.len(), cfg.slow_quorum());
    ex.fire_timer(z, twostep_types::protocol::TimerId::NEW_BALLOT);
    for &r in &quorum {
        for id in ex.pending_matching(|m| {
            m.from == z && m.to == r && matches!(m.msg, FastPaxosMsg::OneA(_))
        }) {
            ex.deliver(id);
        }
    }
    for &r in &quorum {
        for id in ex.pending_matching(|m| {
            m.from == r && m.to == z && matches!(m.msg, FastPaxosMsg::OneB { .. })
        }) {
            ex.deliver(id);
        }
    }
    for &r in &quorum {
        for id in ex.pending_matching(|m| {
            m.from == z && m.to == r && matches!(m.msg, FastPaxosMsg::TwoA(..))
        }) {
            ex.deliver(id);
        }
    }
    // Slow votes are broadcast to all learners; deliver the quorum's
    // votes back to z, which decides.
    for &r in &quorum {
        for id in ex.pending_matching(|m| {
            m.from == r && m.to == z && matches!(m.msg, FastPaxosMsg::TwoB(b, _) if b.is_slow())
        }) {
            ex.deliver(id);
        }
    }
    narrative += &format!("coordinator {z} recovery decided {:?}\n", ex.decision_of(z));

    AdversaryReport::from_log(cfg, ex.decide_log(), narrative)
}

/// All `(e, f)` pairs with `f ≤ max_f` on which [`task_below_bound`] is
/// applicable.
pub fn task_adversary_grid(max_f: usize) -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for f in 2..=max_f {
        for e in 1..=f {
            if 2 * e >= f + 2 {
                grid.push((e, f));
            }
        }
    }
    grid
}

/// All `(e, f)` pairs with `f ≤ max_f` on which [`object_below_bound`]
/// is applicable.
pub fn object_adversary_grid(max_f: usize) -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for f in 3..=max_f {
        for e in 1..=f {
            if 2 * e >= f + 3 {
                grid.push((e, f));
            }
        }
    }
    grid
}

/// Helper: the processes still alive in a report... (kept for symmetry
/// with future extensions).
#[allow(dead_code)]
fn alive_set(cfg: SystemConfig, crashed: &[ProcessId]) -> ProcessSet {
    let crashed: ProcessSet = crashed.iter().copied().collect();
    crashed.complement(cfg.n())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_splice_violates_agreement_below_the_bound() {
        for (e, f) in task_adversary_grid(4) {
            let report = task_below_bound(e, f);
            assert!(
                report.agreement_violated,
                "e={e} f={f}: expected a violation at n=2e+f-1\n{}",
                report.narrative
            );
            // Both values decided: 1 fast at w, 0 by recovery.
            let values: std::collections::BTreeSet<u64> =
                report.decisions.iter().map(|(_, v)| *v).collect();
            assert_eq!(values.len(), 2, "{}", report.narrative);
        }
    }

    #[test]
    fn task_splice_fails_at_the_bound() {
        for (e, f) in task_adversary_grid(4) {
            let report = task_at_bound(e, f);
            assert!(
                !report.agreement_violated,
                "e={e} f={f}: the tie-break must rescue n=2e+f\n{}",
                report.narrative
            );
            // The fast decision (1) survives recovery.
            assert!(
                report.decisions.iter().all(|(_, v)| *v == 1),
                "{}",
                report.narrative
            );
        }
    }

    #[test]
    fn object_splice_violates_agreement_below_the_bound() {
        for (e, f) in object_adversary_grid(5) {
            let report = object_below_bound(e, f);
            assert!(
                report.agreement_violated,
                "e={e} f={f}: expected a violation at n=2e+f-2\n{}",
                report.narrative
            );
        }
    }

    #[test]
    fn object_splice_fails_at_the_bound() {
        for (e, f) in object_adversary_grid(5) {
            let report = object_at_bound(e, f);
            assert!(
                !report.agreement_violated,
                "e={e} f={f}: uniqueness must rescue n=2e+f-1\n{}",
                report.narrative
            );
            assert!(
                report.decisions.iter().all(|(_, v)| *v == 1),
                "{}",
                report.narrative
            );
        }
    }

    #[test]
    fn grids_are_nonempty_and_valid() {
        let tg = task_adversary_grid(4);
        assert!(tg.contains(&(2, 2)));
        for (e, f) in &tg {
            assert!(e <= f && 2 * e >= f + 2);
        }
        let og = object_adversary_grid(5);
        assert!(og.contains(&(3, 3)));
        for (e, f) in &og {
            assert!(e <= f && 2 * e >= f + 3);
        }
    }

    #[test]
    #[should_panic(expected = "2e+f-1 >= 2f+1")]
    fn task_adversary_rejects_nonbinding_configs() {
        let _ = task_below_bound(1, 2);
    }

    #[test]
    fn tiebreak_ablation_breaks_the_task_bound() {
        for (e, f) in task_adversary_grid(4) {
            let correct = task_at_bound_with(e, f, Ablations::NONE);
            assert!(!correct.agreement_violated, "{}", correct.narrative);
            let ablated = task_at_bound_with(
                e,
                f,
                Ablations {
                    no_max_tiebreak: true,
                    ..Ablations::NONE
                },
            );
            assert!(
                ablated.agreement_violated,
                "e={e} f={f}: dropping the tie-break must break n=2e+f\n{}",
                ablated.narrative
            );
        }
    }

    #[test]
    fn exclusion_ablation_breaks_the_object_bound() {
        for (e, f) in [(2usize, 2usize), (3, 3), (3, 4)] {
            let correct = object_exclusion_demo(e, f, Ablations::NONE);
            assert!(
                !correct.agreement_violated,
                "e={e} f={f}: exclusion must rescue the run\n{}",
                correct.narrative
            );
            assert!(
                correct.decisions.iter().all(|(_, v)| *v == 1),
                "{}",
                correct.narrative
            );
            let ablated = object_exclusion_demo(
                e,
                f,
                Ablations {
                    no_proposer_exclusion: true,
                    ..Ablations::NONE
                },
            );
            assert!(
                ablated.agreement_violated,
                "e={e} f={f}: counting in-quorum proposers must break n=2e+f-1\n{}",
                ablated.narrative
            );
        }
    }

    #[test]
    fn red_line_ablation_breaks_the_object_bound() {
        for (e, f) in task_adversary_grid(4) {
            let correct = object_guard_demo(e, f, Ablations::NONE);
            assert!(
                !correct.agreement_violated,
                "e={e} f={f}: the red line must keep n=2e+f-1 safe\n{}",
                correct.narrative
            );
            let ablated = object_guard_demo(
                e,
                f,
                Ablations {
                    no_object_guard: true,
                    ..Ablations::NONE
                },
            );
            assert!(
                ablated.agreement_violated,
                "e={e} f={f}: dropping the red line must re-admit the task splice\n{}",
                ablated.narrative
            );
        }
    }
}

#[cfg(test)]
mod fast_paxos_tests {
    use super::*;

    #[test]
    fn fast_paxos_splice_violates_below_lamports_bound() {
        for (e, f) in [(1usize, 1usize), (2, 2), (2, 3), (3, 3)] {
            let report = fast_paxos_below_bound(e, f);
            assert!(
                report.agreement_violated,
                "e={e} f={f}: O4 must turn ambiguous at n=2e+f\n{}",
                report.narrative
            );
            let values: std::collections::BTreeSet<u64> =
                report.decisions.iter().map(|(_, v)| *v).collect();
            assert_eq!(
                values,
                [1u64, 2].into_iter().collect(),
                "{}",
                report.narrative
            );
        }
    }

    #[test]
    fn fast_paxos_splice_fails_at_lamports_bound() {
        for (e, f) in [(1usize, 1usize), (2, 2), (2, 3), (3, 3)] {
            let report = fast_paxos_at_bound(e, f);
            assert!(
                !report.agreement_violated,
                "e={e} f={f}: O4 must be unambiguous at n=2e+f+1\n{}",
                report.narrative
            );
            assert!(
                report.decisions.iter().all(|(_, v)| *v == 1),
                "the fast-decided value must survive: {}",
                report.narrative
            );
        }
    }
}
