//! Linearizability checking for consensus-object histories.
//!
//! The consensus object's sequential specification is tiny: the first
//! `propose(v)` returns `v` and fixes the decision; every later
//! `propose(w)` returns that same decision. A concurrent history is
//! linearizable iff the operations can be totally ordered, respecting
//! real time (an operation that completed before another was invoked
//! must come first), such that the sequence obeys that specification.
//!
//! For this spec the check reduces to two conditions ([`History::check`]):
//!
//! 1. all responses carry the same value `v*`;
//! 2. some invocation proposing `v*` started no later than the first
//!    response completed (otherwise every candidate "first" operation is
//!    forced, by real time, to come after an operation that already
//!    returned `v*`).
//!
//! A brute-force permutation checker ([`History::check_brute_force`])
//! validates the fast path on small histories (and is itself
//! property-tested against it).

use std::fmt;

use twostep_types::{ProcessId, Time, Value};

/// One `propose` operation in a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op<V> {
    /// The invoking process.
    pub process: ProcessId,
    /// The proposed value.
    pub argument: V,
    /// Invocation time.
    pub invoked: Time,
    /// Response value and time; `None` while pending (e.g. the process
    /// crashed before the operation returned).
    pub response: Option<(V, Time)>,
}

/// Why a history is not linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizabilityError<V> {
    /// Two operations returned different values.
    DivergentResponses {
        /// One response.
        a: (ProcessId, V),
        /// A different response.
        b: (ProcessId, V),
    },
    /// The agreed value was never proposed by any operation.
    UnproposedDecision {
        /// The returned-but-never-proposed value.
        value: V,
    },
    /// No proposer of the decided value overlaps or precedes the first
    /// response, so no linearization can put it first.
    DecisionBeforeProposal {
        /// The decided value.
        value: V,
        /// When the first response completed.
        first_response: Time,
        /// The earliest invocation proposing the value.
        earliest_proposal: Time,
    },
    /// An operation is recorded as responding before it was invoked.
    IllFormed {
        /// The offending process.
        process: ProcessId,
    },
}

impl<V: fmt::Debug> fmt::Display for LinearizabilityError<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizabilityError::DivergentResponses { a, b } => write!(
                f,
                "history not linearizable: {} got {:?} but {} got {:?}",
                a.0, a.1, b.0, b.1
            ),
            LinearizabilityError::UnproposedDecision { value } => {
                write!(
                    f,
                    "history not linearizable: decision {value:?} was never proposed"
                )
            }
            LinearizabilityError::DecisionBeforeProposal {
                value,
                first_response,
                earliest_proposal,
            } => write!(
                f,
                "history not linearizable: {value:?} returned at {first_response} before \
                 any proposer of it invoked (earliest at {earliest_proposal})"
            ),
            LinearizabilityError::IllFormed { process } => {
                write!(f, "ill-formed history: {process} responds before invoking")
            }
        }
    }
}

/// A history of `propose` operations on one consensus object.
#[derive(Debug, Clone, Default)]
pub struct History<V> {
    ops: Vec<Op<V>>,
}

impl<V: Value> History<V> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { ops: Vec::new() }
    }

    /// Records an invocation of `propose(argument)` by `process`.
    pub fn invoke(&mut self, process: ProcessId, argument: V, at: Time) {
        self.ops.push(Op {
            process,
            argument,
            invoked: at,
            response: None,
        });
    }

    /// Records the response of `process`'s pending operation.
    ///
    /// # Panics
    ///
    /// Panics if `process` has no pending operation.
    pub fn respond(&mut self, process: ProcessId, value: V, at: Time) {
        let op = self
            .ops
            .iter_mut()
            .find(|o| o.process == process && o.response.is_none())
            .expect("no pending operation for this process");
        op.response = Some((value, at));
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op<V>] {
        &self.ops
    }

    /// Fast linearizability check (see module docs).
    ///
    /// # Errors
    ///
    /// Returns the first [`LinearizabilityError`] found.
    pub fn check(&self) -> Result<(), LinearizabilityError<V>> {
        for op in &self.ops {
            if let Some((_, t)) = &op.response {
                if *t < op.invoked {
                    return Err(LinearizabilityError::IllFormed {
                        process: op.process,
                    });
                }
            }
        }

        let responses: Vec<(&Op<V>, &V, Time)> = self
            .ops
            .iter()
            .filter_map(|o| o.response.as_ref().map(|(v, t)| (o, v, *t)))
            .collect();
        let Some((first_op, v_star, _)) = responses.first() else {
            return Ok(()); // no responses: trivially linearizable
        };

        for (op, v, _) in &responses {
            if v != v_star {
                return Err(LinearizabilityError::DivergentResponses {
                    a: (first_op.process, (*v_star).clone()),
                    b: (op.process, (*v).clone()),
                });
            }
        }

        let proposers: Vec<&Op<V>> = self.ops.iter().filter(|o| o.argument == **v_star).collect();
        if proposers.is_empty() {
            return Err(LinearizabilityError::UnproposedDecision {
                value: (*v_star).clone(),
            });
        }

        let first_response = responses
            .iter()
            .map(|(_, _, t)| *t)
            .min()
            .expect("nonempty");
        let earliest_proposal = proposers.iter().map(|o| o.invoked).min().expect("nonempty");
        if earliest_proposal > first_response {
            return Err(LinearizabilityError::DecisionBeforeProposal {
                value: (*v_star).clone(),
                first_response,
                earliest_proposal,
            });
        }
        Ok(())
    }

    /// Reference checker: tries every permutation of the operations that
    /// respects real-time order and checks the sequential spec, treating
    /// pending operations as either taking effect or not. Exponential;
    /// use only on small histories (tests cap at ~8 operations).
    pub fn check_brute_force(&self) -> bool {
        let n = self.ops.len();
        let mut order: Vec<usize> = (0..n).collect();
        // For pending ops we also need the option to exclude them.
        let completed: Vec<usize> = (0..n).filter(|&i| self.ops[i].response.is_some()).collect();
        let pending: Vec<usize> = (0..n).filter(|&i| self.ops[i].response.is_none()).collect();

        // Enumerate subsets of pending ops to include.
        for mask in 0..(1usize << pending.len()) {
            let mut included = completed.clone();
            for (bit, &i) in pending.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    included.push(i);
                }
            }
            order.clone_from(&included);
            if permute_and_check(self, &mut order, 0) {
                return true;
            }
        }
        false
    }
}

fn respects_real_time<V: Value>(h: &History<V>, order: &[usize]) -> bool {
    // op A must precede op B whenever A responded before B invoked.
    for (i, &a) in order.iter().enumerate() {
        for &b in &order[i + 1..] {
            if let Some((_, tb)) = &h.ops[b].response {
                if *tb < h.ops[a].invoked {
                    return false;
                }
            }
        }
    }
    true
}

fn sequentially_valid<V: Value>(h: &History<V>, order: &[usize]) -> bool {
    let Some(&first) = order.first() else {
        return true;
    };
    let decision = &h.ops[first].argument;
    for &i in order {
        if let Some((v, _)) = &h.ops[i].response {
            if v != decision {
                return false;
            }
        }
    }
    true
}

fn permute_and_check<V: Value>(h: &History<V>, order: &mut Vec<usize>, k: usize) -> bool {
    if k == order.len() {
        return respects_real_time(h, order) && sequentially_valid(h, order);
    }
    for i in k..order.len() {
        order.swap(k, i);
        if permute_and_check(h, order, k + 1) {
            order.swap(k, i);
            return true;
        }
        order.swap(k, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn t(u: u64) -> Time {
        Time::from_units(u)
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h: History<u64> = History::new();
        h.invoke(p(0), 5, t(0));
        h.respond(p(0), 5, t(10));
        h.invoke(p(1), 9, t(20));
        h.respond(p(1), 5, t(30));
        assert!(h.check().is_ok());
        assert!(h.check_brute_force());
    }

    #[test]
    fn concurrent_proposals_linearizable_when_agreeing() {
        let mut h: History<u64> = History::new();
        h.invoke(p(0), 5, t(0));
        h.invoke(p(1), 9, t(1));
        h.respond(p(0), 9, t(10)); // the other's value won
        h.respond(p(1), 9, t(11));
        assert!(h.check().is_ok());
        assert!(h.check_brute_force());
    }

    #[test]
    fn divergent_responses_rejected() {
        let mut h: History<u64> = History::new();
        h.invoke(p(0), 5, t(0));
        h.invoke(p(1), 9, t(1));
        h.respond(p(0), 5, t(10));
        h.respond(p(1), 9, t(11));
        assert!(matches!(
            h.check(),
            Err(LinearizabilityError::DivergentResponses { .. })
        ));
        assert!(!h.check_brute_force());
    }

    #[test]
    fn unproposed_decision_rejected() {
        let mut h: History<u64> = History::new();
        h.invoke(p(0), 5, t(0));
        h.respond(p(0), 77, t(10));
        assert!(matches!(
            h.check(),
            Err(LinearizabilityError::UnproposedDecision { value: 77 })
        ));
        assert!(!h.check_brute_force());
    }

    #[test]
    fn decision_before_proposal_rejected() {
        // p0 proposes 5 and gets back 9 — but the only proposer of 9
        // invoked after p0's operation completed: no valid order.
        let mut h: History<u64> = History::new();
        h.invoke(p(0), 5, t(0));
        h.respond(p(0), 9, t(10));
        h.invoke(p(1), 9, t(20));
        h.respond(p(1), 9, t(30));
        assert!(matches!(
            h.check(),
            Err(LinearizabilityError::DecisionBeforeProposal { .. })
        ));
        assert!(!h.check_brute_force());
    }

    #[test]
    fn pending_operation_can_take_effect() {
        // p1's propose(9) never returned (crash), yet p0 got 9: valid —
        // the pending operation linearizes first.
        let mut h: History<u64> = History::new();
        h.invoke(p(1), 9, t(0)); // pending forever
        h.invoke(p(0), 5, t(1));
        h.respond(p(0), 9, t(10));
        assert!(h.check().is_ok());
        assert!(h.check_brute_force());
    }

    #[test]
    fn empty_and_response_free_histories_pass() {
        let h: History<u64> = History::new();
        assert!(h.check().is_ok());
        assert!(h.check_brute_force());
        let mut h2: History<u64> = History::new();
        h2.invoke(p(0), 5, t(0));
        assert!(h2.check().is_ok());
        assert!(h2.check_brute_force());
    }

    #[test]
    fn ill_formed_history_detected() {
        let mut h: History<u64> = History::new();
        h.invoke(p(0), 5, t(100));
        h.respond(p(0), 5, t(50));
        assert!(matches!(
            h.check(),
            Err(LinearizabilityError::IllFormed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "no pending operation")]
    fn respond_without_invoke_panics() {
        let mut h: History<u64> = History::new();
        h.respond(p(0), 5, t(0));
    }

    proptest! {
        /// The fast checker agrees with brute force on random small
        /// histories.
        #[test]
        fn fast_checker_matches_brute_force(
            specs in proptest::collection::vec(
                (0u32..4, 0u64..4, 0u64..30, proptest::option::of((0u64..4, 0u64..30))),
                0..6
            )
        ) {
            let mut h: History<u64> = History::new();
            let mut busy: Vec<u32> = vec![];
            for (proc_raw, arg, inv, resp) in specs {
                // One pending op per process max (well-formedness).
                if busy.contains(&proc_raw) {
                    continue;
                }
                h.invoke(p(proc_raw), arg, t(inv));
                match resp {
                    Some((rv, rt)) if rt >= inv => h.respond(p(proc_raw), rv, t(inv + rt)),
                    _ => busy.push(proc_raw),
                }
            }
            let fast = h.check().is_ok();
            let brute = h.check_brute_force();
            prop_assert_eq!(fast, brute, "history: {:?}", h.ops());
        }
    }
}
