//! The typestate transition graph, checked against the model checker.
//!
//! The core crate's phase types promise that only these transitions
//! exist (everything else does not typecheck):
//!
//! * voter side: `FastVoting → SlowBallot`, `FastVoting → Decided`,
//!   `SlowBallot → Decided`;
//! * leader side: `Idle → Collecting`, `Collecting → Proposing`,
//!   `Proposing → Collecting` (a fresh ballot abandons a stuck
//!   proposal).
//!
//! A transparent [`PhaseProbe`] wrapper records every
//! ([`PhaseKind`], [`LeaderPhase`]) change an event causes while the
//! PR 9 model checker exhaustively enumerates schedules on `n = 3`
//! configurations, from both constructors (task and object). The
//! observed edge set must stay inside the legal graph, the probe must
//! not perturb the exploration (identical decision-vector sets with
//! and without it), and `PhaseKind::Decided` must coincide exactly
//! with `decision().is_some()` in every visited state.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use twostep_core::{
    LeaderPhase, ObjectConsensus, OmegaMode, PhaseKind, TaskConsensus, TwoStepBuilder,
};
use twostep_sim::ManualExecutor;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::relabel::Relabeling;
use twostep_types::{ProcessId, SystemConfig};
use twostep_verify::{CheckOutcome, ModelChecker};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn legal_voter_edges() -> BTreeSet<(PhaseKind, PhaseKind)> {
    [
        (PhaseKind::FastVoting, PhaseKind::SlowBallot),
        (PhaseKind::FastVoting, PhaseKind::Decided),
        (PhaseKind::SlowBallot, PhaseKind::Decided),
    ]
    .into_iter()
    .collect()
}

fn legal_leader_edges() -> BTreeSet<(LeaderPhase, LeaderPhase)> {
    [
        (LeaderPhase::Idle, LeaderPhase::Collecting),
        (LeaderPhase::Collecting, LeaderPhase::Proposing),
        (LeaderPhase::Proposing, LeaderPhase::Collecting),
    ]
    .into_iter()
    .collect()
}

/// Read access to the wrapped machine's phase pair.
trait PhaseView {
    fn phases(&self) -> (PhaseKind, LeaderPhase);
}

impl PhaseView for TaskConsensus<u64> {
    fn phases(&self) -> (PhaseKind, LeaderPhase) {
        (self.inner().phase(), self.inner().leader_phase())
    }
}

impl PhaseView for ObjectConsensus<u64> {
    fn phases(&self) -> (PhaseKind, LeaderPhase) {
        (self.inner().phase(), self.inner().leader_phase())
    }
}

/// Accumulated phase-transition edges, shared across every process and
/// every cloned branch of the exploration.
#[derive(Debug, Clone, Default)]
struct EdgeLog {
    voter: Arc<Mutex<BTreeSet<(PhaseKind, PhaseKind)>>>,
    leader: Arc<Mutex<BTreeSet<(LeaderPhase, LeaderPhase)>>>,
}

impl EdgeLog {
    fn voter_edges(&self) -> BTreeSet<(PhaseKind, PhaseKind)> {
        self.voter.lock().expect("probe mutex poisoned").clone()
    }

    fn leader_edges(&self) -> BTreeSet<(LeaderPhase, LeaderPhase)> {
        self.leader.lock().expect("probe mutex poisoned").clone()
    }
}

/// A transparent protocol wrapper: forwards every event to the inner
/// machine and records the phase edges it traverses. Fingerprints and
/// no-op classification delegate unchanged, so the model checker
/// explores exactly the same state space as without the probe.
#[derive(Debug, Clone)]
struct PhaseProbe<P> {
    inner: P,
    log: EdgeLog,
}

impl<P: Protocol<u64> + PhaseView> PhaseProbe<P> {
    fn new(inner: P, log: EdgeLog) -> Self {
        PhaseProbe { inner, log }
    }

    fn record<R>(&mut self, f: impl FnOnce(&mut P) -> R) -> R {
        let before = self.inner.phases();
        let r = f(&mut self.inner);
        let after = self.inner.phases();
        if before.0 != after.0 {
            self.log
                .voter
                .lock()
                .expect("probe mutex poisoned")
                .insert((before.0, after.0));
        }
        if before.1 != after.1 {
            self.log
                .leader
                .lock()
                .expect("probe mutex poisoned")
                .insert((before.1, after.1));
        }
        // The typestate invariant the `Decided` phase type encodes:
        // being in the decided phase and holding a decision are the
        // same thing, in every reachable state.
        assert_eq!(
            after.0 == PhaseKind::Decided,
            self.inner.decision().is_some(),
            "PhaseKind::Decided must coincide with decision().is_some()"
        );
        r
    }
}

impl<P> Protocol<u64> for PhaseProbe<P>
where
    P: Protocol<u64> + PhaseView,
{
    type Message = P::Message;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_start(&mut self, effects: &mut Effects<u64, Self::Message>) {
        self.record(|m| m.on_start(effects));
    }

    fn on_propose(&mut self, value: u64, effects: &mut Effects<u64, Self::Message>) {
        self.record(|m| m.on_propose(value, effects));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Message,
        effects: &mut Effects<u64, Self::Message>,
    ) {
        self.record(|m| m.on_message(from, msg, effects));
    }

    fn on_timer(&mut self, timer: TimerId, effects: &mut Effects<u64, Self::Message>) {
        self.record(|m| m.on_timer(timer, effects));
    }

    fn decision(&self) -> Option<u64> {
        self.inner.decision()
    }

    fn state_fingerprint(&self) -> u64 {
        self.inner.state_fingerprint()
    }

    fn state_fingerprint_relabeled(&self, rl: &Relabeling) -> Option<u64> {
        self.inner.state_fingerprint_relabeled(rl)
    }

    fn message_is_noop(&self, from: ProcessId, msg: &Self::Message) -> bool {
        self.inner.message_is_noop(from, msg)
    }
}

fn checker(timer_budget: usize) -> ModelChecker<u64> {
    // Only the pinned leader p0 may fire its new-ballot timer — the
    // same restriction the PR 9 gate uses to keep the budget-1 recovery
    // space exhaustively explorable.
    ModelChecker::new()
        .max_states(500_000)
        .timer_budget(timer_budget, vec![TimerId::NEW_BALLOT])
        .timer_processes([p(0)].into_iter().collect())
        .proposed(vec![10, 20, 30])
}

fn task_setup(
    log: EdgeLog,
) -> impl Fn(SystemConfig) -> ManualExecutor<u64, PhaseProbe<TaskConsensus<u64>>> {
    move |cfg| {
        let log = log.clone();
        let mut ex = ManualExecutor::new(cfg, |q| {
            PhaseProbe::new(
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .task(q, 10 * (u64::from(q.as_u32()) + 1)),
                log.clone(),
            )
        });
        ex.start_all();
        ex
    }
}

fn object_setup(
    log: EdgeLog,
) -> impl Fn(SystemConfig) -> ManualExecutor<u64, PhaseProbe<ObjectConsensus<u64>>> {
    move |cfg| {
        let log = log.clone();
        let mut ex = ManualExecutor::new(cfg, |q| {
            PhaseProbe::new(
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .object::<u64>(q),
                log.clone(),
            )
        });
        ex.start_all();
        ex.propose(p(0), 5);
        ex.propose(p(2), 9);
        ex
    }
}

/// Task constructor, exhaustive exploration with one recovery ballot:
/// the reachable edge set is exactly the legal graph minus
/// `Proposing → Collecting` (which needs a *second* new-ballot firing
/// at one process; covered by the directed test below).
#[test]
fn task_graph_matches_model_checker_enumeration() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let log = EdgeLog::default();
    let (outcome, probed_vectors) = checker(1).run_collecting(cfg, task_setup(log.clone()));
    match outcome {
        CheckOutcome::Clean { truncated, .. } => assert!(!truncated, "exploration must finish"),
        CheckOutcome::Violation { report, .. } => panic!("unexpected violation: {report}"),
    }

    let mut expected_leader = legal_leader_edges();
    expected_leader.remove(&(LeaderPhase::Proposing, LeaderPhase::Collecting));
    assert_eq!(
        log.voter_edges(),
        legal_voter_edges(),
        "voter transition graph"
    );
    assert_eq!(
        log.leader_edges(),
        expected_leader,
        "leader transition graph"
    );

    // The probe is transparent: the same exploration without it reaches
    // exactly the same decision vectors.
    let (plain_outcome, plain_vectors) = checker(1).run_collecting(cfg, |cfg| {
        let mut ex = ManualExecutor::new(cfg, |q| {
            TwoStepBuilder::new(cfg)
                .omega(OmegaMode::Static(p(0)))
                .task(q, 10 * (u64::from(q.as_u32()) + 1))
        });
        ex.start_all();
        ex
    });
    assert!(matches!(plain_outcome, CheckOutcome::Clean { .. }));
    assert_eq!(probed_vectors, plain_vectors, "probe perturbed the run");
}

/// Object constructor, same enumeration: identical reachable graph.
#[test]
fn object_graph_matches_model_checker_enumeration() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let log = EdgeLog::default();
    let (outcome, _) = checker(1)
        .proposed(vec![5, 9])
        .run_collecting(cfg, object_setup(log.clone()));
    match outcome {
        CheckOutcome::Clean { truncated, .. } => assert!(!truncated, "exploration must finish"),
        CheckOutcome::Violation { report, .. } => panic!("unexpected violation: {report}"),
    }
    let mut expected_leader = legal_leader_edges();
    expected_leader.remove(&(LeaderPhase::Proposing, LeaderPhase::Collecting));
    assert_eq!(log.voter_edges(), legal_voter_edges(), "voter graph");
    assert_eq!(log.leader_edges(), expected_leader, "leader graph");
}

/// The one edge the bounded enumeration cannot reach with a single
/// timer firing per process: a proposing leader that fires a fresh
/// new-ballot timer drops back to collecting.
#[test]
fn proposing_leader_returns_to_collecting_on_new_ballot() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let log = EdgeLog::default();
    let mut ex = task_setup(log.clone())(cfg);
    // p0 owns ballot 0: fire its new-ballot timer and deliver the 1As
    // and 1Bs to freeze a quorum, putting the leader in Proposing.
    ex.fire_timer(p(0), TimerId::NEW_BALLOT);
    for q in 0..3 {
        ex.deliver_all_to(p(q));
    }
    ex.deliver_all_to(p(0));
    assert_eq!(
        ex.process(p(0)).inner.phases().1,
        LeaderPhase::Proposing,
        "setup must reach Proposing"
    );
    ex.fire_timer(p(0), TimerId::NEW_BALLOT);
    assert_eq!(ex.process(p(0)).inner.phases().1, LeaderPhase::Collecting);
    assert!(log
        .leader_edges()
        .contains(&(LeaderPhase::Proposing, LeaderPhase::Collecting)));
    // With this directed completion, the union of observed edges is the
    // full legal graph — no more, no less.
    assert!(log.leader_edges().is_subset(&legal_leader_edges()));
    assert!(log.voter_edges().is_subset(&legal_voter_edges()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random `n = 3` runs at the Theorem 5/6 bounds (both variants,
    /// varying proposal values and crash budget): every phase edge the
    /// exhaustive exploration traverses stays inside the legal graph,
    /// and the probe never observes a decided phase without a decision
    /// (asserted inside the probe on every event).
    #[test]
    fn reachable_edges_stay_inside_legal_graph(
        v0 in prop_oneof![Just(10u64), Just(20u64)],
        v1 in prop_oneof![Just(10u64), Just(20u64)],
        v2 in prop_oneof![Just(10u64), Just(20u64)],
        object in any::<bool>(),
        crashes in 0usize..=1,
    ) {
        let log = EdgeLog::default();
        let edges = log.clone();
        let outcome = if object {
            let cfg = SystemConfig::minimal_object(1, 1).unwrap();
            ModelChecker::new()
                .max_states(500_000)
                .max_crashes(crashes)
                .proposed(vec![v0, v2])
                .run(cfg, move |cfg| {
                    let log = log.clone();
                    let mut ex = ManualExecutor::new(cfg, |q| {
                        PhaseProbe::new(
                            TwoStepBuilder::new(cfg)
                                .omega(OmegaMode::Static(p(0)))
                                .object::<u64>(q),
                            log.clone(),
                        )
                    });
                    ex.start_all();
                    ex.propose(p(0), v0);
                    ex.propose(p(2), v2);
                    ex
                })
        } else {
            let cfg = SystemConfig::minimal_task(1, 1).unwrap();
            let values = [v0, v1, v2];
            ModelChecker::new()
                .max_states(500_000)
                .max_crashes(crashes)
                .proposed(vec![v0, v1, v2])
                .run(cfg, move |cfg| {
                    let log = log.clone();
                    let mut ex = ManualExecutor::new(cfg, |q| {
                        PhaseProbe::new(
                            TwoStepBuilder::new(cfg)
                                .omega(OmegaMode::Static(p(0)))
                                .task(q, values[q.index()]),
                            log.clone(),
                        )
                    });
                    ex.start_all();
                    ex
                })
        };
        prop_assert!(
            matches!(outcome, CheckOutcome::Clean { .. }),
            "unexpected violation: {outcome:?}"
        );
        prop_assert!(edges.voter_edges().is_subset(&legal_voter_edges()));
        prop_assert!(edges.leader_edges().is_subset(&legal_leader_edges()));
    }
}
