//! Cross-crate verification: the real protocol under the model checker,
//! and consensus-object linearizability over whole simulated runs.

use twostep_core::{Ablations, ObjectConsensus, OmegaMode, TwoStepBuilder};
use twostep_sim::{DeliveryOrder, ManualExecutor, SimulationBuilder, TraceEvent};
use twostep_types::protocol::TimerId;
use twostep_types::{Duration, ProcessId, SystemConfig, Time};
use twostep_verify::{CheckOutcome, History, ModelChecker};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Model-check the task protocol's fast path at the Theorem 5 bound for
/// e = f = 1 (n = 3): every interleaving of message deliveries must
/// preserve Agreement and Validity.
#[test]
fn model_check_task_fast_path_all_schedules() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let outcome = ModelChecker::new()
        .proposed(vec![10u64, 20, 30])
        .run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .task(q, 10 * (u64::from(q.as_u32()) + 1))
            });
            ex.start_all();
            ex
        });
    match outcome {
        CheckOutcome::Clean {
            states, truncated, ..
        } => {
            assert!(!truncated, "exploration must finish within the bound");
            assert!(
                states > 50,
                "expected substantive exploration, got {states}"
            );
        }
        CheckOutcome::Violation { report, script, .. } => {
            panic!("task protocol violated safety: {report}\nscript: {script:#?}")
        }
    }
}

/// Same, with one recovery ballot allowed (each process may fire its
/// new-ballot timer once) and one crash: fast path and slow path
/// interleave arbitrarily.
#[test]
fn model_check_task_with_recovery_and_crash() {
    let cfg = SystemConfig::minimal_task(1, 1).unwrap();
    let outcome = ModelChecker::new()
        .proposed(vec![10u64, 20, 30])
        .max_crashes(1)
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .max_states(400_000)
        .run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .task(q, 10 * (u64::from(q.as_u32()) + 1))
            });
            ex.start_all();
            ex
        });
    if let CheckOutcome::Violation { report, script, .. } = outcome {
        panic!("task protocol violated safety: {report}\nscript: {script:#?}")
    }
}

/// Model-check the object protocol at the Theorem 6 bound for e = f = 1
/// (n = 3) with two contending proposals.
#[test]
fn model_check_object_contention() {
    let cfg = SystemConfig::minimal_object(1, 1).unwrap();
    let outcome = ModelChecker::new()
        .proposed(vec![5u64, 9])
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .max_states(400_000)
        .run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .object::<u64>(q)
            });
            ex.start_all();
            ex.propose(p(0), 5);
            ex.propose(p(2), 9);
            ex
        });
    if let CheckOutcome::Violation { report, script, .. } = outcome {
        panic!("object protocol violated safety: {report}\nscript: {script:#?}")
    }
}

/// Builds a propose-history from a simulated object run and checks
/// linearizability.
fn history_from_run(outcome: &twostep_sim::RunOutcome<u64, ObjectConsensus<u64>>) -> History<u64> {
    let mut h = History::new();
    for ev in outcome.trace.events() {
        if let TraceEvent::Proposed {
            time,
            process,
            value,
        } = ev
        {
            h.invoke(*process, *value, *time);
        }
    }
    // A proposer's operation responds when that process knows the
    // decision — which may predate the invocation (the process learned
    // the outcome via gossip before its client called propose); the
    // operation then returns immediately at invocation time.
    for ev in outcome.trace.events() {
        if let TraceEvent::Decided {
            time,
            process,
            value,
        } = ev
        {
            let invoked = h
                .ops()
                .iter()
                .find(|o| o.process == *process && o.response.is_none())
                .map(|o| o.invoked);
            if let Some(invoked) = invoked {
                h.respond(*process, *value, (*time).max(invoked));
            }
        }
    }
    h
}

#[test]
fn object_runs_are_linearizable_across_seeds() {
    // A failing seed is replayable alone via TWOSTEP_SEED=<seed>.
    for seed in twostep_sim::test_seeds(0..25) {
        let cfg = SystemConfig::minimal_object(2, 2).unwrap();
        let n = cfg.n();
        let mut sim = SimulationBuilder::new(cfg)
            .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
            .delivery_order(DeliveryOrder::randomized(seed))
            .build(|q| ObjectConsensus::<u64>::new(cfg, q));
        // A pseudo-random subset proposes at staggered times.
        for i in 0..n as u32 {
            if (seed + u64::from(i)) % 3 != 0 {
                sim.schedule_propose(
                    p(i),
                    100 + u64::from(i),
                    Time::from_units((seed * 131 + u64::from(i) * 517) % 3000),
                );
            }
        }
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(150));
        let h = history_from_run(&outcome);
        if let Err(e) = h.check() {
            panic!("seed {seed}: {e}\nhistory: {:#?}", h.ops());
        }
    }
}

#[test]
fn object_runs_with_crashes_are_linearizable() {
    for seed in twostep_sim::test_seeds(0..15) {
        let cfg = SystemConfig::minimal_object(2, 3).unwrap();
        let n = cfg.n();
        let f = cfg.f();
        let mut builder = SimulationBuilder::new(cfg)
            .delay_model(twostep_sim::RandomDelay::sub_delta(seed))
            .delivery_order(DeliveryOrder::randomized(seed));
        for k in 0..(seed as usize % (f + 1)) {
            let victim = p(((seed as usize + 2 * k + 1) % n) as u32);
            builder = builder.crash_at(
                victim,
                Time::from_units((seed * 701 + k as u64 * 997) % 4000),
            );
        }
        let mut sim = builder.build(|q| ObjectConsensus::<u64>::new(cfg, q));
        for i in (0..n as u32).step_by(2) {
            sim.schedule_propose(
                p(i),
                100 + u64::from(i),
                Time::from_units(u64::from(i) * 200),
            );
        }
        let outcome = sim.run_until_all_decided(Time::ZERO + Duration::deltas(150));
        let h = history_from_run(&outcome);
        if let Err(e) = h.check() {
            panic!("seed {seed}: {e}\nhistory: {:#?}", h.ops());
        }
    }
}

/// The model checker finds the safety bug introduced by the red-line
/// ablation by exploring *all* continuations of a contended fast round —
/// complementing the single directed script in `twostep_verify::adversary`.
///
/// Exploring every interleaving from time zero is intractable (the
/// violation sits ~25 steps deep); instead the setup replays the
/// fast-path phase deterministically (everyone proposes, `w = p4` wins
/// the fast quorum thanks to the dropped guard, `{p2, p4}` crash) and
/// the checker exhaustively explores every continuation — deliveries of
/// the in-flight messages interleaved with new-ballot timers. Some
/// continuation must recover value 0 against `p4`'s fast-decided 1.
#[test]
fn model_check_finds_object_guard_ablation_bug() {
    use twostep_core::Msg;

    let cfg = SystemConfig::minimal_object(2, 2).unwrap(); // n = 5
    let outcome = ModelChecker::new()
        .timer_budget(1, vec![TimerId::NEW_BALLOT])
        .max_states(500_000)
        .run(cfg, |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .ablations(Ablations {
                        no_object_guard: true,
                        ..Ablations::NONE
                    })
                    .object::<u64>(q)
            });
            ex.start_all();
            // E0 = {p0, p1} and F0 = {p2} propose 0; E1 = {p3, p4}
            // propose 1.
            for i in 0..cfg.n() as u32 {
                let v = if i >= (cfg.n() - cfg.e()) as u32 {
                    1
                } else {
                    0
                };
                ex.propose(p(i), v);
            }
            // w = p4 wins the fast path: p2 (guard ablated!) and p3 vote 1.
            for voter in [p(2), p(3)] {
                for id in ex.pending_matching(|m| {
                    m.from == p(4) && m.to == voter && matches!(m.msg, Msg::Propose(_))
                }) {
                    ex.deliver(id);
                }
                for id in ex.pending_matching(|m| {
                    m.from == voter && m.to == p(4) && matches!(m.msg, Msg::TwoB(..))
                }) {
                    ex.deliver(id);
                }
            }
            assert_eq!(
                ex.decision_of(p(4)),
                Some(&1),
                "fast path must complete in setup"
            );
            // p0, p1 vote for p2's 0.
            for target in [p(0), p(1)] {
                for id in ex.pending_matching(|m| {
                    m.from == p(2) && m.to == target && matches!(m.msg, Msg::Propose(_))
                }) {
                    ex.deliver(id);
                }
            }
            ex.crash(p(2));
            ex.crash(p(4));
            ex
        });
    match outcome {
        CheckOutcome::Violation { report, script, .. } => {
            assert!(
                report.contains("agreement"),
                "unexpected violation: {report}"
            );
            assert!(!script.is_empty());
        }
        CheckOutcome::Clean {
            states, truncated, ..
        } => {
            panic!("model checker missed the ablation bug ({states} states, truncated={truncated})")
        }
    }
}
