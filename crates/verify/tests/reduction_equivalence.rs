//! Property test: symmetry + partial-order reduction preserve the
//! exploration's observable results.
//!
//! For random `n = 3` configurations (task and object variants, both
//! `(e, f)` at and below the bounds, crash budgets 0–1) the reduced
//! exploration must produce:
//!
//! * the same verdict (clean vs violation-found) as the unreduced one;
//! * with POR alone, the **identical** set of reachable decision
//!   vectors (scrubbed messages are inert: dropping them merges states
//!   with equal per-process decisions);
//! * with symmetry added, the identical set of decision vectors **up
//!   to process identity** (each canonical representative stands in
//!   for its whole orbit, so concrete vectors are only recovered
//!   modulo the permutation — the sorted vector is the orbit
//!   invariant).
//!
//! Timer budgets are held at 0 here: the unreduced recovery space at
//! `n = 3` exceeds 4×10⁶ states (measured), which is proptest-hostile;
//! the recovery dimension's reduced-vs-unreduced agreement is covered
//! by the gate's reduction reference instead.

use std::collections::BTreeSet;

use proptest::prelude::*;
use twostep_core::{OmegaMode, TwoStepBuilder};
use twostep_sim::ManualExecutor;
use twostep_types::protocol::{Protocol, TimerId};
use twostep_types::relabel::RelabelHash;
use twostep_types::{ProcessId, SystemConfig};
use twostep_verify::{CheckOutcome, ModelChecker};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn checker(crashes: usize, symmetry: bool, por: bool) -> ModelChecker<u64> {
    ModelChecker::new()
        .max_states(2_000_000)
        .max_crashes(crashes)
        .timer_budget(0, vec![TimerId::NEW_BALLOT])
        .workers(1)
        .symmetry(symmetry)
        .por(por)
        .proposed(vec![10, 20])
}

/// Sorts each decision vector: the process-anonymous orbit invariant.
fn anonymized(set: &BTreeSet<Vec<Option<u64>>>) -> BTreeSet<Vec<Option<u64>>> {
    set.iter()
        .map(|v| {
            let mut s = v.clone();
            s.sort_unstable();
            s
        })
        .collect()
}

fn check_equivalence<P, F>(cfg: SystemConfig, crashes: usize, setup: F)
where
    P: Protocol<u64> + Clone,
    P::Message: RelabelHash,
    F: Fn(SystemConfig) -> ManualExecutor<u64, P>,
{
    let (base_out, base_set) = checker(crashes, false, false).run_collecting(cfg, &setup);
    let (por_out, por_set) = checker(crashes, false, true).run_collecting(cfg, &setup);
    let (sym_out, sym_set) = checker(crashes, true, true).run_collecting(cfg, &setup);

    match (&base_out, &por_out, &sym_out) {
        (
            CheckOutcome::Clean { truncated: bt, .. },
            CheckOutcome::Clean { truncated: pt, .. },
            CheckOutcome::Clean { truncated: st, .. },
        ) => {
            assert!(
                !bt && !pt && !st,
                "truncated exploration cannot witness equivalence"
            );
            assert_eq!(
                base_set, por_set,
                "POR changed the reachable decision vectors"
            );
            assert_eq!(
                anonymized(&base_set),
                anonymized(&sym_set),
                "symmetry changed the reachable decision vectors up to relabeling"
            );
        }
        (
            CheckOutcome::Violation { .. },
            CheckOutcome::Violation { .. },
            CheckOutcome::Violation { .. },
        ) => {
            // All three detect a violation; decision-vector sets are not
            // comparable because exploration aborts at the first one.
        }
        _ => {
            panic!("verdict divergence: unreduced={base_out:?} por={por_out:?} sym+por={sym_out:?}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Task variant: every process proposes its initial value.
    #[test]
    fn task_reduced_matches_unreduced(
        v0 in prop_oneof![Just(10u64), Just(20u64)],
        v1 in prop_oneof![Just(10u64), Just(20u64)],
        v2 in prop_oneof![Just(10u64), Just(20u64)],
        e in 1usize..=2,
        crashes in 0usize..=1,
    ) {
        let cfg = SystemConfig::new(3, e, 1);
        prop_assume!(cfg.is_ok());
        let cfg = cfg.unwrap();
        let values = [v0, v1, v2];
        check_equivalence(cfg, crashes, move |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .task(q, values[q.index()])
            });
            ex.start_all();
            ex
        });
    }

    /// Object variant: `p0` and `p2` contend, `p1` stays passive.
    #[test]
    fn object_reduced_matches_unreduced(
        v0 in prop_oneof![Just(10u64), Just(20u64)],
        v2 in prop_oneof![Just(10u64), Just(20u64)],
        e in 1usize..=2,
        crashes in 0usize..=1,
    ) {
        let cfg = SystemConfig::new(3, e, 1);
        prop_assume!(cfg.is_ok());
        let cfg = cfg.unwrap();
        check_equivalence(cfg, crashes, move |cfg| {
            let mut ex = ManualExecutor::new(cfg, |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(p(0)))
                    .object::<u64>(q)
            });
            ex.start_all();
            ex.propose(p(0), v0);
            ex.propose(p(2), v2);
            ex
        });
    }
}
