//! Process identities and sets of processes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of one of the `n` processes in the system `Π = {p_0, …, p_{n-1}}`.
///
/// Process ids are dense indices in `0..n`; this makes them directly usable
/// as vector indices and lets [`ProcessSet`] represent subsets of `Π` as a
/// bitmask.
///
/// # Example
///
/// ```rust
/// use twostep_types::ProcessId;
///
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from its index in `Π`.
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Index of this process in `Π`, usable to index per-process vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw numeric id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for ProcessId {
    fn from(index: u32) -> Self {
        ProcessId(index)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A subset of the processes `Π`, represented as a bitmask.
///
/// Supports up to 64 processes, far beyond any configuration the paper's
/// bounds make interesting (`n = max{2e+f, 2f+1}` stays small for
/// practical `e`, `f`). Used for failure sets `E`, quorums `Q`, the
/// proposer-exclusion set `R` of the recovery rule, and schedule
/// enumeration in the model checker.
///
/// # Example
///
/// ```rust
/// use twostep_types::{ProcessId, ProcessSet};
///
/// let mut s = ProcessSet::new();
/// s.insert(ProcessId::new(0));
/// s.insert(ProcessId::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId::new(3)));
/// let complement = s.complement(5);
/// assert_eq!(complement.len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// Maximum number of processes representable.
    pub const MAX_PROCESSES: u32 = 64;

    /// Creates an empty set.
    pub const fn new() -> Self {
        ProcessSet(0)
    }

    /// Creates the full set `Π` for a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn full(n: usize) -> Self {
        assert!(
            n as u32 <= Self::MAX_PROCESSES,
            "at most 64 processes supported"
        );
        if n == 64 {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n) - 1)
        }
    }

    /// Creates a set from raw bits (bit `i` set ⇔ `p_i ∈` set).
    pub const fn from_bits(bits: u64) -> Self {
        ProcessSet(bits)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Inserts a process; returns whether it was newly inserted.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let bit = 1u64 << p.0;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a process; returns whether it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let bit = 1u64 << p.0;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `p` belongs to the set.
    pub const fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u64 << p.0) != 0
    }

    /// Number of processes in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub const fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub const fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }

    /// Complement within a system of `n` processes: `Π \ self`.
    pub fn complement(self, n: usize) -> ProcessSet {
        ProcessSet(Self::full(n).0 & !self.0)
    }

    /// Whether `self ⊆ other`.
    pub const fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over members in increasing id order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The member with the smallest id, if any. Used e.g. by the Ω leader
    /// election service, which trusts the lowest-id unsuspected process.
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId(self.0.trailing_zeros()))
        }
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`] in increasing id order.
#[derive(Debug, Clone)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(ProcessId(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Enumerates all subsets of `Π = {p_0, …, p_{n-1}}` of size exactly `k`,
/// in lexicographic bit order.
///
/// Used by the feasibility experiments to check the paper's Definition 4
/// / Definition A.1 for *every* failure set `E ⊆ Π` with `|E| = e`.
///
/// # Example
///
/// ```rust
/// use twostep_types::combinations;
///
/// let sets: Vec<_> = combinations(4, 2).collect();
/// assert_eq!(sets.len(), 6); // C(4, 2)
/// assert!(sets.iter().all(|s| s.len() == 2));
/// ```
///
/// # Panics
///
/// Panics if `n > 64`.
pub fn combinations(n: usize, k: usize) -> Combinations {
    assert!(n as u32 <= ProcessSet::MAX_PROCESSES);
    let first = if k == 0 {
        Some(ProcessSet::new())
    } else if k <= n {
        Some(ProcessSet::from_bits((1u64 << k) - 1))
    } else {
        None
    };
    Combinations { n, k, next: first }
}

/// Iterator returned by [`combinations`].
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    next: Option<ProcessSet>,
}

impl Iterator for Combinations {
    type Item = ProcessSet;

    fn next(&mut self) -> Option<ProcessSet> {
        let current = self.next?;
        self.next = if self.k == 0 {
            None
        } else {
            // Gosper's hack: next larger integer with the same popcount.
            let v = current.bits();
            let t = v | (v - 1);
            if t == u64::MAX {
                None
            } else {
                let lowest_unset = !t & (!t).wrapping_neg();
                let w = (t + 1) | ((lowest_unset - 1) >> (v.trailing_zeros() + 1));
                let limit = ProcessSet::full(self.n).bits();
                if w <= limit {
                    Some(ProcessSet::from_bits(w))
                } else {
                    None
                }
            }
        };
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.as_u32(), 7);
        assert_eq!(ProcessId::from(7u32), p);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(format!("{p:?}"), "p7");
    }

    #[test]
    fn empty_set() {
        let s = ProcessSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(format!("{s:?}"), "{}");
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId::new(3)));
        assert!(!s.insert(ProcessId::new(3)));
        assert!(s.contains(ProcessId::new(3)));
        assert!(!s.contains(ProcessId::new(2)));
        assert!(s.remove(ProcessId::new(3)));
        assert!(!s.remove(ProcessId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn full_and_complement() {
        let full = ProcessSet::full(5);
        assert_eq!(full.len(), 5);
        let mut e = ProcessSet::new();
        e.insert(ProcessId::new(1));
        e.insert(ProcessId::new(4));
        let correct = e.complement(5);
        assert_eq!(correct.len(), 3);
        assert!(correct.contains(ProcessId::new(0)));
        assert!(correct.contains(ProcessId::new(2)));
        assert!(correct.contains(ProcessId::new(3)));
        assert_eq!(e.union(correct), full);
        assert!(e.intersection(correct).is_empty());
    }

    #[test]
    fn full_64_processes() {
        let full = ProcessSet::full(64);
        assert_eq!(full.len(), 64);
        assert!(full.contains(ProcessId::new(63)));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn full_too_large_panics() {
        let _ = ProcessSet::full(65);
    }

    #[test]
    fn subset_and_difference() {
        let a: ProcessSet = [0u32, 1, 2].into_iter().map(ProcessId::new).collect();
        let b: ProcessSet = [1u32, 2].into_iter().map(ProcessId::new).collect();
        assert!(b.is_subset(a));
        assert!(!a.is_subset(b));
        let d = a.difference(b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(ProcessId::new(0)));
    }

    #[test]
    fn iter_order_is_increasing() {
        let s: ProcessSet = [5u32, 1, 9, 0].into_iter().map(ProcessId::new).collect();
        let ids: Vec<u32> = s.iter().map(|p| p.as_u32()).collect();
        assert_eq!(ids, vec![0, 1, 5, 9]);
        assert_eq!(s.min(), Some(ProcessId::new(0)));
    }

    #[test]
    fn combinations_counts() {
        // C(n, k) sanity over a range of n, k.
        fn binom(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in 0..=8 {
            for k in 0..=n + 1 {
                let got = combinations(n, k).count();
                assert_eq!(got, binom(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn combinations_all_distinct_and_sized() {
        let sets: Vec<ProcessSet> = combinations(6, 3).collect();
        assert_eq!(sets.len(), 20);
        for s in &sets {
            assert_eq!(s.len(), 3);
            assert!(s.is_subset(ProcessSet::full(6)));
        }
        let mut dedup = sets.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), sets.len());
    }

    #[test]
    fn combinations_k_zero() {
        let sets: Vec<ProcessSet> = combinations(5, 0).collect();
        assert_eq!(sets, vec![ProcessSet::new()]);
    }

    #[test]
    fn combinations_k_equals_n() {
        let sets: Vec<ProcessSet> = combinations(5, 5).collect();
        assert_eq!(sets, vec![ProcessSet::full(5)]);
    }

    #[test]
    fn combinations_k_too_large() {
        assert_eq!(combinations(3, 4).count(), 0);
    }
}
