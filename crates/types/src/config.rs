//! System configurations `(n, e, f)` and the paper's bounds.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfigError, ProcessId, ProcessSet};

/// Which consensus protocol family a bound refers to.
///
/// Encodes the minimal-process formulas compared throughout the paper:
///
/// | kind | minimal `n` | source |
/// |---|---|---|
/// | [`Paxos`](ProtocolKind::Paxos) | `2f+1` (not e-two-step for `e > 0`) | DLS 1988 |
/// | [`FastPaxos`](ProtocolKind::FastPaxos) | `max{2e+f+1, 2f+1}` | Lamport 2006 |
/// | [`TaskTwoStep`](ProtocolKind::TaskTwoStep) | `max{2e+f, 2f+1}` | Theorem 5 |
/// | [`ObjectTwoStep`](ProtocolKind::ObjectTwoStep) | `max{2e+f-1, 2f+1}` | Theorem 6 |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Classic leader-driven Paxos.
    Paxos,
    /// Lamport's Fast Paxos.
    FastPaxos,
    /// The paper's e-two-step consensus *task* protocol (Figure 1 without
    /// the red lines).
    TaskTwoStep,
    /// The paper's e-two-step consensus *object* protocol (Figure 1 with
    /// the red lines).
    ObjectTwoStep,
}

impl ProtocolKind {
    /// The minimal number of processes for an `f`-resilient `e`-two-step
    /// protocol of this kind.
    ///
    /// For [`ProtocolKind::Paxos`] the formula ignores `e` (Paxos is not
    /// e-two-step for any `e > 0`; the bound is pure resilience `2f+1`).
    pub fn min_processes(self, e: usize, f: usize) -> usize {
        let resilience = 2 * f + 1;
        match self {
            ProtocolKind::Paxos => resilience,
            ProtocolKind::FastPaxos => resilience.max(2 * e + f + 1),
            ProtocolKind::TaskTwoStep => resilience.max(2 * e + f),
            ProtocolKind::ObjectTwoStep => resilience.max((2 * e + f).saturating_sub(1)),
        }
    }

    /// Human-readable protocol name, as used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Paxos => "Paxos",
            ProtocolKind::FastPaxos => "FastPaxos",
            ProtocolKind::TaskTwoStep => "TwoStep(task)",
            ProtocolKind::ObjectTwoStep => "TwoStep(object)",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated system configuration: `n` processes, of which up to `f`
/// may crash while preserving liveness, and up to `e ≤ f` may crash while
/// preserving two-step decisions in synchronous runs.
///
/// All quorum arithmetic used by the protocols lives here so that the
/// relationships proven in the paper (Lemma 7 and the §C.3 variant) are
/// checked in one place:
///
/// * *fast quorum*: `n - e` votes decide on the fast path (Figure 1,
///   line 16, first disjunct);
/// * *slow quorum*: `n - f` replies drive slow ballots (lines 16, 43);
/// * *recovery threshold*: `n - f - e`, the vote count that forces the
///   recovery rule to stick with a possibly-fast-decided value
///   (lines 54, 57).
///
/// # Example
///
/// ```rust
/// use twostep_types::SystemConfig;
///
/// let cfg = SystemConfig::new(5, 2, 2)?;     // n = 2e+f-1 = 5: object bound
/// assert_eq!(cfg.fast_quorum(), 3);
/// assert_eq!(cfg.slow_quorum(), 3);
/// assert_eq!(cfg.recovery_threshold(), 1);
/// assert!(cfg.satisfies_object_bound());
/// assert!(!cfg.satisfies_task_bound());      // task needs 2e+f = 6
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemConfig {
    n: usize,
    e: usize,
    f: usize,
}

impl SystemConfig {
    /// Creates a configuration, validating the paper's standing
    /// assumptions: `n ≥ 3`, `n ≤ 64`, `1 ≤ f`, `e ≤ f`, `n ≥ 2f+1`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the violated assumption.
    pub fn new(n: usize, e: usize, f: usize) -> Result<Self, ConfigError> {
        if n < 3 {
            return Err(ConfigError::TooFewProcesses { n });
        }
        if n > ProcessSet::MAX_PROCESSES as usize {
            return Err(ConfigError::TooManyProcesses { n });
        }
        if f == 0 {
            return Err(ConfigError::ZeroResilience);
        }
        if e > f {
            return Err(ConfigError::FastThresholdExceedsResilience { e, f });
        }
        if n < 2 * f + 1 {
            return Err(ConfigError::BelowResilienceBound { n, f });
        }
        Ok(SystemConfig { n, e, f })
    }

    /// Creates a configuration validated against a specific protocol
    /// family's minimal-process bound, in addition to the standing
    /// assumptions checked by [`SystemConfig::new`]:
    ///
    /// * [`ProtocolKind::TaskTwoStep`]: `n ≥ max{2e+f, 2f+1}` (Thm 5);
    /// * [`ProtocolKind::ObjectTwoStep`]: `n ≥ max{2e+f-1, 2f+1}` (Thm 6);
    /// * [`ProtocolKind::FastPaxos`]: `n ≥ max{2e+f+1, 2f+1}`;
    /// * [`ProtocolKind::Paxos`]: `n ≥ 2f+1`.
    ///
    /// Use this (or the `TryFrom<(ProtocolKind, usize, usize, usize)>`
    /// impl) whenever a configuration is built *for* a protocol, so that
    /// below-bound deployments are rejected at construction time rather
    /// than failing agreement at runtime. Deliberately below-bound runs
    /// (the lower-bound experiments, the fuzzer's `--allow-below-bound`)
    /// must opt out by calling [`SystemConfig::new`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BelowProtocolBound`] when `n` is under the
    /// family's bound, or any [`SystemConfig::new`] error.
    ///
    /// # Example
    ///
    /// ```rust
    /// use twostep_types::{ConfigError, ProtocolKind, SystemConfig};
    ///
    /// // n = 5 supports the object protocol at e = f = 2 …
    /// assert!(SystemConfig::for_protocol(ProtocolKind::ObjectTwoStep, 5, 2, 2).is_ok());
    /// // … but not the task protocol, which needs 2e+f = 6.
    /// assert_eq!(
    ///     SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 5, 2, 2),
    ///     Err(ConfigError::BelowProtocolBound {
    ///         protocol: "TwoStep(task)",
    ///         n: 5,
    ///         required: 6,
    ///     })
    /// );
    /// ```
    pub fn for_protocol(
        kind: ProtocolKind,
        n: usize,
        e: usize,
        f: usize,
    ) -> Result<Self, ConfigError> {
        let cfg = Self::new(n, e, f)?;
        let required = kind.min_processes(e, f);
        if n < required {
            return Err(ConfigError::BelowProtocolBound {
                protocol: kind.name(),
                n,
                required,
            });
        }
        Ok(cfg)
    }

    /// The minimal configuration for the consensus *task* protocol:
    /// `n = max{2e+f, 2f+1}` (Theorem 5).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid `e`, `f` (e.g. `e > f`).
    pub fn minimal_task(e: usize, f: usize) -> Result<Self, ConfigError> {
        Self::new(ProtocolKind::TaskTwoStep.min_processes(e, f), e, f)
    }

    /// The minimal configuration for the consensus *object* protocol:
    /// `n = max{2e+f-1, 2f+1}` (Theorem 6).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid `e`, `f`.
    pub fn minimal_object(e: usize, f: usize) -> Result<Self, ConfigError> {
        Self::new(ProtocolKind::ObjectTwoStep.min_processes(e, f), e, f)
    }

    /// The minimal configuration for Fast Paxos: `n = max{2e+f+1, 2f+1}`.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid `e`, `f`.
    pub fn minimal_fast_paxos(e: usize, f: usize) -> Result<Self, ConfigError> {
        Self::new(ProtocolKind::FastPaxos.min_processes(e, f), e, f)
    }

    /// Number of processes `n`.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Fast-decision failure threshold `e`.
    pub const fn e(&self) -> usize {
        self.e
    }

    /// Resilience threshold `f`.
    pub const fn f(&self) -> usize {
        self.f
    }

    /// Fast-path quorum size `n - e` (Figure 1 line 16, first disjunct:
    /// `|P ∪ {p_i}| ≥ n - e`).
    pub const fn fast_quorum(&self) -> usize {
        self.n - self.e
    }

    /// Slow-path quorum size `n - f` (lines 16 second disjunct and 43).
    pub const fn slow_quorum(&self) -> usize {
        self.n - self.f
    }

    /// Recovery vote threshold `n - f - e` (lines 54 and 57).
    pub const fn recovery_threshold(&self) -> usize {
        self.n - self.f - self.e
    }

    /// Whether `n ≥ 2e+f`, the premise of Lemma 7 (task recovery).
    pub const fn satisfies_task_bound(&self) -> bool {
        self.n >= 2 * self.e + self.f
    }

    /// Whether `n ≥ 2e+f-1`, the premise of the §C.3 recovery lemma
    /// (object recovery).
    pub const fn satisfies_object_bound(&self) -> bool {
        self.n + 1 >= 2 * self.e + self.f
    }

    /// Whether `n ≥ 2e+f+1`, Lamport's bound required by Fast Paxos.
    pub const fn satisfies_fast_paxos_bound(&self) -> bool {
        self.n > 2 * self.e + self.f
    }

    /// The full process set `Π`.
    pub fn all_processes(&self) -> ProcessSet {
        ProcessSet::full(self.n)
    }

    /// Iterates over all process ids `p_0, …, p_{n-1}`.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n as u32).map(ProcessId::new)
    }

    /// Enumerates every failure set `E ⊆ Π` with `|E| = e`.
    pub fn failure_sets(&self) -> crate::process::Combinations {
        crate::combinations(self.n, self.e)
    }
}

/// `(kind, n, e, f)` — the TryFrom spelling of
/// [`SystemConfig::for_protocol`].
impl TryFrom<(ProtocolKind, usize, usize, usize)> for SystemConfig {
    type Error = ConfigError;

    fn try_from((kind, n, e, f): (ProtocolKind, usize, usize, usize)) -> Result<Self, ConfigError> {
        SystemConfig::for_protocol(kind, n, e, f)
    }
}

impl fmt::Debug for SystemConfig {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            fmtr,
            "SystemConfig(n={}, e={}, f={})",
            self.n, self.e, self.f
        )
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmtr, "n={},e={},f={}", self.n, self.e, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            SystemConfig::new(2, 1, 1),
            Err(ConfigError::TooFewProcesses { n: 2 })
        );
        assert_eq!(
            SystemConfig::new(65, 1, 1),
            Err(ConfigError::TooManyProcesses { n: 65 })
        );
        assert_eq!(SystemConfig::new(5, 0, 0), Err(ConfigError::ZeroResilience));
        assert_eq!(
            SystemConfig::new(5, 2, 1),
            Err(ConfigError::FastThresholdExceedsResilience { e: 2, f: 1 })
        );
        assert_eq!(
            SystemConfig::new(4, 1, 2),
            Err(ConfigError::BelowResilienceBound { n: 4, f: 2 })
        );
    }

    #[test]
    fn quorum_arithmetic() {
        let cfg = SystemConfig::new(7, 2, 3).unwrap();
        assert_eq!(cfg.fast_quorum(), 5);
        assert_eq!(cfg.slow_quorum(), 4);
        assert_eq!(cfg.recovery_threshold(), 2);
    }

    #[test]
    fn paper_headline_numbers() {
        // Intro: for e = ceil((f+1)/2) the object protocol runs with the
        // bare-resilience process count 2f+1 for every f. The paper's
        // "2f+3 = 2e+f+1" Fast Paxos comparison instantiates 2e = f+2,
        // i.e. even f.
        for f in 1..=6usize {
            let e = (f + 1).div_ceil(2);
            assert_eq!(ProtocolKind::ObjectTwoStep.min_processes(e, f), 2 * f + 1);
            assert_eq!(ProtocolKind::Paxos.min_processes(e, f), 2 * f + 1);
            if f % 2 == 0 {
                assert_eq!(2 * e, f + 2);
                assert_eq!(ProtocolKind::FastPaxos.min_processes(e, f), 2 * f + 3);
                assert_eq!(ProtocolKind::TaskTwoStep.min_processes(e, f), 2 * f + 2);
            }
        }
    }

    #[test]
    fn min_processes_monotone_in_e() {
        for f in 1..=5usize {
            for kind in [
                ProtocolKind::FastPaxos,
                ProtocolKind::TaskTwoStep,
                ProtocolKind::ObjectTwoStep,
            ] {
                for e in 1..f {
                    assert!(kind.min_processes(e, f) <= kind.min_processes(e + 1, f));
                }
            }
        }
    }

    #[test]
    fn minimal_constructors_match_kind_formulas() {
        for f in 1..=5usize {
            for e in 1..=f {
                let t = SystemConfig::minimal_task(e, f).unwrap();
                assert_eq!(t.n(), ProtocolKind::TaskTwoStep.min_processes(e, f));
                assert!(t.satisfies_task_bound());

                let o = SystemConfig::minimal_object(e, f).unwrap();
                assert_eq!(o.n(), ProtocolKind::ObjectTwoStep.min_processes(e, f));
                assert!(o.satisfies_object_bound());

                let fp = SystemConfig::minimal_fast_paxos(e, f).unwrap();
                assert_eq!(fp.n(), ProtocolKind::FastPaxos.min_processes(e, f));
                assert!(fp.satisfies_fast_paxos_bound());
            }
        }
    }

    #[test]
    fn bound_hierarchy() {
        // object bound <= task bound <= fast paxos bound, each differing
        // by exactly one process when 2e+f-1 >= 2f+1.
        for f in 1..=5usize {
            for e in 1..=f {
                let o = ProtocolKind::ObjectTwoStep.min_processes(e, f);
                let t = ProtocolKind::TaskTwoStep.min_processes(e, f);
                let fp = ProtocolKind::FastPaxos.min_processes(e, f);
                assert!(o <= t && t <= fp);
                if 2 * e + f > 2 * f + 1 {
                    assert_eq!(t, o + 1);
                    assert_eq!(fp, t + 1);
                }
            }
        }
    }

    #[test]
    fn for_protocol_enforces_each_family_bound() {
        for f in 1..=5usize {
            for e in 1..=f {
                for kind in [
                    ProtocolKind::Paxos,
                    ProtocolKind::FastPaxos,
                    ProtocolKind::TaskTwoStep,
                    ProtocolKind::ObjectTwoStep,
                ] {
                    let bound = kind.min_processes(e, f);
                    let at = SystemConfig::for_protocol(kind, bound, e, f).unwrap();
                    assert_eq!(at.n(), bound);
                    // One process below the bound must be rejected —
                    // either by the family bound or, when bound = 2f+1,
                    // by the resilience bound.
                    let below = SystemConfig::for_protocol(kind, bound - 1, e, f);
                    match below {
                        Err(ConfigError::BelowProtocolBound { n, required, .. }) => {
                            assert_eq!((n, required), (bound - 1, bound));
                        }
                        Err(
                            ConfigError::BelowResilienceBound { .. }
                            | ConfigError::TooFewProcesses { .. },
                        ) => {}
                        other => panic!("n={} must be rejected, got {other:?}", bound - 1),
                    }
                }
            }
        }
    }

    #[test]
    fn try_from_tuple_matches_for_protocol() {
        let ok = SystemConfig::try_from((ProtocolKind::TaskTwoStep, 6, 2, 2)).unwrap();
        assert_eq!((ok.n(), ok.e(), ok.f()), (6, 2, 2));
        assert_eq!(
            SystemConfig::try_from((ProtocolKind::TaskTwoStep, 5, 2, 2)),
            SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 5, 2, 2)
        );
    }

    #[test]
    fn failure_set_enumeration() {
        let cfg = SystemConfig::new(5, 2, 2).unwrap();
        let sets: Vec<_> = cfg.failure_sets().collect();
        assert_eq!(sets.len(), 10); // C(5,2)
        assert!(sets.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn display_and_debug() {
        let cfg = SystemConfig::new(5, 2, 2).unwrap();
        assert_eq!(cfg.to_string(), "n=5,e=2,f=2");
        assert_eq!(format!("{cfg:?}"), "SystemConfig(n=5, e=2, f=2)");
        assert_eq!(ProtocolKind::TaskTwoStep.to_string(), "TwoStep(task)");
    }
}
