//! The value trait bound used by all protocols.

use std::fmt::Debug;
use std::hash::Hash;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Requirements on proposable values.
///
/// The paper's protocols compare values (`v ≥ initial_val` at Figure 1
/// line 10, and the max-value tie-break of the recovery rule at line 58),
/// so values must be totally ordered. `⊥` is modelled as `Option::None`,
/// which Rust orders below every `Some(v)` — matching the paper's
/// convention that `⊥` is lower than any other value.
///
/// This is a blanket trait: any `Clone + Ord + Hash + Debug + Send +
/// Serialize + DeserializeOwned + 'static` type is a [`Value`], including
/// `u64`, `String`, and `Vec<u8>`.
///
/// # Example
///
/// ```rust
/// use twostep_types::Value;
///
/// fn assert_value<V: Value>() {}
/// assert_value::<u64>();
/// assert_value::<String>();
/// assert_value::<Vec<u8>>();
/// ```
pub trait Value:
    Clone + Ord + Eq + Hash + Debug + Send + Serialize + DeserializeOwned + 'static
{
}

impl<T> Value for T where
    T: Clone + Ord + Eq + Hash + Debug + Send + Serialize + DeserializeOwned + 'static
{
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_value<V: Value>() {}

    #[test]
    fn standard_types_are_values() {
        assert_value::<u64>();
        assert_value::<u32>();
        assert_value::<i64>();
        assert_value::<String>();
        assert_value::<Vec<u8>>();
        assert_value::<(u64, String)>();
    }

    #[test]
    fn bottom_orders_below_everything() {
        // Option<V> with None as ⊥: None < Some(v) for all v, including
        // the minimum value of the underlying type.
        assert!(None < Some(u64::MIN));
        assert!(None < Some(String::new()));
    }
}
