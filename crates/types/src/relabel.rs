//! Replica-id relabeling, the substrate of the model checker's
//! process-symmetry reduction.
//!
//! Two global states that differ only by a permutation of
//! *interchangeable* replica ids generate isomorphic futures: the
//! protocols treat ids opaquely except where a process is structurally
//! distinguished (the pinned Ω leader, a Byzantine coordinator) or where
//! an id leaks into ballot arithmetic (`Ballot::owner`). A
//! [`Relabeling`] is one such permutation `π`, and canonicalizing a
//! state fingerprint as the minimum over a permutation group collapses
//! each symmetry orbit to a single visited state.
//!
//! # Soundness notes
//!
//! * **Distinguished processes are fixed pointwise.** Permuting the
//!   static Ω leader (or FastBft's coordinator `p0`) would equate states
//!   whose futures differ, because `is_leader()` breaks the symmetry.
//!   [`Relabeling::permutations_fixing`] only generates permutations
//!   that fix the distinguished set, and the protocol-side hooks
//!   additionally *decline* (`None`) any permutation that moves a
//!   process their state distinguishes.
//! * **Ballots are never renumbered.** A slow ballot `b` encodes its
//!   owner as `b mod n`, so one might try to relabel `b` by remapping
//!   the owner while keeping the round `b div n`. That is unsound: two
//!   same-round ballots with different owners compare by owner id, and
//!   remapping owners can flip `b1 < b2` — equating states whose next
//!   `OneA` is rejected in one and accepted in the other. Instead,
//!   [`Relabeling::ballot`] accepts a ballot only if its owner is a
//!   fixed point of `π` (always true for the fast ballot `0`). Since
//!   every slow ballot in a static-leader run is owned by the (fixed)
//!   leader, this costs no reduction in the configurations the checker
//!   sweeps, and degrades conservatively everywhere else.

use crate::{Ballot, ProcessId, ProcessSet};

/// A permutation `π` of the process ids `0..n`, with its inverse.
///
/// # Example
///
/// ```rust
/// use twostep_types::relabel::Relabeling;
/// use twostep_types::{ProcessId, ProcessSet};
///
/// // Swap p1 and p2 in a 3-process system.
/// let rl = Relabeling::new(vec![0, 2, 1]).unwrap();
/// assert_eq!(rl.pid(ProcessId::new(1)), ProcessId::new(2));
/// assert!(rl.fixes(ProcessId::new(0)));
/// let mut s = ProcessSet::new();
/// s.insert(ProcessId::new(1));
/// assert!(rl.pset(s).contains(ProcessId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    fwd: Vec<u32>,
    inv: Vec<u32>,
}

impl Relabeling {
    /// The identity relabeling on `n` processes.
    pub fn identity(n: usize) -> Self {
        let fwd: Vec<u32> = (0..n as u32).collect();
        Relabeling {
            inv: fwd.clone(),
            fwd,
        }
    }

    /// Builds a relabeling from `π` given as `fwd[i] = π(i)`. Returns
    /// `None` if `fwd` is not a permutation of `0..fwd.len()`.
    pub fn new(fwd: Vec<u32>) -> Option<Self> {
        let n = fwd.len();
        let mut inv = vec![u32::MAX; n];
        for (i, &j) in fwd.iter().enumerate() {
            if (j as usize) >= n || inv[j as usize] != u32::MAX {
                return None;
            }
            inv[j as usize] = i as u32;
        }
        Some(Relabeling { fwd, inv })
    }

    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.fwd.len()
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.fwd.iter().enumerate().all(|(i, &j)| i as u32 == j)
    }

    /// `π(p)`.
    pub fn pid(&self, p: ProcessId) -> ProcessId {
        ProcessId::new(self.fwd[p.index()])
    }

    /// `π⁻¹(p)` — which original process lands on slot `p`.
    pub fn preimage(&self, p: ProcessId) -> ProcessId {
        ProcessId::new(self.inv[p.index()])
    }

    /// Whether `π(p) = p`.
    pub fn fixes(&self, p: ProcessId) -> bool {
        self.fwd[p.index()] == p.as_u32()
    }

    /// The image of a process set under `π`.
    pub fn pset(&self, s: ProcessSet) -> ProcessSet {
        s.iter().map(|p| self.pid(p)).collect()
    }

    /// The image of a ballot under `π`: `Some(b)` if the ballot is
    /// preserved (the fast ballot, or a slow ballot whose owner is a
    /// fixed point of `π`), `None` otherwise — see the module docs for
    /// why moved-owner ballots are declined rather than renumbered.
    pub fn ballot(&self, b: Ballot) -> Option<Ballot> {
        if b.is_fast() || self.fixes(b.owner(self.n())) {
            Some(b)
        } else {
            None
        }
    }

    /// All permutations of `0..n` that fix every member of
    /// `distinguished` pointwise. The identity comes first. The group
    /// has `(n - |distinguished|)!` elements, so keep `n` small (the
    /// model checker's regime is `n ≤ 5`).
    pub fn permutations_fixing(n: usize, distinguished: ProcessSet) -> Vec<Relabeling> {
        let movable: Vec<u32> = (0..n as u32)
            .filter(|&i| !distinguished.contains(ProcessId::new(i)))
            .collect();
        let mut image = movable.clone();
        let mut out = Vec::new();
        // Lexicographic permutation enumeration over the movable ids;
        // the first (sorted) arrangement is the identity.
        loop {
            let mut fwd: Vec<u32> = (0..n as u32).collect();
            for (slot, &target) in movable.iter().zip(image.iter()) {
                fwd[*slot as usize] = target;
            }
            out.push(Relabeling::new(fwd).expect("arrangement is a permutation"));
            // Next lexicographic permutation of `image`.
            let Some(i) = (0..image.len().saturating_sub(1))
                .rev()
                .find(|&i| image[i] < image[i + 1])
            else {
                break;
            };
            let j = (i + 1..image.len())
                .rev()
                .find(|&j| image[j] > image[i])
                .expect("successor exists when image[i] < image[i+1]");
            image.swap(i, j);
            image[i + 1..].reverse();
        }
        out
    }
}

/// Hashing a message's content *as seen through a relabeling*.
///
/// The model checker's symmetry reduction needs to compare in-flight
/// message payloads up to the permutation `π`: a `TwoB(b, v)` from a
/// relabeled sender is the same message, but a payload embedding a
/// `ProcessId` (e.g. the `proposer` field of `OneB`) must be hashed with
/// that id mapped through `π`.
///
/// The default implementation declines every permutation (returns
/// `None`), which makes the enclosing state fall back to its identity
/// fingerprint — symmetry silently degrades to no reduction instead of
/// becoming unsound. Message types whose payloads are relabel-aware
/// (like the two-step `Msg`) override this.
pub trait RelabelHash {
    /// Content hash of `self` with every embedded process id mapped
    /// through `rl`, or `None` if this message cannot be relabeled
    /// under `rl` (e.g. it carries a ballot whose owner `rl` moves).
    fn relabel_hash(&self, rl: &Relabeling) -> Option<u64> {
        let _ = rl;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pset(ids: &[u32]) -> ProcessSet {
        ids.iter().map(|&i| ProcessId::new(i)).collect()
    }

    #[test]
    fn identity_roundtrip() {
        let rl = Relabeling::identity(4);
        assert!(rl.is_identity());
        for i in 0..4 {
            assert!(rl.fixes(ProcessId::new(i)));
            assert_eq!(rl.preimage(ProcessId::new(i)), ProcessId::new(i));
        }
    }

    #[test]
    fn new_rejects_non_permutations() {
        assert!(Relabeling::new(vec![0, 0, 1]).is_none());
        assert!(Relabeling::new(vec![0, 3, 1]).is_none());
        assert!(Relabeling::new(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn inverse_is_consistent() {
        let rl = Relabeling::new(vec![2, 0, 1]).unwrap();
        for i in 0..3u32 {
            let p = ProcessId::new(i);
            assert_eq!(rl.preimage(rl.pid(p)), p);
        }
    }

    #[test]
    fn pset_maps_members() {
        let rl = Relabeling::new(vec![0, 2, 1]).unwrap();
        assert_eq!(rl.pset(pset(&[0, 1])), pset(&[0, 2]));
        assert_eq!(rl.pset(ProcessSet::full(3)), ProcessSet::full(3));
    }

    #[test]
    fn ballot_accepts_fast_and_fixed_owners() {
        let rl = Relabeling::new(vec![0, 2, 1]).unwrap();
        assert_eq!(rl.ballot(Ballot::FAST), Some(Ballot::FAST));
        // Ballot 3 is owned by p0 (3 mod 3), which π fixes.
        assert_eq!(rl.ballot(Ballot::new(3)), Some(Ballot::new(3)));
        // Ballot 1 is owned by p1, which π moves: declined.
        assert_eq!(rl.ballot(Ballot::new(1)), None);
    }

    #[test]
    fn permutations_fixing_counts_and_fixes() {
        let group = Relabeling::permutations_fixing(4, pset(&[0]));
        assert_eq!(group.len(), 6, "3! arrangements of p1..p3");
        assert!(group[0].is_identity(), "identity comes first");
        for rl in &group {
            assert!(rl.fixes(ProcessId::new(0)));
        }
        // All distinct.
        for (i, a) in group.iter().enumerate() {
            for b in group.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Relabeling::permutations_fixing(3, pset(&[])).len(), 6);
        assert_eq!(
            Relabeling::permutations_fixing(3, ProcessSet::full(3)).len(),
            1
        );
    }

    #[test]
    fn default_relabel_hash_declines() {
        struct Opaque;
        impl RelabelHash for Opaque {}
        assert_eq!(Opaque.relabel_hash(&Relabeling::identity(2)), None);
    }
}
