//! Vote-tallying helpers shared by the protocol implementations.
//!
//! Both the paper's protocol and the baselines repeatedly perform the
//! same two aggregation steps:
//!
//! * count, per value, which processes voted for it in a ballot
//!   ([`VoteTally`]) — used by fast-path deciders and by the recovery
//!   rule's `|S| > n-f-e` / `|S| = n-f-e` cases;
//! * collect one reply per process ([`Collector`]) — used to assemble a
//!   `1B` quorum of size `n-f`.

use std::collections::BTreeMap;

use crate::{ProcessId, ProcessSet, Value};

/// Tallies votes of the form "process `p` voted for value `v`".
///
/// Each process's vote is counted at most once per value; re-recording
/// the same `(p, v)` pair is idempotent.
///
/// # Example
///
/// ```rust
/// use twostep_types::quorum::VoteTally;
/// use twostep_types::ProcessId;
///
/// let mut tally: VoteTally<u64> = VoteTally::new();
/// tally.record(ProcessId::new(0), 7);
/// tally.record(ProcessId::new(1), 7);
/// tally.record(ProcessId::new(2), 3);
/// assert_eq!(tally.count(&7), 2);
/// assert_eq!(tally.max_value_with_count_at_least(2), Some(&7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VoteTally<V> {
    votes: BTreeMap<V, ProcessSet>,
}

impl<V: Value> VoteTally<V> {
    /// Creates an empty tally.
    pub fn new() -> Self {
        VoteTally {
            votes: BTreeMap::new(),
        }
    }

    /// Records that `p` voted for `v`; returns whether this vote was new.
    pub fn record(&mut self, p: ProcessId, v: V) -> bool {
        self.votes.entry(v).or_default().insert(p)
    }

    /// Number of distinct processes that voted for `v`.
    pub fn count(&self, v: &V) -> usize {
        self.votes.get(v).map_or(0, |s| s.len())
    }

    /// The set of processes that voted for `v`.
    pub fn voters(&self, v: &V) -> ProcessSet {
        self.votes.get(v).copied().unwrap_or_default()
    }

    /// Number of distinct values voted for.
    pub fn distinct_values(&self) -> usize {
        self.votes.len()
    }

    /// Whether no votes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Iterates over `(value, voters)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (&V, ProcessSet)> {
        self.votes.iter().map(|(v, s)| (v, *s))
    }

    /// The values whose vote count is at least `k`, in increasing order.
    pub fn values_with_count_at_least(&self, k: usize) -> impl Iterator<Item = &V> {
        self.votes
            .iter()
            .filter(move |(_, s)| s.len() >= k)
            .map(|(v, _)| v)
    }

    /// The values whose vote count is exactly `k`, in increasing order.
    pub fn values_with_count_exactly(&self, k: usize) -> impl Iterator<Item = &V> {
        self.votes
            .iter()
            .filter(move |(_, s)| s.len() == k)
            .map(|(v, _)| v)
    }

    /// The greatest value with at least `k` votes (the recovery rule's
    /// tie-break at Figure 1 line 58 uses the *maximal* such value).
    pub fn max_value_with_count_at_least(&self, k: usize) -> Option<&V> {
        self.votes
            .iter()
            .rev()
            .find(|(_, s)| s.len() >= k)
            .map(|(v, _)| v)
    }

    /// The greatest value with exactly `k` votes.
    pub fn max_value_with_count_exactly(&self, k: usize) -> Option<&V> {
        self.votes
            .iter()
            .rev()
            .find(|(_, s)| s.len() == k)
            .map(|(v, _)| v)
    }

    /// The unique value with more than `k` votes, if exactly one exists.
    pub fn unique_value_above(&self, k: usize) -> Option<&V> {
        let mut it = self
            .votes
            .iter()
            .filter(|(_, s)| s.len() > k)
            .map(|(v, _)| v);
        let first = it.next()?;
        if it.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Removes all votes.
    pub fn clear(&mut self) {
        self.votes.clear();
    }
}

/// Collects at most one reply per process, in process-id order.
///
/// Insertion is first-write-wins: a process cannot overwrite its reply,
/// matching the "received ... from all q ∈ Q" guards in Figure 1 where
/// each process contributes one message per ballot.
///
/// # Example
///
/// ```rust
/// use twostep_types::quorum::Collector;
/// use twostep_types::ProcessId;
///
/// let mut c: Collector<&'static str> = Collector::new();
/// assert!(c.insert(ProcessId::new(1), "a"));
/// assert!(!c.insert(ProcessId::new(1), "b")); // first write wins
/// assert_eq!(c.len(), 1);
/// assert_eq!(c.get(ProcessId::new(1)), Some(&"a"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Collector<T> {
    replies: BTreeMap<ProcessId, T>,
}

impl<T> Collector<T> {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector {
            replies: BTreeMap::new(),
        }
    }

    /// Records the reply of `p`; returns `false` (and keeps the original)
    /// if `p` already replied.
    pub fn insert(&mut self, p: ProcessId, reply: T) -> bool {
        use std::collections::btree_map::Entry;
        match self.replies.entry(p) {
            Entry::Vacant(e) => {
                e.insert(reply);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// Number of distinct processes that replied.
    pub fn len(&self) -> usize {
        self.replies.len()
    }

    /// Whether no process replied yet.
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }

    /// Whether `p` already replied.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.replies.contains_key(&p)
    }

    /// The reply of `p`, if recorded.
    pub fn get(&self, p: ProcessId) -> Option<&T> {
        self.replies.get(&p)
    }

    /// The set of processes that replied.
    pub fn senders(&self) -> ProcessSet {
        self.replies.keys().copied().collect()
    }

    /// Iterates over `(process, reply)` in process-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &T)> {
        self.replies.iter().map(|(p, r)| (*p, r))
    }

    /// Removes all replies.
    pub fn clear(&mut self) {
        self.replies.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn tally_counts_distinct_voters() {
        let mut t: VoteTally<u64> = VoteTally::new();
        assert!(t.is_empty());
        assert!(t.record(p(0), 5));
        assert!(!t.record(p(0), 5)); // idempotent
        assert!(t.record(p(1), 5));
        assert!(t.record(p(2), 9));
        assert_eq!(t.count(&5), 2);
        assert_eq!(t.count(&9), 1);
        assert_eq!(t.count(&1), 0);
        assert_eq!(t.distinct_values(), 2);
        assert_eq!(t.voters(&5).len(), 2);
    }

    #[test]
    fn tally_threshold_queries() {
        let mut t: VoteTally<u64> = VoteTally::new();
        for i in 0..3 {
            t.record(p(i), 10);
        }
        for i in 3..5 {
            t.record(p(i), 20);
        }
        t.record(p(5), 30);

        let at_least_2: Vec<&u64> = t.values_with_count_at_least(2).collect();
        assert_eq!(at_least_2, vec![&10, &20]);
        let exactly_2: Vec<&u64> = t.values_with_count_exactly(2).collect();
        assert_eq!(exactly_2, vec![&20]);
        assert_eq!(t.max_value_with_count_at_least(2), Some(&20));
        assert_eq!(t.max_value_with_count_exactly(1), Some(&30));
        assert_eq!(t.max_value_with_count_exactly(4), None);
    }

    #[test]
    fn tally_unique_value_above() {
        let mut t: VoteTally<u64> = VoteTally::new();
        for i in 0..3 {
            t.record(p(i), 10);
        }
        t.record(p(3), 20);
        assert_eq!(t.unique_value_above(1), Some(&10));
        assert_eq!(t.unique_value_above(0), None); // two values above 0
        assert_eq!(t.unique_value_above(5), None); // none above 5
    }

    #[test]
    fn tally_clear() {
        let mut t: VoteTally<u64> = VoteTally::new();
        t.record(p(0), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.count(&1), 0);
    }

    #[test]
    fn collector_first_write_wins() {
        let mut c: Collector<u64> = Collector::new();
        assert!(c.is_empty());
        assert!(c.insert(p(2), 22));
        assert!(!c.insert(p(2), 99));
        assert_eq!(c.get(p(2)), Some(&22));
        assert_eq!(c.len(), 1);
        assert!(c.contains(p(2)));
        assert!(!c.contains(p(0)));
    }

    #[test]
    fn collector_senders_and_order() {
        let mut c: Collector<u64> = Collector::new();
        c.insert(p(3), 3);
        c.insert(p(0), 0);
        c.insert(p(1), 1);
        let order: Vec<u32> = c.iter().map(|(q, _)| q.as_u32()).collect();
        assert_eq!(order, vec![0, 1, 3]);
        assert_eq!(c.senders().len(), 3);
        c.clear();
        assert!(c.is_empty());
    }
}
