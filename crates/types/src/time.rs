//! Virtual time.
//!
//! The paper states its latency claims in *message delays*: after GST a
//! message takes at most `Δ` time units, events in `[0, Δ)` form round 1,
//! events in `[Δ, 2Δ)` round 2, and a run is *two-step* for `p` if `p`
//! decides by time `2Δ` (Definitions 2 and 3). We fix `Δ` = 1000 virtual
//! time units ([`DELTA`]) so that latencies divide evenly into message
//! delays while leaving room for sub-`Δ` jitter in asynchronous
//! experiments.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// The message-delay bound `Δ`, in virtual time units.
pub const DELTA: Duration = Duration::from_units(1000);

/// A point in virtual time.
///
/// # Example
///
/// ```rust
/// use twostep_types::{Time, DELTA};
///
/// let t = Time::ZERO + DELTA + DELTA;
/// assert_eq!(t.round(), 2);          // start of the third round
/// assert_eq!(t.as_deltas(), 2.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(u64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);

    /// Creates a time from raw units.
    pub const fn from_units(units: u64) -> Self {
        Time(units)
    }

    /// Raw unit count.
    pub const fn units(self) -> u64 {
        self.0
    }

    /// Index of the round this instant falls in: events in `[kΔ, (k+1)Δ)`
    /// belong to round `k` (0-based; the paper's "first round" is `k = 0`).
    pub const fn round(self) -> u64 {
        self.0 / DELTA.0
    }

    /// This time expressed in multiples of `Δ` (may be fractional).
    pub fn as_deltas(self) -> f64 {
        self.0 as f64 / DELTA.0 as f64
    }

    /// The elapsed duration since an earlier time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Duration(self.0 - earlier.0)
    }
}

/// A span of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw units.
    pub const fn from_units(units: u64) -> Self {
        Duration(units)
    }

    /// Creates a duration of `k·Δ`.
    pub const fn deltas(k: u64) -> Self {
        Duration(k * DELTA.0)
    }

    /// Raw unit count.
    pub const fn units(self) -> u64 {
        self.0
    }

    /// This duration expressed in multiples of `Δ` (may be fractional).
    pub fn as_deltas(self) -> f64 {
        self.0 as f64 / DELTA.0 as f64
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} ({:.2}Δ)", self.0, self.as_deltas())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u ({:.2}Δ)", self.0, self.as_deltas())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_follow_definition() {
        // Events in [0, Δ) are round 0, [Δ, 2Δ) round 1, etc.
        assert_eq!(Time::ZERO.round(), 0);
        assert_eq!(Time::from_units(DELTA.units() - 1).round(), 0);
        assert_eq!((Time::ZERO + DELTA).round(), 1);
        assert_eq!((Time::ZERO + Duration::deltas(2)).round(), 2);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_units(500);
        assert_eq!((t + Duration::from_units(250)).units(), 750);
        assert_eq!((t - Duration::from_units(200)).units(), 300);
        assert_eq!((t - Duration::from_units(600)).units(), 0); // saturates
        assert_eq!(t.since(Time::from_units(100)), Duration::from_units(400));
        assert_eq!(Duration::deltas(3) / 3, DELTA);
        assert_eq!(DELTA * 2, Duration::deltas(2));
        assert_eq!(
            Duration::from_units(10) + Duration::from_units(5),
            Duration::from_units(15)
        );
        assert_eq!(
            Duration::from_units(10) - Duration::from_units(15),
            Duration::ZERO
        );
    }

    #[test]
    fn delta_conversions() {
        assert_eq!(Duration::deltas(2).as_deltas(), 2.0);
        assert_eq!(Time::from_units(1500).as_deltas(), 1.5);
    }

    #[test]
    fn two_step_boundary() {
        // "decided by time 2Δ" — the fast path lands exactly at 2Δ in an
        // E-faulty synchronous run.
        let decision_time = Time::ZERO + Duration::deltas(2);
        assert!(decision_time.units() <= Duration::deltas(2).units());
    }
}
