//! Error types.

use std::error::Error;
use std::fmt;

/// Error returned when an `(n, e, f)` triple does not describe a valid
/// system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than three processes (the paper assumes `n ≥ 3`).
    TooFewProcesses {
        /// The offending process count.
        n: usize,
    },
    /// More than 64 processes ([`crate::ProcessSet`] is a 64-bit mask).
    TooManyProcesses {
        /// The offending process count.
        n: usize,
    },
    /// `f = 0` (a protocol tolerating no failures is out of scope).
    ZeroResilience,
    /// `e > f`: the paper assumes the fast-decision threshold never
    /// exceeds the resilience threshold.
    FastThresholdExceedsResilience {
        /// The fast-decision threshold.
        e: usize,
        /// The resilience threshold.
        f: usize,
    },
    /// `n < 2f+1`: partially synchronous consensus itself is impossible
    /// (Dwork, Lynch, Stockmeyer).
    BelowResilienceBound {
        /// The process count.
        n: usize,
        /// The resilience threshold.
        f: usize,
    },
    /// `n < 3f+1`: Byzantine consensus is impossible below the
    /// Pease–Shostak–Lamport resilience floor.
    BelowByzantineResilience {
        /// The process count.
        n: usize,
        /// The Byzantine resilience threshold.
        f: usize,
    },
    /// `n` is below the minimal process count a specific protocol family
    /// needs for `(e, f)` (Theorems 5 and 6, and Lamport's Fast Paxos
    /// bound).
    BelowProtocolBound {
        /// The protocol family whose bound was violated.
        protocol: &'static str,
        /// The process count.
        n: usize,
        /// The minimal process count for the protocol at `(e, f)`.
        required: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewProcesses { n } => {
                write!(fmtr, "system needs at least 3 processes, got {n}")
            }
            ConfigError::TooManyProcesses { n } => {
                write!(fmtr, "at most 64 processes supported, got {n}")
            }
            ConfigError::ZeroResilience => {
                write!(fmtr, "resilience threshold f must be at least 1")
            }
            ConfigError::FastThresholdExceedsResilience { e, f } => {
                write!(
                    fmtr,
                    "fast threshold e={e} exceeds resilience threshold f={f}"
                )
            }
            ConfigError::BelowResilienceBound { n, f } => {
                write!(
                    fmtr,
                    "n={n} processes cannot tolerate f={f} failures (need n >= 2f+1)"
                )
            }
            ConfigError::BelowByzantineResilience { n, f } => {
                write!(
                    fmtr,
                    "n={n} processes cannot tolerate f={f} byzantine failures (need n >= 3f+1)"
                )
            }
            ConfigError::BelowProtocolBound {
                protocol,
                n,
                required,
            } => {
                write!(
                    fmtr,
                    "n={n} processes are below the {protocol} bound (need n >= {required})"
                )
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errors = [
            ConfigError::TooFewProcesses { n: 2 },
            ConfigError::TooManyProcesses { n: 100 },
            ConfigError::ZeroResilience,
            ConfigError::FastThresholdExceedsResilience { e: 3, f: 2 },
            ConfigError::BelowResilienceBound { n: 4, f: 2 },
            ConfigError::BelowByzantineResilience { n: 6, f: 2 },
            ConfigError::BelowProtocolBound {
                protocol: "TwoStep(task)",
                n: 5,
                required: 6,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
