//! Common vocabulary for the `twostep` workspace.
//!
//! This crate defines the data types shared by every other crate in the
//! reproduction of *"Revisiting Lower Bounds for Two-Step Consensus"*
//! (Ryabinin, Gotsman, Sutra; PODC 2025):
//!
//! * [`ProcessId`] and [`ProcessSet`] — identities of the `n` crash-prone
//!   processes `Π = {p_0, …, p_{n-1}}` and subsets thereof (failure sets
//!   `E`, quorums `Q`, …).
//! * [`Ballot`] — Paxos-style ballot numbers; ballot `0` is the paper's
//!   *fast* ballot, all others are *slow*.
//! * [`SystemConfig`] — a validated `(n, e, f)` triple together with all
//!   the quorum arithmetic the paper's protocols need, and the
//!   lower-bound formulas of Theorems 5 and 6.
//! * [`ByzConfig`] — the Byzantine sibling of [`SystemConfig`]: a
//!   validated `(n, f)` pair with FaB-style fast-quorum arithmetic and
//!   the `5f+1` / `5f−1` fast-path bounds.
//! * [`Time`] / [`Duration`] — virtual time for the discrete-event
//!   simulator, with the message-delay bound `Δ` ([`DELTA`]) used to
//!   define rounds and "two-step" decisions (decided by time `2Δ`).
//! * [`protocol`] — the event-driven state-machine abstraction
//!   ([`protocol::Protocol`]) that both the simulator and the threaded
//!   runtime drive, so a single protocol implementation runs unmodified
//!   in deterministic simulation, model checking, and real deployments.
//!
//! # Example
//!
//! ```rust
//! use twostep_types::{SystemConfig, ProtocolKind};
//!
//! // The paper's headline numbers: for e = ceil((f+1)/2) the consensus
//! // *object* needs only 2f+1 processes where Fast Paxos needs 2f+3.
//! let f: usize = 2;
//! let e = (f + 1).div_ceil(2);
//! assert_eq!(ProtocolKind::ObjectTwoStep.min_processes(e, f), 2 * f + 1);
//! assert_eq!(ProtocolKind::FastPaxos.min_processes(e, f), 2 * f + 3);
//!
//! let cfg = SystemConfig::minimal_object(e, f).unwrap();
//! assert_eq!(cfg.n(), 5);
//! assert_eq!(cfg.fast_quorum(), cfg.n() - e);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ballot;
mod byz;
mod config;
mod error;
mod process;
pub mod protocol;
pub mod quorum;
pub mod relabel;
mod time;
mod value;

pub use ballot::Ballot;
pub use byz::{ByzConfig, ByzVariant, Corruptible};
pub use config::{ProtocolKind, SystemConfig};
pub use error::ConfigError;
pub use process::{combinations, ProcessId, ProcessSet};
pub use time::{Duration, Time, DELTA};
pub use value::Value;
