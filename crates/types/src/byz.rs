//! Byzantine fault-model configurations and quorum arithmetic.
//!
//! The source paper asks how cheap two-step consensus can be under
//! *crash* faults; this module carries the same question into the
//! Byzantine model, following the fast-BFT lineage the reproduction
//! compares against:
//!
//! * **FaB Paxos** (Martin & Alvisi 2006): fast quorums of
//!   `⌈(n+3f+1)/2⌉` acceptors, two-step in the common case whenever
//!   `n ≥ 5f+1`.
//! * **The `5f−1` refinement** (Kuznetsov, Tonkikh, Zhang;
//!   arXiv:2102.12825): conditioning the fast path on an *honest
//!   proposer* shaves two processes, giving fast quorums of
//!   `⌈(n+3f−1)/2⌉` and the optimal `n ≥ 5f−1`.
//!
//! [`ByzConfig`] is the Byzantine sibling of [`crate::SystemConfig`]:
//! all quorum arithmetic for the fast-BFT baseline and the analysis
//! obligations (B1–B5 in `twostep-analysis`) lives here, in one place.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ConfigError, ProcessId, ProcessSet};

/// Which fast-quorum rule a Byzantine configuration uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ByzVariant {
    /// FaB Paxos's classic rule: fast quorum `⌈(n+3f+1)/2⌉`, fast path
    /// available under `f` Byzantine silences iff `n ≥ 5f+1`.
    Fab,
    /// The proposer-conditioned rule of arXiv:2102.12825: fast quorum
    /// `⌈(n+3f−1)/2⌉`, fast path available iff `n ≥ 5f−1` — optimal,
    /// but its recovery certifies fast-round state from the *honest
    /// proposer's own report*, which recovery waits for, instead of
    /// counting witnesses.
    Tight,
}

impl ByzVariant {
    /// Human-readable variant name, as used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ByzVariant::Fab => "FaB(5f+1)",
            ByzVariant::Tight => "FaB(5f-1)",
        }
    }

    /// The minimal `n` at which the variant's fast path stays available
    /// under `f` Byzantine silences: `5f+1` for [`ByzVariant::Fab`],
    /// `5f−1` for [`ByzVariant::Tight`] (never below the `3f+1`
    /// Byzantine resilience floor).
    pub fn min_fast_live(self, f: usize) -> usize {
        let floor = 3 * f + 1;
        match self {
            ByzVariant::Fab => floor.max(5 * f + 1),
            ByzVariant::Tight => floor.max((5 * f).saturating_sub(1)),
        }
    }
}

impl fmt::Display for ByzVariant {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmtr.write_str(self.name())
    }
}

/// A validated Byzantine system configuration: `n` processes of which
/// up to `f` may be *Byzantine* — equivocate, forge values, lie about
/// ballots, or fall selectively silent — while the honest remainder
/// must still agree.
///
/// Contrast with [`crate::SystemConfig`], where all `f` faults are
/// crashes: the resilience floor rises from `2f+1` to `3f+1`, and the
/// fast path needs `5f+1` (FaB) or `5f−1` (the arXiv:2102.12825
/// optimum) instead of the paper's crash-model `2e+f`.
///
/// # Example
///
/// ```rust
/// use twostep_types::{ByzConfig, ByzVariant};
///
/// let cfg = ByzConfig::minimal_fast(ByzVariant::Fab, 1)?; // n = 5f+1 = 6
/// assert_eq!(cfg.fast_quorum(), 5);   // ⌈(6+3+1)/2⌉
/// assert_eq!(cfg.slow_quorum(), 5);   // n-f
/// assert!(cfg.fast_path_live());
///
/// // One process fewer and f silent Byzantine processes stall the
/// // fast path forever: the quorum no longer fits in the honest set.
/// let below = ByzConfig::new(5, 1, ByzVariant::Fab)?;
/// assert!(!below.fast_path_live());
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByzConfig {
    n: usize,
    f: usize,
    variant: ByzVariant,
}

impl ByzConfig {
    /// Creates a Byzantine configuration, validating `n ≥ 4`, `n ≤ 64`,
    /// `1 ≤ f` and the Byzantine resilience floor `n ≥ 3f+1`.
    ///
    /// The fast-path bound (`5f+1` / `5f−1`) is *not* required:
    /// experiment E14 and the analysis tightness witnesses deliberately
    /// run configurations where [`ByzConfig::fast_path_live`] is false.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the violated assumption.
    pub fn new(n: usize, f: usize, variant: ByzVariant) -> Result<Self, ConfigError> {
        if n < 4 {
            return Err(ConfigError::TooFewProcesses { n });
        }
        if n > ProcessSet::MAX_PROCESSES as usize {
            return Err(ConfigError::TooManyProcesses { n });
        }
        if f == 0 {
            return Err(ConfigError::ZeroResilience);
        }
        if n < 3 * f + 1 {
            return Err(ConfigError::BelowByzantineResilience { n, f });
        }
        Ok(ByzConfig { n, f, variant })
    }

    /// The minimal configuration whose fast path stays available under
    /// `f` Byzantine faults: `n = 5f+1` (FaB) or `n = 5f−1` (Tight).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid `f`.
    pub fn minimal_fast(variant: ByzVariant, f: usize) -> Result<Self, ConfigError> {
        Self::new(variant.min_fast_live(f), f, variant)
    }

    /// Number of processes `n`.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Byzantine resilience threshold `f`.
    pub const fn f(&self) -> usize {
        self.f
    }

    /// The fast-quorum rule in force.
    pub const fn variant(&self) -> ByzVariant {
        self.variant
    }

    /// Fast-quorum size: `⌈(n+3f+1)/2⌉` ([`ByzVariant::Fab`]) or
    /// `⌈(n+3f−1)/2⌉` ([`ByzVariant::Tight`]).
    ///
    /// The classic size is exactly what makes count-based recovery
    /// safe: any fast-decided value retains a strict majority among the
    /// fast-vote reports visible in every recovery quorum, even after
    /// `f` forged reports (obligations B2 and B6 in
    /// `twostep-analysis`).
    pub const fn fast_quorum(&self) -> usize {
        let numerator = match self.variant {
            ByzVariant::Fab => self.n + 3 * self.f + 1,
            ByzVariant::Tight => self.n + 3 * self.f - 1,
        };
        numerator.div_ceil(2)
    }

    /// Slow-path (recovery) quorum size `n - f`.
    pub const fn slow_quorum(&self) -> usize {
        self.n - self.f
    }

    /// Certification threshold for recovery: a value may be adopted by
    /// a new ballot only if at least `f+1` distinct processes vouch for
    /// it, so the `f` Byzantine processes can never certify a forgery
    /// by themselves. (The [`ByzVariant::Tight`] protocol applies this
    /// to slow-ballot reports only; its *fast-round* certification
    /// instead reads the honest proposer's own report — the
    /// honest-proposer conditioning of arXiv:2102.12825.)
    pub const fn cert_threshold(&self) -> usize {
        self.f + 1
    }

    /// The number of *honest* members any two fast quorums share:
    /// `2·fq − n − f`. Positive for every valid configuration (and
    /// `≥ 2f+1` under the classic rule) — which is why two conflicting
    /// fast decisions are impossible even when Byzantine members vote
    /// in both (B1).
    pub const fn honest_fast_overlap(&self) -> usize {
        let fq = self.fast_quorum();
        (2 * fq).saturating_sub(self.n + self.f)
    }

    /// The number of honest fast-voters guaranteed visible in any
    /// recovery quorum after discounting `f` possible forgeries:
    /// `fq − 2f` (the left-hand side of the FaB form of obligation B2
    /// in `twostep-analysis`; the Tight variant certifies from the
    /// coordinator's report instead of counting witnesses).
    pub const fn honest_fast_witnesses(&self) -> usize {
        self.fast_quorum().saturating_sub(2 * self.f)
    }

    /// Whether the fast path is *available* under `f` Byzantine
    /// silences: `fast_quorum ≤ n − f`. Equivalent to
    /// `n ≥ 5f+1` (Fab) / `n ≥ 5f−1` (Tight) — the bound whose
    /// tightness the analysis witnesses execute at `n = 5f`.
    pub const fn fast_path_live(&self) -> bool {
        self.fast_quorum() <= self.n - self.f
    }

    /// The full process set `Π`.
    pub fn all_processes(&self) -> ProcessSet {
        ProcessSet::full(self.n)
    }

    /// Iterates over all process ids `p_0, …, p_{n-1}`.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n as u32).map(ProcessId::new)
    }
}

impl fmt::Debug for ByzConfig {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            fmtr,
            "ByzConfig(n={}, f={}, {})",
            self.n,
            self.f,
            self.variant.name()
        )
    }
}

impl fmt::Display for ByzConfig {
    fn fmt(&self, fmtr: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmtr, "n={},f={},{}", self.n, self.f, self.variant.name())
    }
}

/// Messages (and values) that the Byzantine fault-injection layer in
/// `twostep-byz` knows how to corrupt.
///
/// Implementations must be *deterministic in `salt`*: the same salt
/// applied to the same message yields the same corruption, which keeps
/// Byzantine schedules replayable from a seed. Each method returns
/// whether the message was actually altered, so the injector can count
/// real injections and leave uncorruptible messages (e.g. heartbeats)
/// untouched.
pub trait Corruptible {
    /// Deterministically mutates any embedded proposal/decision value.
    /// Returns `false` if the message carries no value to forge.
    fn forge_value(&mut self, salt: u64) -> bool;

    /// Deterministically mutates any embedded ballot number. Returns
    /// `false` if the message carries no ballot to lie about.
    fn lie_ballot(&mut self, salt: u64) -> bool;
}

/// Forged `u64` values flip the top bit and mix in the salt, so a
/// forgery is never equal to the original (the XOR with a nonzero mask
/// guarantees it) and is recognizably outside the small value pools the
/// fuzzer and experiments propose from.
impl Corruptible for u64 {
    fn forge_value(&mut self, salt: u64) -> bool {
        *self ^= 0x8000_0000_0000_0000 | (salt << 1) | 1;
        true
    }

    fn lie_ballot(&mut self, _salt: u64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            ByzConfig::new(3, 1, ByzVariant::Fab),
            Err(ConfigError::TooFewProcesses { n: 3 })
        );
        assert_eq!(
            ByzConfig::new(65, 1, ByzVariant::Fab),
            Err(ConfigError::TooManyProcesses { n: 65 })
        );
        assert_eq!(
            ByzConfig::new(6, 0, ByzVariant::Fab),
            Err(ConfigError::ZeroResilience)
        );
        assert_eq!(
            ByzConfig::new(6, 2, ByzVariant::Fab),
            Err(ConfigError::BelowByzantineResilience { n: 6, f: 2 })
        );
    }

    #[test]
    fn fab_headline_numbers() {
        // n = 5f+1: fast quorum 4f+1 = n-f, so the fast path survives f
        // silences with zero slack — FaB's common case is exactly tight.
        for f in 1..=4 {
            let cfg = ByzConfig::minimal_fast(ByzVariant::Fab, f).unwrap();
            assert_eq!(cfg.n(), 5 * f + 1);
            assert_eq!(cfg.fast_quorum(), 4 * f + 1);
            assert_eq!(cfg.fast_quorum(), cfg.slow_quorum());
            assert!(cfg.fast_path_live());

            // One process fewer and the fast quorum exceeds the honest
            // capacity: the bound is tight.
            let below = ByzConfig::new(5 * f, f, ByzVariant::Fab).unwrap();
            assert!(!below.fast_path_live());
        }
    }

    #[test]
    fn tight_variant_shaves_two_processes() {
        for f in 2..=4 {
            let fab = ByzVariant::Fab.min_fast_live(f);
            let tight = ByzVariant::Tight.min_fast_live(f);
            assert_eq!(fab - tight, 2);
            let cfg = ByzConfig::minimal_fast(ByzVariant::Tight, f).unwrap();
            assert_eq!(cfg.n(), 5 * f - 1);
            assert!(cfg.fast_path_live());
            assert!(!ByzConfig::new(5 * f - 2, f, ByzVariant::Tight)
                .unwrap()
                .fast_path_live());
        }
        // f = 1 bottoms out at the 3f+1 = 4 resilience floor (5f-1 = 4).
        assert_eq!(ByzVariant::Tight.min_fast_live(1), 4);
    }

    #[test]
    fn quorum_intersections_cover_the_obligations() {
        for f in 1..=4 {
            for n in (3 * f + 1)..=25 {
                for variant in [ByzVariant::Fab, ByzVariant::Tight] {
                    let cfg = ByzConfig::new(n, f, variant).unwrap();
                    // B1: two fast quorums share more than f processes,
                    // so equivocating double-voters cannot bridge two
                    // conflicting fast decisions.
                    assert!(
                        2 * cfg.fast_quorum() > cfg.n() + cfg.f(),
                        "{cfg}: fast quorums intersect only through byzantines"
                    );
                    // B3: slow quorums intersect in >= f+1 honest.
                    assert!(2 * cfg.slow_quorum() > cfg.n() + cfg.f());
                    // Fast-path liveness iff the variant's bound holds.
                    assert_eq!(cfg.fast_path_live(), n >= variant.min_fast_live(f));
                }
            }
        }
    }

    #[test]
    fn honest_witness_counts() {
        let cfg = ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap(); // n=6
        assert_eq!(cfg.honest_fast_overlap(), 3); // 2*5 - 6 - 1
        assert_eq!(cfg.honest_fast_witnesses(), 3); // 5 - 2
        assert!(cfg.honest_fast_witnesses() >= cfg.cert_threshold());
    }

    #[test]
    fn forging_a_value_always_changes_it() {
        for salt in 0..50u64 {
            for v in [0u64, 1, 7, u64::MAX, 1 << 62] {
                let mut forged = v;
                assert!(forged.forge_value(salt));
                assert_ne!(forged, v, "salt {salt}");
                // Deterministic in (value, salt).
                let mut again = v;
                again.forge_value(salt);
                assert_eq!(forged, again);
            }
        }
    }

    #[test]
    fn display_and_debug() {
        let cfg = ByzConfig::new(6, 1, ByzVariant::Fab).unwrap();
        assert_eq!(cfg.to_string(), "n=6,f=1,FaB(5f+1)");
        assert_eq!(format!("{cfg:?}"), "ByzConfig(n=6, f=1, FaB(5f+1))");
    }
}
