//! Ballot numbers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// A Paxos-style ballot number.
///
/// Ballot `0` is the paper's *fast* ballot: every process may try to get
/// its proposal accepted directly (the fast path). All ballots `b > 0`
/// are *slow* ballots, each owned by the process `p_i` with
/// `i ≡ b (mod n)` (Figure 1, line "on timeout").
///
/// # Example
///
/// ```rust
/// use twostep_types::{Ballot, ProcessId};
///
/// assert!(Ballot::FAST.is_fast());
/// let b = Ballot::FAST.next_owned_by(ProcessId::new(2), 5);
/// assert!(b.is_slow());
/// assert_eq!(b.owner(5), ProcessId::new(2));
/// assert!(b > Ballot::FAST);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Ballot(u64);

impl Ballot {
    /// The fast ballot, `0`.
    pub const FAST: Ballot = Ballot(0);

    /// Creates a ballot from its raw number.
    pub const fn new(number: u64) -> Self {
        Ballot(number)
    }

    /// The raw ballot number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Whether this is the fast ballot `0`.
    pub const fn is_fast(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a slow ballot (`> 0`).
    pub const fn is_slow(self) -> bool {
        self.0 != 0
    }

    /// The process owning this slow ballot: `p_i` with `i ≡ b (mod n)`.
    ///
    /// Returns the owner for slow ballots; for the fast ballot there is no
    /// single owner (every process can use the fast path), so this returns
    /// `p_{0 mod n} = p_0` — callers should check [`Ballot::is_fast`] first
    /// when ownership matters.
    pub fn owner(self, n: usize) -> ProcessId {
        ProcessId::new((self.0 % n as u64) as u32)
    }

    /// The smallest ballot strictly greater than `self` owned by `p`
    /// (`i ≡ b (mod n)`), as required when `p` starts a new slow ballot.
    pub fn next_owned_by(self, p: ProcessId, n: usize) -> Ballot {
        let n = n as u64;
        let i = u64::from(p.as_u32());
        debug_assert!(i < n, "process {p} out of range for n={n}");
        // Smallest b > self.0 with b ≡ i (mod n).
        let base = self.0 + 1;
        let rem = base % n;
        let add = (i + n - rem) % n;
        let b = base + add;
        debug_assert!(b > self.0 && b % n == i);
        Ballot(b)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fast() {
            f.write_str("b0(fast)")
        } else {
            write!(f, "b{}", self.0)
        }
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u64> for Ballot {
    fn from(number: u64) -> Self {
        Ballot(number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ballot_properties() {
        assert!(Ballot::FAST.is_fast());
        assert!(!Ballot::FAST.is_slow());
        assert_eq!(Ballot::FAST.number(), 0);
        assert_eq!(Ballot::default(), Ballot::FAST);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ballot::new(1) > Ballot::FAST);
        assert!(Ballot::new(17) > Ballot::new(5));
    }

    #[test]
    fn next_owned_by_congruence() {
        for n in 3..=7usize {
            for i in 0..n as u32 {
                let p = ProcessId::new(i);
                let mut b = Ballot::FAST;
                for _ in 0..5 {
                    let nb = b.next_owned_by(p, n);
                    assert!(nb > b);
                    assert_eq!(nb.number() % n as u64, u64::from(i));
                    assert_eq!(nb.owner(n), p);
                    b = nb;
                }
            }
        }
    }

    #[test]
    fn next_owned_by_is_minimal() {
        // The returned ballot is the *smallest* valid one: no smaller
        // ballot > current is congruent to i mod n.
        let n = 5;
        for cur in 0..20u64 {
            for i in 0..n as u32 {
                let b = Ballot::new(cur).next_owned_by(ProcessId::new(i), n);
                for candidate in cur + 1..b.number() {
                    assert_ne!(candidate % n as u64, u64::from(i));
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ballot::FAST.to_string(), "b0(fast)");
        assert_eq!(Ballot::new(12).to_string(), "b12");
    }
}
