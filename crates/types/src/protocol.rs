//! The event-driven protocol abstraction.
//!
//! Consensus protocols in this workspace are *pure state machines*: they
//! react to events (startup, proposals, messages, timers) by mutating
//! local state and emitting [`Effects`] — messages to send, timers to
//! (re)arm, and decisions. The surrounding engine (the deterministic
//! simulator in `twostep-sim`, the model checker and adversary in
//! `twostep-verify`, or the thread-per-process runtime in
//! `twostep-runtime`) is responsible for executing those effects.
//!
//! This inversion is what makes the reproduction trustworthy: the *same*
//! protocol code is driven through the paper's E-faulty synchronous runs,
//! through exhaustive schedule exploration, and over real TCP sockets.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::relabel::Relabeling;
use crate::{Duration, ProcessId, Value};

/// Identifies a logical timer within a protocol instance.
///
/// Setting a timer that is already armed *resets* it (the paper's
/// `start_timer(new_ballot_timer, 5Δ)` semantics). Protocols declare
/// their timers as constants, e.g. `TimerId::NEW_BALLOT`.
///
/// The id space is `u64` so that layered protocols can namespace inner
/// instances without aliasing: the SMR replica maps `(slot, inner
/// timer)` pairs into disjoint strides, and a `u32` id would wrap once
/// slots pass 2³⁰ — silently routing one instance's ticks to another.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TimerId(pub u64);

impl TimerId {
    /// The `new_ballot_timer` of Figure 1 / §C.1: fires 2Δ after startup,
    /// then every 5Δ, prompting the Ω-elected leader to open a new slow
    /// ballot.
    pub const NEW_BALLOT: TimerId = TimerId(0);
    /// Heartbeat broadcast timer used by the Ω leader-election service.
    pub const HEARTBEAT: TimerId = TimerId(1);
    /// Failure-suspicion sweep timer used by the Ω service.
    pub const SUSPECT: TimerId = TimerId(2);
}

/// The effects emitted by one protocol step.
///
/// Effects are a passive buffer: handlers push into it and the engine
/// drains it. Ordering within one step is preserved.
///
/// # Example
///
/// ```rust
/// use twostep_types::protocol::{Effects, TimerId};
/// use twostep_types::{Duration, ProcessId};
///
/// let mut eff: Effects<u64, &'static str> = Effects::new();
/// eff.send(ProcessId::new(1), "hello");
/// eff.broadcast_others("all", 3, ProcessId::new(0));
/// eff.set_timer(TimerId::NEW_BALLOT, Duration::deltas(2));
/// eff.decide(42);
/// assert_eq!(eff.sends.len(), 3);
/// assert_eq!(eff.decisions, vec![42]);
/// ```
#[derive(Debug, Clone)]
pub struct Effects<V, M> {
    /// Point-to-point messages to deliver: `(destination, message)`.
    pub sends: Vec<(ProcessId, M)>,
    /// Timers to (re)arm: `(timer, delay-from-now)`.
    pub timer_sets: Vec<(TimerId, Duration)>,
    /// Timers to cancel.
    pub timer_cancels: Vec<TimerId>,
    /// `decide(v)` events, in order. A correct protocol never emits two
    /// different values here across its lifetime; the verification crate
    /// checks exactly that.
    pub decisions: Vec<V>,
}

impl<V, M> Default for Effects<V, M> {
    fn default() -> Self {
        Effects::new()
    }
}

impl<V, M> Effects<V, M> {
    /// Creates an empty effect buffer.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// Queues a point-to-point message.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues `msg` to every process except `me` (the paper's
    /// "send … to Π \ {p_i}").
    pub fn broadcast_others(&mut self, msg: M, n: usize, me: ProcessId)
    where
        M: Clone,
    {
        for i in 0..n as u32 {
            let p = ProcessId::new(i);
            if p != me {
                self.sends.push((p, msg.clone()));
            }
        }
    }

    /// Queues `msg` to every process including the sender (the paper's
    /// "send … to Π"; self-delivery is handled by the engine).
    pub fn broadcast_all(&mut self, msg: M, n: usize)
    where
        M: Clone,
    {
        for i in 0..n as u32 {
            self.sends.push((ProcessId::new(i), msg.clone()));
        }
    }

    /// Arms (or re-arms) `timer` to fire after `delay`.
    pub fn set_timer(&mut self, timer: TimerId, delay: Duration) {
        self.timer_sets.push((timer, delay));
    }

    /// Cancels `timer` if armed.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.timer_cancels.push(timer);
    }

    /// Records a `decide(v)` event.
    pub fn decide(&mut self, value: V) {
        self.decisions.push(value);
    }

    /// Whether the step produced no effects at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.timer_sets.is_empty()
            && self.timer_cancels.is_empty()
            && self.decisions.is_empty()
    }

    /// Moves all effects out of `self`, leaving it empty.
    pub fn drain(&mut self) -> Effects<V, M> {
        std::mem::take(self)
    }
}

impl<V, M> Effects<V, M>
where
    V: Clone,
    M: Clone,
{
    /// Appends all effects of `other` after the effects of `self`.
    pub fn extend(&mut self, other: Effects<V, M>) {
        self.sends.extend(other.sends);
        self.timer_sets.extend(other.timer_sets);
        self.timer_cancels.extend(other.timer_cancels);
        self.decisions.extend(other.decisions);
    }
}

/// Marker bound for protocol messages.
pub trait Message: Clone + Debug + Send + Serialize + DeserializeOwned + 'static {}
impl<T> Message for T where T: Clone + Debug + Send + Serialize + DeserializeOwned + 'static {}

/// A single-decree consensus protocol instance running at one process.
///
/// Implementations must be deterministic: the next state and effects are
/// a pure function of the current state and the event. All
/// nondeterminism (message interleaving, crashes, timing) lives in the
/// engine, which is what allows exhaustive exploration.
///
/// The two consensus formulations studied by the paper map onto this
/// trait as follows:
///
/// * **task** — the initial value is fixed at construction time and
///   [`Protocol::on_start`] immediately begins the fast path;
/// * **object** — construction takes no value, and an explicit
///   `propose(v)` invocation arrives later (or never) via
///   [`Protocol::on_propose`].
pub trait Protocol<V: Value>: Debug + Send {
    /// The protocol's wire message type.
    type Message: Message;

    /// This process's identity.
    fn id(&self) -> ProcessId;

    /// Invoked once at time 0, before any message delivery.
    fn on_start(&mut self, effects: &mut Effects<V, Self::Message>);

    /// Invoked when a client submits proposal `value` at this process.
    ///
    /// For task-style protocols whose proposal was fixed at construction,
    /// implementations may ignore this event.
    fn on_propose(&mut self, value: V, effects: &mut Effects<V, Self::Message>);

    /// Invoked when `msg` from `from` is delivered.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Message,
        effects: &mut Effects<V, Self::Message>,
    );

    /// Invoked when an armed timer fires.
    fn on_timer(&mut self, timer: TimerId, effects: &mut Effects<V, Self::Message>);

    /// The value this process has decided, if any.
    fn decision(&self) -> Option<V>;

    /// A fingerprint of the local state, used by the model checker to
    /// prune revisited global states. The default hashes the `Debug`
    /// rendering, which is adequate because all protocol state here is
    /// plain data with derived `Debug`.
    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        h.finish()
    }

    /// A fingerprint of the local state with every embedded process id
    /// mapped through the relabeling `rl`, used by the model checker's
    /// process-symmetry reduction. Returning `None` (the default)
    /// declines the permutation: the checker then falls back to the
    /// plain fingerprint for the enclosing global state, degrading the
    /// reduction instead of risking unsoundness. Implementations must
    /// decline any `rl` that moves a process their behavior
    /// distinguishes (a pinned leader, a ballot owner, …).
    fn state_fingerprint_relabeled(&self, rl: &Relabeling) -> Option<u64> {
        let _ = rl;
        None
    }

    /// Whether delivering `msg` from `from` would be a *permanent*
    /// no-op at this process, used by the model checker's
    /// partial-order reduction to scrub inert mail from the network.
    ///
    /// # Contract
    ///
    /// Returning `true` asserts that [`Protocol::on_message`] for this
    /// `(from, msg)` pair would produce no effects and no
    /// fingerprint-visible state change **now and in every future
    /// state of this process** — not just in the current state.
    /// Protocols establish the "every future state" half through
    /// monotonicity: a ballot too stale to join now can never become
    /// joinable because ballots only grow, a duplicate fast vote stays
    /// a duplicate because vote sets only grow, and so on. A message
    /// that is merely ignored *today* (e.g. a proposal arriving before
    /// Ω stabilizes, when a later state would act on it) must return
    /// `false`.
    ///
    /// The checker prunes the message outright when this returns
    /// `true`, so a wrong `true` silently removes schedules from the
    /// explored space — when in doubt, keep the default.
    fn message_is_noop(&self, from: ProcessId, msg: &Self::Message) -> bool {
        let _ = (from, msg);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_buffering() {
        let mut eff: Effects<u64, u8> = Effects::new();
        assert!(eff.is_empty());
        eff.send(ProcessId::new(1), 7);
        eff.set_timer(TimerId::NEW_BALLOT, Duration::deltas(2));
        eff.cancel_timer(TimerId::HEARTBEAT);
        eff.decide(5);
        assert!(!eff.is_empty());
        assert_eq!(eff.sends, vec![(ProcessId::new(1), 7)]);
        assert_eq!(
            eff.timer_sets,
            vec![(TimerId::NEW_BALLOT, Duration::deltas(2))]
        );
        assert_eq!(eff.timer_cancels, vec![TimerId::HEARTBEAT]);
        assert_eq!(eff.decisions, vec![5]);

        let drained = eff.drain();
        assert!(eff.is_empty());
        assert_eq!(drained.sends.len(), 1);
    }

    #[test]
    fn broadcast_others_excludes_self() {
        let mut eff: Effects<u64, &str> = Effects::new();
        eff.broadcast_others("m", 4, ProcessId::new(2));
        let dests: Vec<u32> = eff.sends.iter().map(|(p, _)| p.as_u32()).collect();
        assert_eq!(dests, vec![0, 1, 3]);
    }

    #[test]
    fn broadcast_all_includes_self() {
        let mut eff: Effects<u64, &str> = Effects::new();
        eff.broadcast_all("m", 3);
        assert_eq!(eff.sends.len(), 3);
    }

    #[test]
    fn extend_preserves_order() {
        let mut a: Effects<u64, u8> = Effects::new();
        a.send(ProcessId::new(0), 1);
        let mut b: Effects<u64, u8> = Effects::new();
        b.send(ProcessId::new(1), 2);
        b.decide(9);
        a.extend(b);
        assert_eq!(
            a.sends,
            vec![(ProcessId::new(0), 1), (ProcessId::new(1), 2)]
        );
        assert_eq!(a.decisions, vec![9]);
    }

    #[test]
    fn timer_ids_are_distinct() {
        assert_ne!(TimerId::NEW_BALLOT, TimerId::HEARTBEAT);
        assert_ne!(TimerId::HEARTBEAT, TimerId::SUSPECT);
    }
}
