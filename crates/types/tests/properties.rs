//! Property tests for the foundational types: ballot arithmetic,
//! quorum-size identities across the (e, f) grid, and ProcessSet set
//! algebra. These pin the invariants every protocol crate silently
//! relies on — e.g. that any fast quorum and any slow quorum share at
//! least `n - f - e` processes, which is exactly the recovery rule's
//! vote threshold.

use proptest::prelude::*;

use twostep_types::{combinations, Ballot, ProcessId, ProcessSet, SystemConfig};

/// The (e, f) grid the paper's tables range over.
const GRID: [(usize, usize); 4] = [(1, 1), (1, 2), (2, 2), (2, 3)];

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// A ProcessSet drawn from the first `n` processes.
fn subset_of(n: usize, bits: u64) -> ProcessSet {
    ProcessSet::from_bits(bits & ProcessSet::full(n).bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ballot ordering is exactly the ordering of the raw numbers, and
    /// `new`/`number` round-trip.
    #[test]
    fn ballot_ordering_matches_numbers(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        prop_assert_eq!(Ballot::new(a).number(), a);
        prop_assert_eq!(Ballot::new(a).cmp(&Ballot::new(b)), a.cmp(&b));
        prop_assert_eq!(Ballot::new(a) == Ballot::new(b), a == b);
    }

    /// `next_owned_by` yields the smallest ballot above `self` owned by
    /// the requested process: strictly greater, correctly owned, slow,
    /// and within `n` of the starting ballot.
    #[test]
    fn next_owned_by_round_trips_through_owner(
        start in 0u64..1 << 40,
        owner in 0u32..16,
        n in 3usize..17,
    ) {
        prop_assume!((owner as usize) < n);
        let b = Ballot::new(start).next_owned_by(p(owner), n);
        prop_assert!(b > Ballot::new(start));
        prop_assert!(b.is_slow());
        prop_assert_eq!(b.owner(n), p(owner));
        prop_assert!(b.number() - start <= n as u64, "skipped a whole rotation");
    }

    /// Successive slow ballots rotate ownership round-robin over Π.
    #[test]
    fn slow_ballot_ownership_rotates(b in 1u64..1 << 40, n in 3usize..17) {
        let owner = Ballot::new(b).owner(n);
        let next = Ballot::new(b + 1).owner(n);
        prop_assert_eq!(
            (owner.as_u32() + 1) % n as u32,
            next.as_u32(),
            "ballot {} -> {}", b, b + 1
        );
    }

    /// The quorum-size identities behind the paper's counting arguments,
    /// for every valid n at every grid point: sizes add back up to n,
    /// and the *worst-case overlap* of a fast and a slow quorum is the
    /// recovery threshold `n - f - e` — non-negative exactly when the
    /// task bound `n ≥ 2e + f` holds with `n ≥ 2f + 1`.
    #[test]
    fn quorum_arithmetic_across_the_grid(grid in 0usize..4, extra in 0usize..6) {
        let (e, f) = GRID[grid];
        let n = SystemConfig::minimal_task(e, f).unwrap().n() + extra;
        let cfg = SystemConfig::new(n, e, f).unwrap();
        prop_assert_eq!(cfg.fast_quorum() + cfg.e(), cfg.n());
        prop_assert_eq!(cfg.slow_quorum() + cfg.f(), cfg.n());
        prop_assert_eq!(cfg.recovery_threshold(), cfg.n() - cfg.f() - cfg.e());
        // Two slow quorums overlap in ≥ n - 2f ≥ 1 processes (Paxos'
        // classic intersection), a fast and a slow quorum in ≥ n - f - e.
        prop_assert!(2 * cfg.slow_quorum() > cfg.n());
        prop_assert_eq!(
            cfg.fast_quorum() + cfg.slow_quorum() - cfg.n(),
            cfg.recovery_threshold()
        );
        prop_assert!(cfg.satisfies_task_bound());
    }

    /// The arithmetic worst case is achieved by actual sets: over every
    /// pair of (fast, slow) quorums of a small system, the minimum
    /// intersection size equals `n - f - e` exactly.
    #[test]
    fn quorum_intersection_minimum_is_tight(grid in 0usize..4) {
        let (e, f) = GRID[grid];
        let cfg = SystemConfig::minimal_task(e, f).unwrap();
        let n = cfg.n();
        let mut min_overlap = usize::MAX;
        for fast in combinations(n, cfg.fast_quorum()) {
            for slow in combinations(n, cfg.slow_quorum()) {
                min_overlap = min_overlap.min(fast.intersection(slow).len());
            }
        }
        prop_assert_eq!(min_overlap, cfg.recovery_threshold());
    }

    /// The `minimal_*` constructors are genuinely minimal: each
    /// satisfies its own bound, and one process fewer violates either
    /// that bound or the standing `n ≥ 2f + 1` assumption.
    #[test]
    fn minimal_configs_are_minimal(grid in 0usize..4) {
        let (e, f) = GRID[grid];
        let task = SystemConfig::minimal_task(e, f).unwrap();
        prop_assert!(task.satisfies_task_bound());
        let object = SystemConfig::minimal_object(e, f).unwrap();
        prop_assert!(object.satisfies_object_bound());
        let fp = SystemConfig::minimal_fast_paxos(e, f).unwrap();
        prop_assert!(fp.satisfies_fast_paxos_bound());
        prop_assert!(object.n() <= task.n() && task.n() <= fp.n());
        for (cfg, ok) in [
            (task, &SystemConfig::satisfies_task_bound as &dyn Fn(&SystemConfig) -> bool),
            (object, &SystemConfig::satisfies_object_bound),
            (fp, &SystemConfig::satisfies_fast_paxos_bound),
        ] {
            // An Err means n-1 already breaks n ≥ 2f+1 (or n ≥ 3).
            if let Ok(smaller) = SystemConfig::new(cfg.n() - 1, e, f) {
                prop_assert!(!ok(&smaller), "{cfg:?} is not minimal");
            }
        }
    }

    /// ProcessSet is a boolean algebra over the first n ids: De Morgan,
    /// absorption, difference-as-intersection-with-complement, and
    /// len/iter agreement.
    #[test]
    fn process_set_algebra(
        n in 3usize..33,
        a_bits in 0u64..u64::MAX,
        b_bits in 0u64..u64::MAX,
    ) {
        let a = subset_of(n, a_bits);
        let b = subset_of(n, b_bits);
        prop_assert_eq!(
            a.union(b).complement(n),
            a.complement(n).intersection(b.complement(n))
        );
        prop_assert_eq!(
            a.intersection(b).complement(n),
            a.complement(n).union(b.complement(n))
        );
        prop_assert_eq!(a.difference(b), a.intersection(b.complement(n)));
        prop_assert_eq!(a.union(a.intersection(b)), a);
        prop_assert_eq!(a.intersection(a.union(b)), a);
        prop_assert!(a.intersection(b).is_subset(a));
        prop_assert!(a.is_subset(a.union(b)));
        prop_assert_eq!(a.len() + b.len(), a.union(b).len() + a.intersection(b).len());
        prop_assert_eq!(a.iter().count(), a.len());
        prop_assert_eq!(a.min(), a.iter().next());
        // Round-trip through FromIterator.
        let rebuilt: ProcessSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
    }

    /// Insert and remove report whether they changed the set and keep
    /// membership consistent.
    #[test]
    fn process_set_insert_remove(n in 3usize..33, bits in 0u64..u64::MAX, i in 0u32..33) {
        prop_assume!((i as usize) < n);
        let mut s = subset_of(n, bits);
        let was_in = s.contains(p(i));
        prop_assert_eq!(s.insert(p(i)), !was_in);
        prop_assert!(s.contains(p(i)));
        prop_assert_eq!(s.remove(p(i)), true);
        prop_assert!(!s.contains(p(i)));
        prop_assert_eq!(s.remove(p(i)), false);
    }
}
