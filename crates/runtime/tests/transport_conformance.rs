//! Backend-agnostic transport conformance suite.
//!
//! One parameterized harness runs every scenario against all three
//! transport backends — in-memory channels, blocking TCP, and the
//! non-blocking reactor — pinning the contract the runtime node relies
//! on regardless of which backend a cluster deploys:
//!
//! * **Delivery**: every ordered `(sender, receiver)` pair works,
//!   self-sends included, with the correct sender identity attached.
//! * **FIFO per peer**: one sender's messages toward one receiver
//!   arrive in send order, whether sent singly or in bursts, and
//!   interleaved senders never corrupt each other's order.
//! * **Coalescing**: a [`Transport::send_many`] burst keeps message
//!   boundaries and order; consumers see individual messages by
//!   iterating frames in place ([`codec::frame_messages`] — the same
//!   normalization the runtime node performs on every inbox payload).
//! * **Shard-tag routing**: [`codec::tag_shard`] envelopes cross the
//!   wire byte-identically, nested inside coalesced frames, surviving
//!   the socket backends' partial reads.
//! * **Degenerate payloads**: empty and multi-hundred-KiB messages
//!   survive (the latter exercises the reactor's partial-write
//!   resumption and read-buffer growth).
//! * **Retry-once semantics** (socket backends): a send to a dead peer
//!   records exactly one drop per message after the single reconnect
//!   attempt; a live peer that tears down established connections is
//!   healed by redialing under load, observably (`reconnected`).
//!
//! The reconnect regression for the reactor's seeded single-drop case
//! lives here too: with a fault injected at a seed-chosen point in a
//! message stream, nothing is lost and order is preserved.

use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver};

use twostep_runtime::codec;
use twostep_runtime::{InMemoryTransport, ReactorTransport, TcpTransport, Transport};
use twostep_telemetry::{Metrics, ObserverHandle};
use twostep_types::ProcessId;

const RECV_TIMEOUT: Duration = Duration::from_secs(5);

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Memory,
    BlockingTcp,
    Reactor,
}

const ALL_BACKENDS: [Backend; 3] = [Backend::Memory, Backend::BlockingTcp, Backend::Reactor];
const SOCKET_BACKENDS: [Backend; 2] = [Backend::BlockingTcp, Backend::Reactor];

/// A deployed transport fabric: one handle and one inbox per process.
struct Deployment {
    transports: Vec<Box<dyn Transport>>,
    inboxes: Vec<Receiver<(ProcessId, Bytes)>>,
    /// Concrete reactor handles, for fault injection; empty slots on
    /// other backends.
    reactors: Vec<Option<ReactorTransport>>,
}

impl Deployment {
    fn send(&self, from: usize, to: usize, payload: &[u8]) {
        self.transports[from].send(p(from as u32), p(to as u32), Bytes::from(payload.to_vec()));
    }

    fn send_many(&self, from: usize, to: usize, payloads: Vec<Bytes>) {
        self.transports[from].send_many(p(from as u32), p(to as u32), payloads);
    }

    /// Receives at `node` until `n` individual messages have arrived,
    /// iterating coalesced frames in place — the consumer-side contract
    /// shared by every backend (and exactly what the runtime node does).
    fn recv_messages(&self, node: usize, n: usize) -> Vec<(ProcessId, Vec<u8>)> {
        let mut out = Vec::new();
        let deadline = Instant::now() + RECV_TIMEOUT;
        while out.len() < n {
            let left = deadline.saturating_duration_since(Instant::now());
            let (from, payload) = self.inboxes[node]
                .recv_timeout(left)
                .unwrap_or_else(|_| panic!("timed out with {}/{n} messages", out.len()));
            for m in codec::frame_messages(&payload).expect("malformed frame on the wire") {
                out.push((from, m.to_vec()));
            }
        }
        assert_eq!(out.len(), n, "trailing messages beyond the expected {n}");
        out
    }
}

/// Deploys `n` processes over `backend`, all reporting to `obs`.
fn deploy_observed(backend: Backend, n: usize, obs: &ObserverHandle) -> Deployment {
    match backend {
        Backend::Memory => {
            let (transport, inboxes) = InMemoryTransport::new(n);
            Deployment {
                transports: (0..n)
                    .map(|_| Box::new(transport.clone()) as Box<dyn Transport>)
                    .collect(),
                inboxes,
                reactors: (0..n).map(|_| None).collect(),
            }
        }
        Backend::BlockingTcp | Backend::Reactor => {
            let mut listeners = Vec::with_capacity(n);
            let mut addrs = Vec::with_capacity(n);
            for _ in 0..n {
                let (l, a) = TcpTransport::bind_ephemeral().expect("bind");
                listeners.push(l);
                addrs.push(a);
            }
            let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(n);
            let mut inboxes = Vec::with_capacity(n);
            let mut reactors = Vec::with_capacity(n);
            for (i, listener) in listeners.into_iter().enumerate() {
                let (tx, rx) = unbounded();
                match backend {
                    Backend::BlockingTcp => {
                        transports.push(Box::new(TcpTransport::spawn(
                            p(i as u32),
                            addrs.clone(),
                            listener,
                            tx,
                            obs.clone(),
                        )));
                        reactors.push(None);
                    }
                    Backend::Reactor => {
                        let t = ReactorTransport::spawn(
                            p(i as u32),
                            addrs.clone(),
                            listener,
                            tx,
                            obs.clone(),
                        )
                        .expect("spawn reactor");
                        transports.push(Box::new(t.clone()));
                        reactors.push(Some(t));
                    }
                    Backend::Memory => unreachable!(),
                }
                inboxes.push(rx);
            }
            Deployment {
                transports,
                inboxes,
                reactors,
            }
        }
    }
}

fn deploy(backend: Backend, n: usize) -> Deployment {
    deploy_observed(backend, n, &ObserverHandle::none())
}

#[test]
fn conformance_delivery_every_ordered_pair() {
    for backend in ALL_BACKENDS {
        let n = 3;
        let d = deploy(backend, n);
        for from in 0..n {
            for to in 0..n {
                d.send(from, to, format!("{from}->{to}").as_bytes());
            }
        }
        for to in 0..n {
            let mut got = d.recv_messages(to, n);
            got.sort();
            let want: Vec<(ProcessId, Vec<u8>)> = (0..n)
                .map(|from| (p(from as u32), format!("{from}->{to}").into_bytes()))
                .collect();
            assert_eq!(got, want, "{backend:?}: delivery to node {to}");
        }
    }
}

#[test]
fn conformance_fifo_per_peer_across_send_shapes() {
    for backend in ALL_BACKENDS {
        let d = deploy(backend, 2);
        // Mix single sends and bursts; sequence numbers must come out
        // strictly in order regardless of how flushes coalesce them.
        let mut seq = 0u32;
        while seq < 200 {
            if seq.is_multiple_of(3) {
                let burst: Vec<Bytes> = (0..5.min(200 - seq))
                    .map(|k| Bytes::from((seq + k).to_le_bytes().to_vec()))
                    .collect();
                seq += burst.len() as u32;
                d.send_many(0, 1, burst);
            } else {
                d.send(0, 1, &seq.to_le_bytes());
                seq += 1;
            }
        }
        let got = d.recv_messages(1, 200);
        for (i, (from, msg)) in got.iter().enumerate() {
            assert_eq!(*from, p(0));
            let got_seq = u32::from_le_bytes(msg[..4].try_into().unwrap());
            assert_eq!(
                got_seq, i as u32,
                "{backend:?}: message {i} arrived out of order"
            );
        }
    }
}

#[test]
fn conformance_interleaved_senders_keep_their_own_order() {
    for backend in ALL_BACKENDS {
        let n = 3;
        let d = deploy(backend, n);
        for seq in 0..100u32 {
            d.send(0, 1, &seq.to_le_bytes());
            d.send(2, 1, &seq.to_le_bytes());
        }
        let got = d.recv_messages(1, 200);
        let mut next = [0u32; 3];
        for (from, msg) in got {
            let seq = u32::from_le_bytes(msg[..4].try_into().unwrap());
            let f = from.index();
            assert_eq!(
                seq, next[f],
                "{backend:?}: sender {f} delivered out of order"
            );
            next[f] += 1;
        }
        assert_eq!(next, [100, 0, 100]);
    }
}

#[test]
fn conformance_burst_keeps_boundaries_and_order() {
    for backend in ALL_BACKENDS {
        let d = deploy(backend, 2);
        // Variable-size messages, including empty, in one burst.
        let burst: Vec<Bytes> = (0..17u8)
            .map(|i| Bytes::from(vec![i; i as usize]))
            .collect();
        d.send_many(0, 1, burst.clone());
        let got = d.recv_messages(1, burst.len());
        for (want, (from, msg)) in burst.iter().zip(&got) {
            assert_eq!(*from, p(0), "{backend:?}");
            assert_eq!(msg, &want.to_vec(), "{backend:?}: boundary corrupted");
        }
    }
}

#[test]
fn conformance_empty_and_large_payloads_survive() {
    for backend in ALL_BACKENDS {
        let d = deploy(backend, 2);
        d.send(0, 1, b"");
        // Large enough to force several partial writes and read-buffer
        // growth on the socket backends.
        let big: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        d.send(0, 1, &big);
        let got = d.recv_messages(1, 2);
        assert_eq!(got[0], (p(0), Vec::new()), "{backend:?}: empty payload");
        assert_eq!(got[1].1.len(), big.len(), "{backend:?}: large payload size");
        assert_eq!(got[1].1, big, "{backend:?}: large payload bytes");
    }
}

#[test]
fn conformance_shard_tags_survive_transit_byte_identically() {
    for backend in ALL_BACKENDS {
        let d = deploy(backend, 2);
        let shards = [0u32, 1, 7, 4096, u32::MAX];
        let burst: Vec<Bytes> = shards
            .iter()
            .map(|&s| {
                let inner = Bytes::from(format!("shard-{s}-payload").into_bytes());
                codec::tag_shard(s, &inner)
            })
            .collect();
        d.send_many(0, 1, burst.clone());
        let got = d.recv_messages(1, shards.len());
        for (i, (&want_shard, (_, msg))) in shards.iter().zip(&got).enumerate() {
            assert_eq!(
                msg,
                &burst[i].to_vec(),
                "{backend:?}: envelope bytes changed"
            );
            let (shard, inner) = codec::split_shard_ref(msg).expect("tagged envelope");
            assert_eq!(shard, want_shard, "{backend:?}: shard id corrupted");
            assert_eq!(
                inner,
                format!("shard-{want_shard}-payload").as_bytes(),
                "{backend:?}: inner payload corrupted"
            );
        }
    }
}

#[test]
fn conformance_untagged_payloads_route_to_shard_zero() {
    for backend in ALL_BACKENDS {
        let d = deploy(backend, 2);
        d.send(0, 1, b"legacy untagged");
        let got = d.recv_messages(1, 1);
        let (shard, inner) = codec::split_shard_ref(&got[0].1).unwrap();
        assert_eq!(
            (shard, inner),
            (0, &b"legacy untagged"[..]),
            "{backend:?}: legacy payload must read back as shard 0"
        );
    }
}

#[test]
fn conformance_dead_peer_costs_one_drop_per_message_after_one_retry() {
    for backend in SOCKET_BACKENDS {
        let (metrics, obs) = Metrics::shared();
        // Deploy 2 processes but kill peer 1's listener before anyone
        // dials it: both socket backends must record exactly one drop
        // per message after the single reconnect attempt.
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        drop(l1);
        let (tx0, _rx0) = unbounded();
        let transport: Box<dyn Transport> = match backend {
            Backend::BlockingTcp => Box::new(TcpTransport::spawn(
                p(0),
                vec![a0, a1],
                l0,
                tx0,
                obs.clone(),
            )),
            Backend::Reactor => {
                Box::new(ReactorTransport::spawn(p(0), vec![a0, a1], l0, tx0, obs.clone()).unwrap())
            }
            Backend::Memory => unreachable!(),
        };
        transport.send_many(
            p(0),
            p(1),
            vec![Bytes::from_static(b"x"), Bytes::from_static(b"y")],
        );
        let deadline = Instant::now() + RECV_TIMEOUT;
        loop {
            let snap = metrics.snapshot();
            if snap.dropped >= 2 {
                assert_eq!(snap.dropped, 2, "{backend:?}: one drop per message");
                assert_eq!(snap.reconnects, 0, "{backend:?}: nothing to reconnect to");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{backend:?}: drops never recorded (got {})",
                snap.dropped
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

#[test]
fn conformance_reconnect_heals_under_load() {
    for backend in SOCKET_BACKENDS {
        let (metrics, obs) = Metrics::shared();
        let d = deploy_observed(backend, 2, &obs);
        match backend {
            Backend::BlockingTcp => {
                // Established connections to peer 1 are torn down as
                // soon as its (dropped) inbox rejects a delivery; the
                // sender's writer must redial and record the heal.
                drop(d.inboxes.into_iter().nth(1));
                let deadline = Instant::now() + RECV_TIMEOUT;
                loop {
                    d.transports[0].send(p(0), p(1), Bytes::from_static(b"probe"));
                    if metrics.snapshot().reconnects > 0 {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "blocking tcp: no reconnect recorded under load"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Backend::Reactor => {
                // Inject connection failures mid-stream; every message
                // must still arrive, in order, with heals recorded.
                let reactor = d.reactors[0].as_ref().unwrap();
                for seq in 0..100u32 {
                    if seq % 25 == 10 {
                        reactor.inject_write_failure(p(1));
                    }
                    d.send(0, 1, &seq.to_le_bytes());
                }
                let got = d.recv_messages(1, 100);
                for (i, (_, msg)) in got.iter().enumerate() {
                    let seq = u32::from_le_bytes(msg[..4].try_into().unwrap());
                    assert_eq!(seq, i as u32, "reactor: lost or reordered under faults");
                }
                let snap = metrics.snapshot();
                assert!(
                    snap.reconnects > 0,
                    "reactor: injected failures never healed"
                );
                assert_eq!(snap.dropped, 0, "reactor: single faults must not drop");
            }
            Backend::Memory => unreachable!(),
        }
    }
}

/// Seeded reconnect regression: one injected connection drop at a
/// seed-chosen point in a 200-message stream loses nothing and keeps
/// order. Pins the retry-once backoff fix on the reactor path — before
/// it, the in-flight frame died with the connection.
#[test]
fn reactor_seeded_single_drop_loses_no_messages() {
    // Deterministic LCG over the documented seed; change the seed and
    // the injection point moves, the property must hold regardless.
    const SEED: u64 = 0xD1CE_2025;
    let inject_at = {
        let next = SEED
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (next >> 33) % 200
    };
    let (metrics, obs) = Metrics::shared();
    let d = deploy_observed(Backend::Reactor, 2, &obs);
    let reactor = d.reactors[0].as_ref().unwrap();
    for seq in 0..200u64 {
        if seq == inject_at {
            reactor.inject_write_failure(p(1));
        }
        d.send(0, 1, &seq.to_le_bytes());
    }
    let got = d.recv_messages(1, 200);
    for (i, (from, msg)) in got.iter().enumerate() {
        assert_eq!(*from, p(0));
        let seq = u64::from_le_bytes(msg[..8].try_into().unwrap());
        assert_eq!(
            seq, i as u64,
            "message lost or reordered around the injected drop at {inject_at}"
        );
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.dropped, 0, "a single drop must never lose messages");
    assert!(snap.reconnects > 0, "the injected drop was never exercised");
}
