//! Property tests for the wire codec: arbitrary values roundtrip, and
//! the encoding is stable (same value ⇒ same bytes — required because
//! the manual executor hashes message payloads).

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use twostep_runtime::codec::{from_bytes, to_bytes};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf,
    Num(i64),
    Text(String),
    Pair(Box<Node>, Box<Node>),
    Many(Vec<Node>),
    Map(BTreeMap<String, u64>),
    Struct {
        flag: bool,
        opt: Option<u32>,
        bytes: Vec<u8>,
    },
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        Just(Node::Leaf),
        any::<i64>().prop_map(Node::Num),
        "[a-zA-Zα-ω0-9 ]{0,12}".prop_map(Node::Text),
        (
            any::<bool>(),
            proptest::option::of(any::<u32>()),
            proptest::collection::vec(any::<u8>(), 0..8)
        )
            .prop_map(|(flag, opt, bytes)| Node::Struct { flag, opt, bytes }),
        proptest::collection::btree_map("[a-z]{1,4}", any::<u64>(), 0..4).prop_map(Node::Map),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Pair(Box::new(a), Box::new(b))),
            proptest::collection::vec(inner, 0..4).prop_map(Node::Many),
        ]
    })
}

proptest! {
    #[test]
    fn arbitrary_values_roundtrip(node in node_strategy()) {
        let bytes = to_bytes(&node).expect("encode");
        let back: Node = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, node);
    }

    #[test]
    fn encoding_is_deterministic(node in node_strategy()) {
        let a = to_bytes(&node).unwrap();
        let b = to_bytes(&node.clone()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn protocol_messages_roundtrip(
        bal in 0u64..1000,
        vbal in 0u64..1000,
        val in proptest::option::of(any::<u64>()),
        proposer in proptest::option::of(0u32..16),
        decided in proptest::option::of(any::<u64>()),
    ) {
        use twostep_core::Msg;
        use twostep_types::{Ballot, ProcessId};

        let msgs: Vec<Msg<u64>> = vec![
            Msg::Propose(val.unwrap_or(0)),
            Msg::OneA(Ballot::new(bal)),
            Msg::OneB {
                bal: Ballot::new(bal),
                vbal: Ballot::new(vbal),
                val,
                proposer: proposer.map(ProcessId::new),
                decided,
            },
            Msg::TwoA(Ballot::new(bal), val.unwrap_or(1)),
            Msg::TwoB(Ballot::new(vbal), val.unwrap_or(2)),
            Msg::Decide(decided.unwrap_or(3)),
            Msg::Heartbeat,
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            let back: Msg<u64> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, m);
        }
    }

    #[test]
    fn smr_messages_roundtrip(slot in 0u64..10_000, key in "[a-z]{1,8}", value in "[a-z]{0,8}") {
        use twostep_core::Msg;
        use twostep_smr::{Batch, KvCommand, SmrMsg};

        let msgs: Vec<SmrMsg<KvCommand>> = vec![
            SmrMsg::Beacon,
            SmrMsg::Slot(
                slot,
                Msg::Propose(Batch::new(vec![
                    KvCommand::put(key.clone(), value.clone()),
                    KvCommand::delete(key.clone()),
                ])),
            ),
            SmrMsg::Slot(slot, Msg::Decide(Batch::single(KvCommand::delete(key)))),
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            let back: SmrMsg<KvCommand> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, m);
        }
    }

    /// Multi-message frames roundtrip: packing any list of encoded
    /// messages and unpacking yields the same payloads in order.
    #[test]
    fn multi_message_frames_roundtrip(nodes in proptest::collection::vec(node_strategy(), 1..8)) {
        use twostep_runtime::codec::{pack_frame, unpack_frame};

        let payloads: Vec<bytes::Bytes> = nodes
            .iter()
            .map(|n| bytes::Bytes::from(to_bytes(n).unwrap()))
            .collect();
        let frame = pack_frame(&payloads);
        let back = unpack_frame(&frame).expect("packed frame must unpack");
        prop_assert_eq!(back.len(), nodes.len());
        for (bytes, node) in back.iter().zip(&nodes) {
            let decoded: Node = from_bytes(bytes.as_slice()).expect("decode");
            prop_assert_eq!(&decoded, node);
        }
    }

    /// Truncating a packed frame anywhere past the magic word is
    /// rejected cleanly (no panic, no partial delivery).
    #[test]
    fn truncated_frames_rejected(nodes in proptest::collection::vec(node_strategy(), 1..5), cut in 4usize..2048) {
        use twostep_runtime::codec::unpack_frame;

        let payloads: Vec<bytes::Bytes> = nodes
            .iter()
            .map(|n| bytes::Bytes::from(to_bytes(n).unwrap()))
            .collect();
        let frame = twostep_runtime::codec::pack_frame(&payloads);
        let cut = cut.min(frame.len().saturating_sub(1));
        let truncated = bytes::Bytes::from(frame.as_slice()[..cut].to_vec());
        prop_assert!(unpack_frame(&truncated).is_err(), "cut at {} must error", cut);
    }

    /// Truncating any strict prefix of an encoding never panics — it
    /// either decodes to a (different) value by coincidence or errors
    /// cleanly. (Robustness of the TCP frame handler.)
    #[test]
    fn truncated_input_never_panics(node in node_strategy(), cut in 0usize..64) {
        let bytes = to_bytes(&node).unwrap();
        let cut = cut.min(bytes.len());
        let _ = from_bytes::<Node>(&bytes[..cut]); // must not panic
    }
}

// ---------------------------------------------------------------------
// Zero-copy receive path: the borrowing frame iterator and the reusable
// read-reassembly buffer the reactor drives. These pin the properties
// the per-message-allocation-free hot path depends on.
// ---------------------------------------------------------------------

/// A frame payload as a transport would flush it: one message uses the
/// legacy unframed layout, several coalesce under [`FRAME_MAGIC`].
fn flush_payload(msgs: &[Vec<u8>]) -> Vec<u8> {
    use twostep_runtime::codec::pack_frame;
    match msgs {
        [single] => single.clone(),
        many => {
            let owned: Vec<bytes::Bytes> =
                many.iter().map(|m| bytes::Bytes::from(m.clone())).collect();
            pack_frame(&owned).to_vec()
        }
    }
}

/// Messages that cannot be mistaken for a coalesced frame (a legacy
/// single-message flush is passed through verbatim, so a message that
/// itself starts with [`FRAME_MAGIC`] would be re-parsed — the real
/// transports never produce one: every protocol payload is a postcard
/// encoding or a [`SHARD_MAGIC`] envelope).
fn legacy_safe_message() -> impl Strategy<Value = Vec<u8>> {
    use twostep_runtime::codec::FRAME_MAGIC;
    proptest::collection::vec(any::<u8>(), 0..80).prop_map(|mut m| {
        if m.len() >= 4 && m[..4] == FRAME_MAGIC.to_le_bytes() {
            m[0] ^= 1; // break the accidental magic collision
        }
        m
    })
}

proptest! {
    /// The borrowing iterator agrees with the allocating
    /// `unpack_frame` on every packed frame, and on legacy payloads it
    /// yields the input verbatim as a single message.
    #[test]
    fn frame_messages_agrees_with_unpack_frame(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        use twostep_runtime::codec::{frame_messages, pack_frame, unpack_frame};

        let owned: Vec<bytes::Bytes> =
            msgs.iter().map(|m| bytes::Bytes::from(m.clone())).collect();
        let frame = pack_frame(&owned);
        let alloc: Vec<Vec<u8>> = unpack_frame(&frame)
            .unwrap()
            .iter()
            .map(|b| b.to_vec())
            .collect();
        let borrowed: Vec<Vec<u8>> = frame_messages(&frame)
            .unwrap()
            .map(<[u8]>::to_vec)
            .collect();
        prop_assert_eq!(&borrowed, &alloc);
        prop_assert_eq!(&borrowed, &msgs);
    }

    /// Legacy (untagged, unframed) payloads pass through both
    /// zero-copy entry points untouched: one message, shard 0, and the
    /// returned slice is the input itself.
    #[test]
    fn legacy_payloads_pass_through_untouched(msg in legacy_safe_message()) {
        use twostep_runtime::codec::{frame_messages, split_shard_ref, SHARD_MAGIC};

        let out: Vec<&[u8]> = frame_messages(&msg).unwrap().collect();
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0], &msg[..]);

        // Shard routing: anything not carrying the shard magic reads
        // back as shard 0 with the payload intact.
        if msg.len() < 8 || msg[..4] != SHARD_MAGIC.to_le_bytes() {
            let (shard, inner) = split_shard_ref(&msg).unwrap();
            prop_assert_eq!(shard, 0);
            prop_assert_eq!(inner, &msg[..]);
        }
    }

    /// Feeding a stream of flushes through the reusable read buffer in
    /// arbitrarily-sized readiness chunks recovers every frame — and
    /// every message inside every frame — byte-identically, no matter
    /// where the chunk boundaries fall.
    #[test]
    fn assembler_recovers_messages_under_arbitrary_chunking(
        flushes in proptest::collection::vec(
            proptest::collection::vec(legacy_safe_message(), 1..5),
            1..6,
        ),
        chunks in proptest::collection::vec(1usize..48, 1..12),
    ) {
        use twostep_runtime::codec::{frame_messages, FrameAssembler};

        // Wire stream: [len][flush payload] per flush, concatenated.
        let mut wire = Vec::new();
        for msgs in &flushes {
            let payload = flush_payload(msgs);
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(&payload);
        }

        // Feed the wire in chunks whose sizes cycle through `chunks`,
        // draining completed frames into individual messages as the
        // reactor does on each readiness event.
        let mut asm = FrameAssembler::with_capacity(8);
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut offset = 0;
        let mut turn = 0;
        while offset < wire.len() {
            let take = chunks[turn % chunks.len()].min(wire.len() - offset);
            turn += 1;
            let slot = asm.read_slot(take);
            slot[..take].copy_from_slice(&wire[offset..offset + take]);
            asm.commit(take);
            offset += take;
            while let Some(frame) = asm.next_frame() {
                for m in frame_messages(frame).expect("reassembled frame must parse") {
                    got.push(m.to_vec());
                }
            }
        }

        let want: Vec<Vec<u8>> = flushes.into_iter().flatten().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(asm.buffered(), 0, "no bytes may linger after a whole stream");
    }

    /// Buffer reuse never leaks: after draining one frame, the next
    /// frame's bytes are exactly its own even when it is smaller than
    /// (and physically overlaps) its predecessor's slot in the buffer.
    #[test]
    fn assembler_reuse_never_leaks_previous_frames(
        first in proptest::collection::vec(any::<u8>(), 64..256),
        second in proptest::collection::vec(any::<u8>(), 0..64),
        chunk in 1usize..32,
    ) {
        use twostep_runtime::codec::FrameAssembler;

        let mut wire = Vec::new();
        for p in [&first, &second] {
            wire.extend_from_slice(&(p.len() as u32).to_le_bytes());
            wire.extend_from_slice(p);
        }

        let mut asm = FrameAssembler::with_capacity(8);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for piece in wire.chunks(chunk) {
            let slot = asm.read_slot(piece.len());
            slot[..piece.len()].copy_from_slice(piece);
            asm.commit(piece.len());
            while let Some(frame) = asm.next_frame() {
                frames.push(frame.to_vec());
            }
        }
        prop_assert_eq!(frames.len(), 2);
        prop_assert_eq!(&frames[0], &first);
        prop_assert_eq!(&frames[1], &second, "stale bytes leaked into the second frame");
    }
}
