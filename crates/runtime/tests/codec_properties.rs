//! Property tests for the wire codec: arbitrary values roundtrip, and
//! the encoding is stable (same value ⇒ same bytes — required because
//! the manual executor hashes message payloads).

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use twostep_runtime::codec::{from_bytes, to_bytes};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf,
    Num(i64),
    Text(String),
    Pair(Box<Node>, Box<Node>),
    Many(Vec<Node>),
    Map(BTreeMap<String, u64>),
    Struct {
        flag: bool,
        opt: Option<u32>,
        bytes: Vec<u8>,
    },
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        Just(Node::Leaf),
        any::<i64>().prop_map(Node::Num),
        "[a-zA-Zα-ω0-9 ]{0,12}".prop_map(Node::Text),
        (
            any::<bool>(),
            proptest::option::of(any::<u32>()),
            proptest::collection::vec(any::<u8>(), 0..8)
        )
            .prop_map(|(flag, opt, bytes)| Node::Struct { flag, opt, bytes }),
        proptest::collection::btree_map("[a-z]{1,4}", any::<u64>(), 0..4).prop_map(Node::Map),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Node::Pair(Box::new(a), Box::new(b))),
            proptest::collection::vec(inner, 0..4).prop_map(Node::Many),
        ]
    })
}

proptest! {
    #[test]
    fn arbitrary_values_roundtrip(node in node_strategy()) {
        let bytes = to_bytes(&node).expect("encode");
        let back: Node = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, node);
    }

    #[test]
    fn encoding_is_deterministic(node in node_strategy()) {
        let a = to_bytes(&node).unwrap();
        let b = to_bytes(&node.clone()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn protocol_messages_roundtrip(
        bal in 0u64..1000,
        vbal in 0u64..1000,
        val in proptest::option::of(any::<u64>()),
        proposer in proptest::option::of(0u32..16),
        decided in proptest::option::of(any::<u64>()),
    ) {
        use twostep_core::Msg;
        use twostep_types::{Ballot, ProcessId};

        let msgs: Vec<Msg<u64>> = vec![
            Msg::Propose(val.unwrap_or(0)),
            Msg::OneA(Ballot::new(bal)),
            Msg::OneB {
                bal: Ballot::new(bal),
                vbal: Ballot::new(vbal),
                val,
                proposer: proposer.map(ProcessId::new),
                decided,
            },
            Msg::TwoA(Ballot::new(bal), val.unwrap_or(1)),
            Msg::TwoB(Ballot::new(vbal), val.unwrap_or(2)),
            Msg::Decide(decided.unwrap_or(3)),
            Msg::Heartbeat,
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            let back: Msg<u64> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, m);
        }
    }

    #[test]
    fn smr_messages_roundtrip(slot in 0u64..10_000, key in "[a-z]{1,8}", value in "[a-z]{0,8}") {
        use twostep_core::Msg;
        use twostep_smr::{Batch, KvCommand, SmrMsg};

        let msgs: Vec<SmrMsg<KvCommand>> = vec![
            SmrMsg::Beacon,
            SmrMsg::Slot(
                slot,
                Msg::Propose(Batch::new(vec![
                    KvCommand::put(key.clone(), value.clone()),
                    KvCommand::delete(key.clone()),
                ])),
            ),
            SmrMsg::Slot(slot, Msg::Decide(Batch::single(KvCommand::delete(key)))),
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            let back: SmrMsg<KvCommand> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, m);
        }
    }

    /// Multi-message frames roundtrip: packing any list of encoded
    /// messages and unpacking yields the same payloads in order.
    #[test]
    fn multi_message_frames_roundtrip(nodes in proptest::collection::vec(node_strategy(), 1..8)) {
        use twostep_runtime::codec::{pack_frame, unpack_frame};

        let payloads: Vec<bytes::Bytes> = nodes
            .iter()
            .map(|n| bytes::Bytes::from(to_bytes(n).unwrap()))
            .collect();
        let frame = pack_frame(&payloads);
        let back = unpack_frame(&frame).expect("packed frame must unpack");
        prop_assert_eq!(back.len(), nodes.len());
        for (bytes, node) in back.iter().zip(&nodes) {
            let decoded: Node = from_bytes(bytes.as_slice()).expect("decode");
            prop_assert_eq!(&decoded, node);
        }
    }

    /// Truncating a packed frame anywhere past the magic word is
    /// rejected cleanly (no panic, no partial delivery).
    #[test]
    fn truncated_frames_rejected(nodes in proptest::collection::vec(node_strategy(), 1..5), cut in 4usize..2048) {
        use twostep_runtime::codec::unpack_frame;

        let payloads: Vec<bytes::Bytes> = nodes
            .iter()
            .map(|n| bytes::Bytes::from(to_bytes(n).unwrap()))
            .collect();
        let frame = twostep_runtime::codec::pack_frame(&payloads);
        let cut = cut.min(frame.len().saturating_sub(1));
        let truncated = bytes::Bytes::from(frame.as_slice()[..cut].to_vec());
        prop_assert!(unpack_frame(&truncated).is_err(), "cut at {} must error", cut);
    }

    /// Truncating any strict prefix of an encoding never panics — it
    /// either decodes to a (different) value by coincidence or errors
    /// cleanly. (Robustness of the TCP frame handler.)
    #[test]
    fn truncated_input_never_panics(node in node_strategy(), cut in 0usize..64) {
        let bytes = to_bytes(&node).unwrap();
        let cut = cut.min(bytes.len());
        let _ = from_bytes::<Node>(&bytes[..cut]); // must not panic
    }
}
