//! Property tests for the key→shard router.
//!
//! The router is the sharded cluster's correctness linchpin: if a key
//! ever routed to two different shards, its operations would split
//! across two logs and per-key linearizability would silently vanish.
//! These properties pin down the three guarantees the rest of the
//! system assumes:
//!
//! * **total** — every byte string maps to a shard in range, for every
//!   shard count;
//! * **stable** — the map is a pure function of the key bytes (same key
//!   → same shard, across router instances and across calls), and
//!   derived from the documented `fnv1a64(key) % shards` formula;
//! * **balanced** — a chi-squared bound over 10k generated keys keeps
//!   FNV-1a honest about spreading realistic key populations.

use proptest::prelude::*;
use twostep_runtime::{fnv1a64, ShardRouter};
use twostep_smr::{KvCommand, Routable};

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality: any key, any shard count 1..=64, the route lands in
    /// `[0, shards)`.
    #[test]
    fn route_is_total_and_in_range(key in key_strategy(), shards in 1usize..=64) {
        let router = ShardRouter::new(shards);
        let shard = router.route(&key);
        prop_assert!(
            (shard as usize) < shards,
            "key {key:?} routed to shard {shard} of {shards}"
        );
    }

    /// Stability: the route is a pure function of the key bytes — equal
    /// across repeated calls, across independently constructed routers,
    /// and equal to the documented hash-mod formula.
    #[test]
    fn route_is_stable_and_matches_the_formula(key in key_strategy(), shards in 1usize..=64) {
        let router = ShardRouter::new(shards);
        let first = router.route(&key);
        prop_assert_eq!(first, router.route(&key));
        prop_assert_eq!(first, ShardRouter::new(shards).route(&key));
        prop_assert_eq!(u64::from(first), fnv1a64(&key) % shards as u64);
    }

    /// Every operation on one key lands in one group: a put, an
    /// overwrite and a delete of the same key all share a shard, so the
    /// key's history lives in a single log.
    #[test]
    fn same_key_operations_share_a_shard(key in "[a-z0-9/:-]{1,24}", shards in 1usize..=16) {
        let router = ShardRouter::new(shards);
        let put = KvCommand::put(key.as_str(), "v1");
        let overwrite = KvCommand::put(key.as_str(), "v2");
        let delete = KvCommand::delete(key.as_str());
        let home = router.route(put.route_key().as_ref());
        prop_assert_eq!(home, router.route(overwrite.route_key().as_ref()));
        prop_assert_eq!(home, router.route(delete.route_key().as_ref()));
    }
}

/// Balance: chi-squared goodness-of-fit of 10k keys against the uniform
/// distribution over 8 shards. The keys mix the workloads the examples
/// and benches actually generate (structured `c{client}-{seq}` command
/// keys, short `user:{id}` keys) with raw random bytes. At 7 degrees of
/// freedom the 99.9th percentile of chi-squared is ~24.3; the bound of
/// 66 (p < 1e-11) is deliberately loose so only a systematic skew —
/// not an unlucky sample — can trip it. The key streams are
/// deterministic, so in practice the statistic is a fixed number and
/// the test cannot flake.
#[test]
fn router_balances_ten_thousand_keys_chi_squared() {
    const SHARDS: usize = 8;
    const KEYS: usize = 10_000;
    let router = ShardRouter::new(SHARDS);

    // SplitMix64 for the random-bytes third of the population:
    // deterministic, and structurally unrelated to FNV-1a.
    let mut state = 0x5EED_CAFE_F00D_D00Du64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut counts = [0u64; SHARDS];
    for i in 0..KEYS {
        let key: Vec<u8> = match i % 3 {
            0 => format!("c{}-{}", i % 32, i / 32).into_bytes(),
            1 => format!("user:{:08}", i).into_bytes(),
            _ => {
                let len = 1 + (next() % 32) as usize;
                (0..len).map(|_| next() as u8).collect()
            }
        };
        counts[router.route(&key) as usize] += 1;
    }

    let expected = (KEYS / SHARDS) as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    assert!(
        chi2 < 66.0,
        "router is skewed: chi-squared {chi2:.2} over counts {counts:?}"
    );
    assert!(
        counts.iter().all(|&c| c > 0),
        "some shard saw no keys at all: {counts:?}"
    );
}
