//! Allocation pin for the zero-copy receive hot path.
//!
//! The reactor's steady state processes each readiness event with a
//! reusable [`FrameAssembler`] and iterates coalesced frames in place
//! with [`frame_messages`] / [`split_shard_ref`]. This binary installs
//! a counting global allocator and asserts that, once the read buffer
//! has reached its high-water capacity, that whole per-message path
//! performs **zero** heap allocations — the property the e12/e13
//! throughput gains rest on. (The per-*flush* `Bytes` handed to the
//! inbox is the one deliberate allocation left; it is outside the
//! per-message loop and not measured here.)
//!
//! Lives in its own integration-test binary because a global allocator
//! is process-wide: the counter must not see other tests' traffic, and
//! the runtime lib itself is `#![forbid(unsafe_code)]` — the allocator
//! shim below is the one place this crate's tests need `unsafe`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use twostep_runtime::codec::{
    frame_messages, pack_frame, split_shard_ref, tag_shard, FrameAssembler,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One test function so nothing else runs concurrently in this process
/// while the counter is being read.
#[test]
fn steady_state_receive_path_allocates_nothing_per_message() {
    // A realistic flush: 32 shard-tagged messages coalesced into one
    // FRAME_MAGIC frame, shipped as one `[len][payload]` wire frame.
    let msgs: Vec<bytes::Bytes> = (0..32u32)
        .map(|i| tag_shard(i % 8, &bytes::Bytes::from(vec![i as u8; 40])))
        .collect();
    let frame = pack_frame(&msgs);
    let mut wire = Vec::new();
    wire.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    wire.extend_from_slice(frame.as_slice());

    let mut asm = FrameAssembler::new();
    let mut sink = 0u64;

    let round = |asm: &mut FrameAssembler, sink: &mut u64| {
        // Feed the wire in fixed-size chunks, as consecutive readiness
        // events would, and walk every message of every frame.
        for piece in wire.chunks(1024) {
            let slot = asm.read_slot(piece.len());
            slot[..piece.len()].copy_from_slice(piece);
            asm.commit(piece.len());
            while let Some(frame) = asm.next_frame() {
                for m in frame_messages(frame).expect("frame parses") {
                    let (shard, inner) = split_shard_ref(m).expect("envelope parses");
                    *sink += shard as u64 + inner.len() as u64;
                }
            }
        }
    };

    // Warm-up: lets the assembler grow to its high-water capacity.
    round(&mut asm, &mut sink);
    let high_water = asm.capacity();

    // Steady state: the same traffic shape must be allocation-free.
    let during = allocations(|| {
        for _ in 0..100 {
            round(&mut asm, &mut sink);
        }
    });
    assert_eq!(
        during, 0,
        "receive hot path allocated {during} times across 100 steady-state rounds"
    );
    assert_eq!(
        asm.capacity(),
        high_water,
        "read buffer must stop growing at its high-water mark"
    );
    assert!(
        sink > 0,
        "sink must observe every message (not optimized out)"
    );
}
