//! Sharded deployments: many independent consensus groups, one cluster.
//!
//! A [`ShardedCluster`] hash-partitions the key space across `k`
//! independent replica groups. Every physical node hosts one replica of
//! *every* group, multiplexed on one OS thread and one transport
//! endpoint (see [`spawn_sharded_node`]);
//! wire traffic is demultiplexed by the
//! [`codec::tag_shard`](crate::codec::tag_shard) envelope.
//! Each group's Ω scans a rotated preference order so the group leaders
//! — and with them the fast-path proposal load — spread round-robin
//! across the nodes: shard `s` is led by node `s mod n`.
//!
//! Per-key operations stay totally ordered (same key → same group, one
//! log), while distinct keys in distinct groups commit concurrently —
//! the standard partitioning argument, which preserves each group's
//! `2e+f` fast-path quorum economics unchanged.

use std::sync::Arc;
use std::time::{Duration as WallDuration, Instant};

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::cluster::ClusterShared;
use crate::node::{spawn_sharded_node, NodeHandle, NodeOptions};
use crate::proxy::{ProxyClient, RouteFn};
use crate::transport::{delayed_inbox, InMemoryTransport, SocketBackend, TcpTransport};
use crate::RuntimeError;

/// Wall-clock knobs of an in-memory deployment: the duration of one
/// protocol `Δ` and the emulated one-way link latency (zero = instant
/// links).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Timing {
    pub wall_delta: WallDuration,
    pub link_delay: WallDuration,
}

/// Observer handles of a sharded deployment: one cluster-wide handle
/// plus one rollup handle per shard.
#[derive(Clone)]
pub(crate) struct Observers {
    pub cluster: ObserverHandle,
    pub shards: Vec<ObserverHandle>,
}

/// 64-bit FNV-1a over `bytes` — the router's key hash.
///
/// Chosen for being dependency-free, fast on short keys, and stable: a
/// key's shard must never change across builds or platforms, because a
/// resharded key would split its history across two logs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The key→shard map: `shard(key) = fnv1a64(key) mod shards`.
///
/// Total (every byte string maps somewhere), stable (pure function of
/// the bytes) and balanced (FNV-1a spreads short keys well; the router
/// proptests pin a chi-squared bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` groups.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds `u32::MAX`.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a cluster has at least one shard");
        let shards = u32::try_from(shards).expect("shard count fits u32");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard `key` routes to.
    pub fn route(&self, key: &[u8]) -> u32 {
        (fnv1a64(key) % u64::from(self.shards)) as u32
    }
}

/// A running sharded deployment: `n` nodes × `k` consensus groups.
///
/// Construct with
/// [`ClusterBuilder::shards`](crate::ClusterBuilder::shards) followed by
/// [`build_sharded_smr`](crate::ClusterBuilder::build_sharded_smr).
///
/// ```rust
/// use std::time::Duration;
/// use twostep_runtime::ClusterBuilder;
/// use twostep_smr::{KvCommand, KvStore};
/// use twostep_types::SystemConfig;
///
/// let cfg = SystemConfig::minimal_object(1, 1)?;
/// let cluster = ClusterBuilder::new(cfg)
///     .shards(4)
///     .wall_delta(Duration::from_millis(5))
///     .build_sharded_smr::<KvCommand, KvStore>()
///     .expect("in-memory build cannot fail");
/// let client = cluster.client();
/// client.submit_and_wait(KvCommand::put("k", "v"), Duration::from_secs(10));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
pub struct ShardedCluster<V: Value> {
    cfg: SystemConfig,
    router: ShardRouter,
    nodes: Vec<NodeHandle<V>>,
    shared: Arc<ClusterShared<V>>,
    route: RouteFn<V>,
    obs: ObserverHandle,
    started: Instant,
}

impl<V: Value> ShardedCluster<V> {
    fn assemble(
        cfg: SystemConfig,
        router: ShardRouter,
        nodes: Vec<NodeHandle<V>>,
        decisions: crossbeam::channel::Receiver<(ProcessId, u32, V, Instant)>,
        route: RouteFn<V>,
        obs: ObserverHandle,
    ) -> Self {
        let shared = ClusterShared::new(router.shards(), cfg.n());
        shared.spawn_router(decisions);
        ShardedCluster {
            cfg,
            router,
            nodes,
            shared,
            route,
            obs,
            started: Instant::now(),
        }
    }

    /// Spawns a sharded cluster over the in-memory transport: node `p`
    /// hosts `make(p, s)` for every shard `s`.
    pub(crate) fn assemble_in_memory<P, F>(
        cfg: SystemConfig,
        router: ShardRouter,
        timing: Timing,
        mut make: F,
        route: RouteFn<V>,
        observers: Observers,
    ) -> Self
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId, u32) -> P,
    {
        let n = cfg.n();
        let (transport, inboxes) = InMemoryTransport::with_delay(n, timing.link_delay);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut nodes = Vec::with_capacity(n);
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let p = ProcessId::new(i as u32);
            let instances = (0..router.shards() as u32).map(|s| make(p, s)).collect();
            nodes.push(spawn_sharded_node(
                instances,
                inbox,
                transport.clone(),
                NodeOptions::new(dtx.clone())
                    .wall_delta(timing.wall_delta)
                    .observed(observers.cluster.clone())
                    .shard_observed(observers.shards.clone()),
            ));
        }
        drop(dtx);
        Self::assemble(cfg, router, nodes, drx, route, observers.cluster)
    }

    /// Spawns a sharded cluster over localhost sockets — blocking TCP
    /// or the reactor, per `backend`. A non-zero `timing.link_delay`
    /// holds every received payload for that duration before the node
    /// sees it (shard-tag envelopes included), matching the in-memory
    /// transport's emulated link latency.
    pub(crate) fn assemble_sockets<P, F>(
        cfg: SystemConfig,
        router: ShardRouter,
        timing: Timing,
        backend: SocketBackend,
        mut make: F,
        route: RouteFn<V>,
        observers: Observers,
    ) -> Result<Self, RuntimeError>
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId, u32) -> P,
    {
        let n = cfg.n();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let (listener, addr) = TcpTransport::bind_ephemeral()?;
            listeners.push(listener);
            addrs.push(addr);
        }
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut nodes = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let p = ProcessId::new(i as u32);
            let (inbox_tx, inbox_rx) = crossbeam::channel::unbounded();
            let inbox_tx = delayed_inbox(timing.link_delay, inbox_tx);
            let transport = backend.spawn(
                p,
                addrs.clone(),
                listener,
                inbox_tx,
                observers.cluster.clone(),
            )?;
            let instances = (0..router.shards() as u32).map(|s| make(p, s)).collect();
            nodes.push(spawn_sharded_node(
                instances,
                inbox_rx,
                transport,
                NodeOptions::new(dtx.clone())
                    .wall_delta(timing.wall_delta)
                    .observed(observers.cluster.clone())
                    .shard_observed(observers.shards.clone()),
            ));
        }
        drop(dtx);
        Ok(Self::assemble(
            cfg,
            router,
            nodes,
            drx,
            route,
            observers.cluster,
        ))
    }

    /// The deployed configuration (per group — all groups share it).
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Number of consensus groups.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The key→shard router.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// When the cluster was spawned.
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// The node that leads shard `s` when nothing is suspected: the
    /// round-robin assignment `s mod n`.
    pub fn leader_of(&self, shard: u32) -> ProcessId {
        ProcessId::new(shard % self.cfg.n() as u32)
    }

    /// A leader-routed client: each command is submitted at (and
    /// awaited on) the node leading its shard, so every proposal starts
    /// on the fast path of its group.
    pub fn client(&self) -> ProxyClient<V> {
        let targets = (0..self.shards() as u32)
            .map(|s| {
                let p = self.leader_of(s);
                (p, self.nodes[p.index()].control())
            })
            .collect();
        ProxyClient::sharded(
            Arc::new(targets),
            Arc::clone(&self.route),
            Arc::clone(&self.shared),
            self.obs.clone(),
        )
    }

    /// A client pinned to proxy `p` for every shard: commands are
    /// routed to their shard's replica *on node `p`* regardless of who
    /// leads the group. Non-leader proposals reach the group leader by
    /// forwarding, trading a hop for locality.
    pub fn proxy_client(&self, p: ProcessId) -> ProxyClient<V> {
        let control = self.nodes[p.index()].control();
        let targets = (0..self.shards()).map(|_| (p, control.clone())).collect();
        ProxyClient::sharded(
            Arc::new(targets),
            Arc::clone(&self.route),
            Arc::clone(&self.shared),
            self.obs.clone(),
        )
    }

    /// Submits `value` to its shard at that shard's leader node.
    pub fn propose(&self, value: V) {
        let shard = (self.route)(&value);
        self.nodes[self.leader_of(shard).index()].propose_at(shard, value);
    }

    /// Crashes node `p`: every group loses its replica at `p` at once —
    /// the physical-node failure model.
    pub fn crash(&mut self, p: ProcessId) {
        self.nodes[p.index()].crash();
    }

    /// The first decision of `(shard, p)` observed so far.
    pub fn decision_of(&self, shard: u32, p: ProcessId) -> Option<V> {
        self.shared.first_decision(shard, p).map(|(v, _)| v)
    }

    /// All first decisions of `shard`, by process.
    pub fn shard_decisions(&self, shard: u32) -> Vec<Option<V>> {
        self.shared.shard_decisions(shard)
    }

    /// Whether the observed first decisions of `shard` agree.
    pub fn shard_agreement(&self, shard: u32) -> bool {
        let decisions = self.shard_decisions(shard);
        let mut iter = decisions.iter().flatten();
        match iter.next() {
            None => true,
            Some(first) => iter.all(|v| v == first),
        }
    }

    /// Whether every shard's observed first decisions agree — Agreement
    /// holds per group; values across groups legitimately differ.
    pub fn agreement(&self) -> bool {
        (0..self.shards() as u32).all(|s| self.shard_agreement(s))
    }

    /// Waits until `(shard, p)` decides or `timeout` elapses.
    pub fn await_decision(&self, shard: u32, p: ProcessId, timeout: WallDuration) -> Option<V> {
        // Subscribe before checking the cache so an event landing in
        // between is seen either way (no lost wakeup).
        let rx = self.shared.subscribe();
        if let Some(v) = self.decision_of(shard, p) {
            return Some(v);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match rx.recv_timeout(deadline - now) {
                Ok((q, s, v, _)) if q == p && s == shard => return Some(v),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn router_is_total_and_in_range() {
        let router = ShardRouter::new(8);
        for key in [&b""[..], b"a", b"capital/mx", &[0xFF; 64]] {
            assert!(router.route(key) < 8);
        }
        assert_eq!(ShardRouter::new(1).route(b"anything"), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0);
    }
}
