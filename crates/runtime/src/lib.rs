//! Thread-per-process deployment harness.
//!
//! This crate runs the *same* protocol state machines that the
//! simulator and model checker drive, but on real OS threads with real
//! time and (optionally) real TCP sockets:
//!
//! * [`codec`] — a compact binary serde format for wire messages (the
//!   sanctioned dependency set has no serialization-format crate).
//! * [`Transport`] — pluggable byte transport: [`InMemoryTransport`]
//!   (crossbeam channels), [`TcpTransport`] (blocking writer threads,
//!   length-prefixed frames over localhost or the network) and
//!   [`ReactorTransport`] (one non-blocking event-loop thread owning
//!   every socket, vectored writes, reusable read buffers).
//! * [`node`] — one protocol instance per thread: an event loop
//!   multiplexing network traffic, client proposals and wall-clock
//!   timers (protocol timer delays are virtual `Δ` units scaled by a
//!   configurable wall-clock `Δ`).
//! * [`Cluster`] — spawns `n` nodes, wires the transport, and exposes
//!   the client's view: `propose` at a proxy, await decisions, observe
//!   latency, crash nodes.
//! * [`ClusterBuilder`] — the one fluent construction path (transport
//!   choice, observer, batching/pipeline knobs), including
//!   batteries-included SMR deployments via
//!   [`ClusterBuilder::build_smr`].
//! * [`ProxyClient`] — a closed-loop client bound to one proxy:
//!   submit a command, wait for its commit, measure per-command
//!   (amortized) latency.
//! * [`ShardedCluster`] — hash-partitioned deployments: `k` independent
//!   consensus groups multiplexed over the same nodes and transport
//!   (shard-tagged wire envelopes, round-robin group leaders, a
//!   `(shard, value)`-keyed waiter registry), built via
//!   [`ClusterBuilder::shards`] +
//!   [`ClusterBuilder::build_sharded_smr`].
//!
//! Design note: the runtime deliberately contains *no protocol logic* —
//! crash injection is thread shutdown, timeouts are the protocol's own
//! timers, and all ordering comes from the transport. Anything verified
//! about the state machines in `twostep-verify` therefore carries over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cluster;
pub mod codec;
mod error;
pub mod node;
mod proxy;
mod reactor;
pub mod shard;
mod transport;

pub use builder::ClusterBuilder;
pub use cluster::Cluster;
pub use error::RuntimeError;
pub use node::{Control, NodeHandle, NodeOptions};
pub use proxy::ProxyClient;
pub use reactor::ReactorTransport;
pub use shard::{fnv1a64, ShardRouter, ShardedCluster};
pub use transport::{InMemoryTransport, TcpTransport, Transport, MAX_COALESCE, RECONNECT_BACKOFF};
