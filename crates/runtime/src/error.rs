//! Runtime error type.

use std::fmt;

use crate::codec::CodecError;

/// Errors surfaced by the deployment runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Wire encoding/decoding failure.
    Codec(CodecError),
    /// A node thread is no longer running.
    NodeGone {
        /// Which node.
        process: twostep_types::ProcessId,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "io error: {e}"),
            RuntimeError::Codec(e) => write!(f, "codec error: {e}"),
            RuntimeError::NodeGone { process } => write!(f, "node {process} is gone"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Codec(e) => Some(e),
            RuntimeError::NodeGone { .. } => None,
        }
    }
}

impl From<CodecError> for RuntimeError {
    fn from(e: CodecError) -> Self {
        RuntimeError::Codec(e)
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::from(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("codec error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = RuntimeError::NodeGone {
            process: twostep_types::ProcessId::new(2),
        };
        assert!(e.to_string().contains("p2"));
    }
}
