//! A whole deployment: `n` nodes, a transport, and client-side helpers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as WallDuration, Instant};

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
#[cfg(test)]
use twostep_types::ProtocolKind;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::node::{spawn_node, NodeHandle, NodeOptions};
use crate::proxy::ProxyClient;
use crate::transport::{delayed_inbox, InMemoryTransport, SocketBackend, TcpTransport};
use crate::RuntimeError;

/// One registered value-waiter (see [`ClusterShared::register_waiter`]).
struct Waiter {
    proxy: ProcessId,
    token: u64,
    tx: Sender<Instant>,
}

/// One decide event as routed through the cluster:
/// `(deciding process, shard, value, wall-clock instant)`.
pub(crate) type DecideEvent<V> = (ProcessId, u32, V, Instant);

/// First decision per shard per process, indexed `[shard][process]`.
type FirstDecisions<V> = Vec<Vec<Option<(V, Instant)>>>;

/// Decision state shared between the cluster handle, its router thread
/// and any [`ProxyClient`]s. Every index is `(shard, process)`; an
/// unsharded cluster is the one-shard special case, with all traffic on
/// shard 0.
pub(crate) struct ClusterShared<V> {
    /// First decision per shard per process (the per-shard
    /// agreement-checking cache).
    observed: Mutex<FirstDecisions<V>>,
    /// Live subscribers receiving **every** decide event.
    taps: Mutex<Vec<Sender<DecideEvent<V>>>>,
    /// Clients blocked on one specific value committing at one specific
    /// proxy, keyed by `(shard, value)`. One hash lookup per decide
    /// event, however many clients wait — fanning every event to every
    /// client caps the whole cluster's commit rate once closed-loop
    /// clients multiply. The shard in the key keeps groups isolated: a
    /// value committing in shard `j` can never wake a waiter registered
    /// under shard `i ≠ j`, even when the values collide.
    waiters: Mutex<HashMap<(u32, V), Vec<Waiter>>>,
    next_token: AtomicU64,
}

impl<V: Value> ClusterShared<V> {
    /// Fresh shared state for `shards` consensus groups over `n` nodes.
    pub(crate) fn new(shards: usize, n: usize) -> Arc<Self> {
        Arc::new(ClusterShared {
            observed: Mutex::new(vec![vec![None; n]; shards]),
            taps: Mutex::new(Vec::new()),
            waiters: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
        })
    }

    /// Spawns the router thread draining `rx` into this shared state.
    pub(crate) fn spawn_router(self: &Arc<Self>, rx: Receiver<DecideEvent<V>>) {
        let router = Arc::clone(self);
        std::thread::Builder::new()
            .name("twostep-cluster-router".into())
            .spawn(move || router.route(rx))
            .expect("spawn router thread");
    }

    /// Routes decide events until every node's sender is gone: caches
    /// each `(shard, process)`'s first decision, wakes the matching
    /// `(shard, value)` waiters, then fans the event out to all live
    /// taps (dead taps are pruned as they are discovered).
    fn route(self: Arc<Self>, rx: Receiver<DecideEvent<V>>) {
        while let Ok((p, shard, v, at)) = rx.recv() {
            {
                let mut observed = self.observed.lock();
                if let Some(row) = observed.get_mut(shard as usize) {
                    let slot = &mut row[p.index()];
                    if slot.is_none() {
                        *slot = Some((v.clone(), at));
                    }
                }
            }
            {
                let mut waiters = self.waiters.lock();
                let key = (shard, v.clone());
                if let Some(list) = waiters.get_mut(&key) {
                    list.retain(|w| {
                        if w.proxy == p {
                            let _ = w.tx.send(at);
                            false
                        } else {
                            true
                        }
                    });
                    if list.is_empty() {
                        waiters.remove(&key);
                    }
                }
            }
            let mut taps = self.taps.lock();
            taps.retain(|tap| tap.send((p, shard, v.clone(), at)).is_ok());
        }
    }

    /// Registers interest in `value` committing in `shard` at `proxy`;
    /// the returned receiver yields the commit's wall-clock instant. The
    /// token identifies this registration for
    /// [`ClusterShared::deregister_waiter`].
    pub(crate) fn register_waiter(
        &self,
        shard: u32,
        value: V,
        proxy: ProcessId,
    ) -> (u64, Receiver<Instant>) {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::unbounded();
        self.waiters
            .lock()
            .entry((shard, value))
            .or_default()
            .push(Waiter { proxy, token, tx });
        (token, rx)
    }

    /// Drops a registration that timed out without being woken.
    pub(crate) fn deregister_waiter(&self, shard: u32, value: &V, token: u64) {
        let mut waiters = self.waiters.lock();
        // The key is rebuilt by clone because HashMap's borrowed-key
        // lookup cannot borrow through a tuple of owned parts.
        let key = (shard, value.clone());
        if let Some(list) = waiters.get_mut(&key) {
            list.retain(|w| w.token != token);
            if list.is_empty() {
                waiters.remove(&key);
            }
        }
    }

    /// The first decision of `(shard, p)` observed so far.
    pub(crate) fn first_decision(&self, shard: u32, p: ProcessId) -> Option<(V, Instant)> {
        self.observed
            .lock()
            .get(shard as usize)
            .and_then(|row| row[p.index()].clone())
    }

    /// All first decisions of one shard, by process.
    pub(crate) fn shard_decisions(&self, shard: u32) -> Vec<Option<V>> {
        self.observed
            .lock()
            .get(shard as usize)
            .map(|row| {
                row.iter()
                    .map(|slot| slot.as_ref().map(|(v, _)| v.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Subscribes a tap receiving every decide event from now on.
    pub(crate) fn subscribe(&self) -> Receiver<(ProcessId, u32, V, Instant)> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.taps.lock().push(tx);
        rx
    }
}

/// A running cluster of protocol instances.
///
/// Construct with [`ClusterBuilder`](crate::ClusterBuilder) (or the
/// [`Cluster::in_memory`] / [`Cluster::tcp`] conveniences it subsumes).
///
/// # Example
///
/// ```rust,no_run
/// use std::time::Duration;
/// use twostep_core::ObjectConsensus;
/// use twostep_runtime::Cluster;
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_object(1, 1)?;
/// let cluster = Cluster::in_memory(cfg, Duration::from_millis(20), |p| {
///     ObjectConsensus::<u64>::new(cfg, p)
/// });
/// cluster.propose(ProcessId::new(0), 7);
/// let decided = cluster.await_decision(ProcessId::new(0), Duration::from_secs(5));
/// assert_eq!(decided, Some(7));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
pub struct Cluster<V: Value> {
    cfg: SystemConfig,
    nodes: Vec<NodeHandle<V>>,
    shared: Arc<ClusterShared<V>>,
    obs: ObserverHandle,
    started: Instant,
}

impl<V: Value> Cluster<V> {
    /// Wires up the shared decision state and router thread around
    /// freshly spawned nodes.
    fn assemble(
        cfg: SystemConfig,
        nodes: Vec<NodeHandle<V>>,
        decisions: Receiver<(ProcessId, u32, V, Instant)>,
        obs: ObserverHandle,
    ) -> Self {
        let shared = ClusterShared::new(1, cfg.n());
        shared.spawn_router(decisions);
        Cluster {
            cfg,
            nodes,
            shared,
            obs,
            started: Instant::now(),
        }
    }

    /// Spawns a cluster over the in-memory transport (used by
    /// [`ClusterBuilder`](crate::ClusterBuilder) and the conveniences
    /// below).
    pub(crate) fn assemble_in_memory<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        link_delay: WallDuration,
        mut make: F,
        obs: ObserverHandle,
    ) -> Self
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        let n = cfg.n();
        let (transport, inboxes) = InMemoryTransport::with_delay(n, link_delay);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut nodes = Vec::with_capacity(n);
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let p = ProcessId::new(i as u32);
            nodes.push(spawn_node(
                make(p),
                inbox,
                transport.clone(),
                NodeOptions::new(dtx.clone())
                    .wall_delta(wall_delta)
                    .observed(obs.clone()),
            ));
        }
        drop(dtx);
        Self::assemble(cfg, nodes, drx, obs)
    }

    /// Spawns a cluster over localhost sockets — the blocking
    /// [`TcpTransport`] or the event-loop
    /// [`ReactorTransport`](crate::ReactorTransport), per `backend`
    /// (used by [`ClusterBuilder`](crate::ClusterBuilder) and the
    /// conveniences below). A non-zero `link_delay` holds every
    /// received payload for that duration before the node sees it,
    /// matching the in-memory transport's emulated link latency.
    pub(crate) fn assemble_sockets<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        link_delay: WallDuration,
        backend: SocketBackend,
        mut make: F,
        obs: ObserverHandle,
    ) -> Result<Self, RuntimeError>
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        let n = cfg.n();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let (listener, addr) = TcpTransport::bind_ephemeral()?;
            listeners.push(listener);
            addrs.push(addr);
        }
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut nodes = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let p = ProcessId::new(i as u32);
            let (inbox_tx, inbox_rx) = crossbeam::channel::unbounded();
            let inbox_tx = delayed_inbox(link_delay, inbox_tx);
            let transport = backend.spawn(p, addrs.clone(), listener, inbox_tx, obs.clone())?;
            nodes.push(spawn_node(
                make(p),
                inbox_rx,
                transport,
                NodeOptions::new(dtx.clone())
                    .wall_delta(wall_delta)
                    .observed(obs.clone()),
            ));
        }
        drop(dtx);
        Ok(Self::assemble(cfg, nodes, drx, obs))
    }

    /// Spawns the cluster over the in-memory transport.
    ///
    /// `wall_delta` is the wall-clock duration of one `Δ`; it bounds the
    /// protocol's timeouts (fast-path window `2Δ`, ballot retry `5Δ`).
    pub fn in_memory<P, F>(cfg: SystemConfig, wall_delta: WallDuration, make: F) -> Self
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        Self::assemble_in_memory(
            cfg,
            wall_delta,
            WallDuration::ZERO,
            make,
            ObserverHandle::none(),
        )
    }

    /// Like [`Cluster::in_memory`], with telemetry hooks: every node
    /// reports per-kind wire bytes and its wall-clock decision latency
    /// (microseconds) to `obs`; pass the same handle to the protocols'
    /// `observed` builders inside `make` for protocol-level events.
    pub fn in_memory_observed<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        make: F,
        obs: ObserverHandle,
    ) -> Self
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        Self::assemble_in_memory(cfg, wall_delta, WallDuration::ZERO, make, obs)
    }

    /// Spawns the cluster over localhost TCP (real sockets, framing and
    /// the binary codec on every hop).
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn tcp<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        make: F,
    ) -> Result<Self, RuntimeError>
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        Self::assemble_sockets(
            cfg,
            wall_delta,
            WallDuration::ZERO,
            SocketBackend::Blocking,
            make,
            ObserverHandle::none(),
        )
    }

    /// Like [`Cluster::tcp`], with telemetry hooks: in addition to the
    /// node-level reports of [`Cluster::in_memory_observed`], the TCP
    /// transports report dropped messages and send-path reconnects.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn tcp_observed<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        make: F,
        obs: ObserverHandle,
    ) -> Result<Self, RuntimeError>
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        Self::assemble_sockets(
            cfg,
            wall_delta,
            WallDuration::ZERO,
            SocketBackend::Blocking,
            make,
            obs,
        )
    }

    /// The deployed configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// When the cluster was spawned.
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// Submits a client proposal at node `p` (the proxy).
    pub fn propose(&self, p: ProcessId, value: V) {
        self.nodes[p.index()].propose(value);
    }

    /// A client handle bound to the proxy at `p`: it can submit
    /// commands and wait for their commit, measuring per-command
    /// latency (see [`ProxyClient::submit_and_wait`]). Any number of
    /// clients may share one proxy.
    pub fn proxy_client(&self, p: ProcessId) -> ProxyClient<V> {
        ProxyClient::single(
            p,
            self.nodes[p.index()].control(),
            Arc::clone(&self.shared),
            self.obs.clone(),
        )
    }

    /// Crashes node `p`: it stops participating immediately.
    pub fn crash(&mut self, p: ProcessId) {
        self.nodes[p.index()].crash();
    }

    /// The first decision of `p` observed so far, without blocking.
    pub fn decision_of(&self, p: ProcessId) -> Option<V> {
        self.shared.first_decision(0, p).map(|(v, _)| v)
    }

    /// Waits until `p` decides or `timeout` elapses; returns the value.
    pub fn await_decision(&self, p: ProcessId, timeout: WallDuration) -> Option<V> {
        // Subscribe before checking the cache so an event landing in
        // between is seen either way (no lost wakeup).
        let rx = self.shared.subscribe();
        if let Some(v) = self.decision_of(p) {
            return Some(v);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match rx.recv_timeout(deadline - now) {
                Ok((q, _, v, _)) if q == p => return Some(v),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
    }

    /// Waits until every process in `who` has decided; returns whether
    /// that happened before the timeout.
    pub fn await_decisions(
        &self,
        who: impl IntoIterator<Item = ProcessId>,
        timeout: WallDuration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        who.into_iter().all(|p| {
            let now = Instant::now();
            if now >= deadline {
                return self.decision_of(p).is_some();
            }
            self.await_decision(p, deadline - now).is_some()
        })
    }

    /// The decision latency of `p` relative to cluster start, if decided.
    pub fn decision_latency(&self, p: ProcessId) -> Option<WallDuration> {
        self.shared
            .first_decision(0, p)
            .map(|(_, at)| at.duration_since(self.started))
    }

    /// All first decisions observed so far, by process.
    pub fn decisions(&self) -> Vec<Option<V>> {
        self.shared.shard_decisions(0)
    }

    /// Whether all observed decisions agree on a single value.
    pub fn agreement(&self) -> bool {
        let decisions = self.decisions();
        let mut iter = decisions.iter().flatten();
        match iter.next() {
            None => true,
            Some(first) => iter.all(|v| v == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use twostep_types::protocol::{Effects, TimerId};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Gossip(u64);

    /// Decides the first value it hears (own proposal or gossip).
    #[derive(Debug)]
    struct Relay {
        me: ProcessId,
        n: usize,
        decided: Option<u64>,
    }

    impl Protocol<u64> for Relay {
        type Message = Gossip;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, _: &mut Effects<u64, Gossip>) {}
        fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, Gossip>) {
            if self.decided.is_none() {
                self.decided = Some(v);
                eff.decide(v);
                eff.broadcast_others(Gossip(v), self.n, self.me);
            }
        }
        fn on_message(&mut self, _: ProcessId, m: Gossip, eff: &mut Effects<u64, Gossip>) {
            if self.decided.is_none() {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, Gossip>) {}
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    #[test]
    fn in_memory_cluster_propagates_decision() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let cluster = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        });
        cluster.propose(p(1), 55);
        assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(5)));
        assert_eq!(cluster.decisions(), vec![Some(55), Some(55), Some(55)]);
        assert!(cluster.agreement());
        assert!(cluster.decision_latency(p(1)).is_some());
    }

    #[test]
    fn crash_is_silent() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let mut cluster = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        });
        cluster.crash(p(0));
        cluster.propose(p(0), 1); // swallowed
        assert_eq!(
            cluster.await_decision(p(1), WallDuration::from_millis(300)),
            None
        );
        cluster.propose(p(1), 2);
        assert_eq!(
            cluster.await_decision(p(2), WallDuration::from_secs(5)),
            Some(2)
        );
        assert_eq!(cluster.decision_of(p(0)), None);
    }

    #[test]
    fn proxy_client_sees_own_proxy_decisions() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let cluster = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        });
        let client = cluster.proxy_client(p(1));
        let latency = client.submit_and_wait(61, WallDuration::from_secs(5));
        assert!(latency.is_some(), "client never saw its command commit");
        assert_eq!(cluster.decision_of(p(1)), Some(61));
    }

    // The (shard, value) waiter key is what keeps groups isolated at the
    // client layer: colliding values in different shards must never wake
    // each other's waiters. Driven as a property over shard pairs,
    // values and proxies because the bug class (keying by value alone)
    // only shows when values collide across shards.
    mod waiter_isolation {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn decides_never_wake_waiters_of_other_shards(
                deciding in 0u32..4,
                bystander in 0u32..4,
                value in any::<u64>(),
                proxy in 0u32..3,
            ) {
                prop_assume!(deciding != bystander);
                let shared: Arc<ClusterShared<u64>> = ClusterShared::new(4, 3);
                let (dtx, drx) = crossbeam::channel::unbounded();
                shared.spawn_router(drx);
                let at = p(proxy);
                let (_tok_b, rx_bystander) = shared.register_waiter(bystander, value, at);
                let (_tok_d, rx_deciding) = shared.register_waiter(deciding, value, at);
                dtx.send((at, deciding, value, Instant::now())).unwrap();
                // The matching waiter wakes...
                prop_assert!(
                    rx_deciding.recv_timeout(WallDuration::from_secs(5)).is_ok(),
                    "waiter on the deciding shard was never woken"
                );
                // ...and because the router handles events in order, the
                // same-valued waiter under the other shard has already
                // been passed over, not merely not-yet-woken.
                prop_assert!(
                    rx_bystander.try_recv().is_err(),
                    "a decide in shard {deciding} woke a waiter registered under shard {bystander}"
                );
                // The bystander's registration is still live: a decide
                // in *its* shard reaches it.
                dtx.send((at, bystander, value, Instant::now())).unwrap();
                prop_assert!(
                    rx_bystander.recv_timeout(WallDuration::from_secs(5)).is_ok(),
                    "bystander's registration was lost"
                );
            }

            #[test]
            fn decides_only_wake_the_matching_proxy(
                shard in 0u32..4,
                value in any::<u64>(),
                deciding_proxy in 0u32..3,
                other_proxy in 0u32..3,
            ) {
                prop_assume!(deciding_proxy != other_proxy);
                let shared: Arc<ClusterShared<u64>> = ClusterShared::new(4, 3);
                let (dtx, drx) = crossbeam::channel::unbounded();
                shared.spawn_router(drx);
                let (_tok_o, rx_other) =
                    shared.register_waiter(shard, value, p(other_proxy));
                let (_tok_d, rx_deciding) =
                    shared.register_waiter(shard, value, p(deciding_proxy));
                dtx.send((p(deciding_proxy), shard, value, Instant::now())).unwrap();
                prop_assert!(rx_deciding.recv_timeout(WallDuration::from_secs(5)).is_ok());
                prop_assert!(
                    rx_other.try_recv().is_err(),
                    "a decide at proxy {deciding_proxy} woke a waiter bound to proxy {other_proxy}"
                );
            }
        }
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let cluster = Cluster::tcp(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        })
        .expect("tcp cluster");
        cluster.propose(p(2), 77);
        assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(10)));
        assert!(cluster.agreement());
        assert_eq!(cluster.decision_of(p(0)), Some(77));
    }
}
