//! A whole deployment: `n` nodes, a transport, and client-side helpers.

use std::time::{Duration as WallDuration, Instant};

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
#[cfg(test)]
use twostep_types::ProtocolKind;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::node::{spawn_observed, NodeHandle};
use crate::transport::{InMemoryTransport, TcpTransport};
use crate::RuntimeError;

/// A running cluster of protocol instances.
///
/// # Example
///
/// ```rust,no_run
/// use std::time::Duration;
/// use twostep_core::ObjectConsensus;
/// use twostep_runtime::Cluster;
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_object(1, 1)?;
/// let cluster = Cluster::in_memory(cfg, Duration::from_millis(20), |p| {
///     ObjectConsensus::<u64>::new(cfg, p)
/// });
/// cluster.propose(ProcessId::new(0), 7);
/// let decided = cluster.await_decision(ProcessId::new(0), Duration::from_secs(5));
/// assert_eq!(decided, Some(7));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
pub struct Cluster<V: Value> {
    cfg: SystemConfig,
    nodes: Vec<NodeHandle<V>>,
    decisions_rx: Receiver<(ProcessId, V, Instant)>,
    observed: Mutex<Vec<Option<(V, Instant)>>>,
    started: Instant,
}

impl<V: Value> Cluster<V> {
    /// Spawns the cluster over the in-memory transport.
    ///
    /// `wall_delta` is the wall-clock duration of one `Δ`; it bounds the
    /// protocol's timeouts (fast-path window `2Δ`, ballot retry `5Δ`).
    pub fn in_memory<P, F>(cfg: SystemConfig, wall_delta: WallDuration, make: F) -> Self
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        Self::in_memory_observed(cfg, wall_delta, make, ObserverHandle::none())
    }

    /// Like [`Cluster::in_memory`], with telemetry hooks: every node
    /// reports per-kind wire bytes and its wall-clock decision latency
    /// (microseconds) to `obs`; pass the same handle to the protocols'
    /// `observed` builders inside `make` for protocol-level events.
    pub fn in_memory_observed<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        mut make: F,
        obs: ObserverHandle,
    ) -> Self
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        let n = cfg.n();
        let (transport, inboxes) = InMemoryTransport::new(n);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut nodes = Vec::with_capacity(n);
        for (i, inbox) in inboxes.into_iter().enumerate() {
            let p = ProcessId::new(i as u32);
            nodes.push(spawn_observed(
                make(p),
                inbox,
                transport.clone(),
                wall_delta,
                dtx.clone(),
                obs.clone(),
            ));
        }
        Cluster {
            cfg,
            nodes,
            decisions_rx: drx,
            observed: Mutex::new(vec![None; n]),
            started: Instant::now(),
        }
    }

    /// Spawns the cluster over localhost TCP (real sockets, framing and
    /// the binary codec on every hop).
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn tcp<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        make: F,
    ) -> Result<Self, RuntimeError>
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        Self::tcp_observed(cfg, wall_delta, make, ObserverHandle::none())
    }

    /// Like [`Cluster::tcp`], with telemetry hooks: in addition to the
    /// node-level reports of [`Cluster::in_memory_observed`], the TCP
    /// transports report dropped messages and send-path reconnects.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn tcp_observed<P, F>(
        cfg: SystemConfig,
        wall_delta: WallDuration,
        mut make: F,
        obs: ObserverHandle,
    ) -> Result<Self, RuntimeError>
    where
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        let n = cfg.n();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let (listener, addr) = TcpTransport::bind_ephemeral()?;
            listeners.push(listener);
            addrs.push(addr);
        }
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut nodes = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let p = ProcessId::new(i as u32);
            let (inbox_tx, inbox_rx) = crossbeam::channel::unbounded();
            let transport =
                TcpTransport::new_observed(p, addrs.clone(), listener, inbox_tx, obs.clone());
            nodes.push(spawn_observed(
                make(p),
                inbox_rx,
                transport,
                wall_delta,
                dtx.clone(),
                obs.clone(),
            ));
        }
        Ok(Cluster {
            cfg,
            nodes,
            decisions_rx: drx,
            observed: Mutex::new(vec![None; n]),
            started: Instant::now(),
        })
    }

    /// The deployed configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// When the cluster was spawned.
    pub fn started_at(&self) -> Instant {
        self.started
    }

    /// Submits a client proposal at node `p` (the proxy).
    pub fn propose(&self, p: ProcessId, value: V) {
        self.nodes[p.index()].propose(value);
    }

    /// Crashes node `p`: it stops participating immediately.
    pub fn crash(&mut self, p: ProcessId) {
        self.nodes[p.index()].crash();
    }

    fn drain(&self) {
        let mut observed = self.observed.lock();
        while let Ok((p, v, at)) = self.decisions_rx.try_recv() {
            let slot = &mut observed[p.index()];
            if slot.is_none() {
                *slot = Some((v, at));
            }
        }
    }

    /// The first decision of `p` observed so far, without blocking.
    pub fn decision_of(&self, p: ProcessId) -> Option<V> {
        self.drain();
        self.observed.lock()[p.index()]
            .as_ref()
            .map(|(v, _)| v.clone())
    }

    /// Waits until `p` decides or `timeout` elapses; returns the value.
    pub fn await_decision(&self, p: ProcessId, timeout: WallDuration) -> Option<V> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = self.decision_of(p) {
                return Some(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.decisions_rx.recv_timeout(deadline - now) {
                Ok((q, v, at)) => {
                    let mut observed = self.observed.lock();
                    if observed[q.index()].is_none() {
                        observed[q.index()] = Some((v, at));
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Waits until every process in `who` has decided; returns whether
    /// that happened before the timeout.
    pub fn await_decisions(
        &self,
        who: impl IntoIterator<Item = ProcessId>,
        timeout: WallDuration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        who.into_iter().all(|p| {
            let now = Instant::now();
            if now >= deadline {
                return self.decision_of(p).is_some();
            }
            self.await_decision(p, deadline - now).is_some()
        })
    }

    /// The decision latency of `p` relative to cluster start, if decided.
    pub fn decision_latency(&self, p: ProcessId) -> Option<WallDuration> {
        self.drain();
        self.observed.lock()[p.index()]
            .as_ref()
            .map(|(_, at)| at.duration_since(self.started))
    }

    /// All first decisions observed so far, by process.
    pub fn decisions(&self) -> Vec<Option<V>> {
        self.drain();
        self.observed
            .lock()
            .iter()
            .map(|slot| slot.as_ref().map(|(v, _)| v.clone()))
            .collect()
    }

    /// Whether all observed decisions agree on a single value.
    pub fn agreement(&self) -> bool {
        let decisions = self.decisions();
        let mut iter = decisions.iter().flatten();
        match iter.next() {
            None => true,
            Some(first) => iter.all(|v| v == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use twostep_types::protocol::{Effects, TimerId};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Gossip(u64);

    /// Decides the first value it hears (own proposal or gossip).
    #[derive(Debug)]
    struct Relay {
        me: ProcessId,
        n: usize,
        decided: Option<u64>,
    }

    impl Protocol<u64> for Relay {
        type Message = Gossip;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, _: &mut Effects<u64, Gossip>) {}
        fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, Gossip>) {
            if self.decided.is_none() {
                self.decided = Some(v);
                eff.decide(v);
                eff.broadcast_others(Gossip(v), self.n, self.me);
            }
        }
        fn on_message(&mut self, _: ProcessId, m: Gossip, eff: &mut Effects<u64, Gossip>) {
            if self.decided.is_none() {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, Gossip>) {}
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    #[test]
    fn in_memory_cluster_propagates_decision() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let cluster = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        });
        cluster.propose(p(1), 55);
        assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(5)));
        assert_eq!(cluster.decisions(), vec![Some(55), Some(55), Some(55)]);
        assert!(cluster.agreement());
        assert!(cluster.decision_latency(p(1)).is_some());
    }

    #[test]
    fn crash_is_silent() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let mut cluster = Cluster::in_memory(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        });
        cluster.crash(p(0));
        cluster.propose(p(0), 1); // swallowed
        assert_eq!(
            cluster.await_decision(p(1), WallDuration::from_millis(300)),
            None
        );
        cluster.propose(p(1), 2);
        assert_eq!(
            cluster.await_decision(p(2), WallDuration::from_secs(5)),
            Some(2)
        );
        assert_eq!(cluster.decision_of(p(0)), None);
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        let cfg = SystemConfig::for_protocol(ProtocolKind::TaskTwoStep, 3, 1, 1).unwrap();
        let n = cfg.n();
        let cluster = Cluster::tcp(cfg, WallDuration::from_millis(10), |q| Relay {
            me: q,
            n,
            decided: None,
        })
        .expect("tcp cluster");
        cluster.propose(p(2), 77);
        assert!(cluster.await_decisions(cfg.process_ids(), WallDuration::from_secs(10)));
        assert!(cluster.agreement());
        assert_eq!(cluster.decision_of(p(0)), Some(77));
    }
}
