//! A compact, non-self-describing binary serde format for wire messages.
//!
//! The sanctioned dependency set contains `serde` but no serialization
//! *format* crate, so the TCP transport carries messages in this
//! hand-rolled encoding (in the spirit of `bincode`):
//!
//! * fixed-width little-endian integers;
//! * `u8` tags for `Option` / `bool`;
//! * `u32` variant indices for enums;
//! * `u64` element counts for sequences, maps, strings and byte blobs;
//! * structs and tuples are field concatenations with no framing.
//!
//! Like any non-self-describing format it only round-trips through
//! `Deserialize` implementations that mirror the `Serialize` side (true
//! for all derived impls, which is all this workspace uses);
//! `deserialize_any` is unsupported.

use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer};
use serde::ser::{self, Serialize};

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Trailing bytes remained after a complete value.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A `bool`/`Option` tag byte was neither 0 nor 1.
    InvalidTag(u8),
    /// A char was not a valid Unicode scalar value.
    InvalidChar(u32),
    /// The type requires a self-describing format.
    NotSelfDescribing,
    /// Error bubbled up from a `Serialize`/`Deserialize` impl.
    Custom(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::InvalidChar(c) => write!(f, "invalid char scalar {c}"),
            CodecError::NotSelfDescribing => {
                write!(f, "this format is not self-describing")
            }
            CodecError::Custom(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Returns [`CodecError`] if the value's `Serialize` impl fails (the
/// format itself never rejects a value).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(64);
    value.serialize(&mut Encoder { out: &mut out })?;
    Ok(out)
}

/// Deserializes a value from `bytes`, requiring all input be consumed.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed or trailing input.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut d = Decoder { input: bytes };
    let value = T::deserialize(&mut d)?;
    if d.input.is_empty() {
        Ok(value)
    } else {
        Err(CodecError::TrailingBytes {
            remaining: d.input.len(),
        })
    }
}

/// Tag identifying a *coalesced* frame: one transport payload carrying
/// many encoded messages (see [`pack_frame`]).
///
/// The value is reserved by construction: every message this workspace
/// puts on the wire is a serde enum (`SmrMsg`, protocol `Msg`, the test
/// protocols), and the codec above encodes enums as a little-endian
/// `u32` *variant index* first. Variant indices are tiny (single
/// digits), so a legacy single-message payload can never begin with
/// this 32-bit pattern — which is what lets [`unpack_frame`] dispatch
/// on the first four bytes and keep backward compatibility with peers
/// that still write one message per transport frame.
pub const FRAME_MAGIC: u32 = 0xC0A1_E5CE;

/// Packs `payloads` (each one encoded message) into a single coalesced
/// frame:
///
/// ```text
/// [FRAME_MAGIC: u32 LE][count: u32 LE] ([len: u32 LE][payload bytes])*
/// ```
///
/// The inverse is [`unpack_frame`]. Transports use this so one syscall
/// (or one in-memory channel send) can carry a whole flush of messages.
///
/// # Panics
///
/// Panics if a payload exceeds `u32::MAX` bytes or there are more than
/// `u32::MAX` payloads (far beyond any real flush).
pub fn pack_frame(payloads: &[bytes::Bytes]) -> bytes::Bytes {
    let body: usize = payloads.iter().map(|p| 4 + p.len()).sum();
    let mut out = Vec::with_capacity(8 + body);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    let count = u32::try_from(payloads.len()).expect("frame message count fits u32");
    out.extend_from_slice(&count.to_le_bytes());
    for p in payloads {
        let len = u32::try_from(p.len()).expect("frame payload length fits u32");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(p);
    }
    bytes::Bytes::from(out)
}

/// Splits a transport payload into its constituent message payloads.
///
/// A payload beginning with [`FRAME_MAGIC`] is parsed as a coalesced
/// frame; anything else is a legacy single-message payload and is
/// returned as-is in a one-element vector, so old and new senders
/// interoperate.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if a coalesced frame is
/// truncated mid-header or mid-payload, and
/// [`CodecError::TrailingBytes`] if bytes remain after the advertised
/// message count.
pub fn unpack_frame(payload: &bytes::Bytes) -> Result<Vec<bytes::Bytes>, CodecError> {
    let buf: &[u8] = payload;
    let is_framed = buf.len() >= 4 && buf[..4] == FRAME_MAGIC.to_le_bytes();
    if !is_framed {
        return Ok(vec![payload.clone()]);
    }
    let mut rest = &buf[4..];
    let take4 = |rest: &mut &[u8]| -> Result<u32, CodecError> {
        if rest.len() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = rest.split_at(4);
        *rest = tail;
        Ok(u32::from_le_bytes(head.try_into().expect("exact length")))
    };
    let count = take4(&mut rest)?;
    let mut msgs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = take4(&mut rest)? as usize;
        if rest.len() < len {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = rest.split_at(len);
        // The vendored `Bytes` has no zero-copy `slice`; copying the
        // sub-payload out is the supported extraction path.
        msgs.push(bytes::Bytes::from(head.to_vec()));
        rest = tail;
    }
    if rest.is_empty() {
        Ok(msgs)
    } else {
        Err(CodecError::TrailingBytes {
            remaining: rest.len(),
        })
    }
}

/// Validates a transport payload and returns a borrowing iterator over
/// its constituent message payloads — the allocation-free counterpart
/// of [`unpack_frame`], used on the hot receive path (the runtime node
/// and the reactor transport dispatch messages straight out of the
/// buffer they were read into).
///
/// A payload beginning with [`FRAME_MAGIC`] is walked as a coalesced
/// frame; anything else is a legacy single-message payload yielded
/// as-is. The whole frame is validated *before* the iterator is
/// returned, so iteration itself cannot fail and a malformed frame is
/// rejected without delivering a prefix of its messages.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if a coalesced frame is
/// truncated mid-header or mid-payload, and
/// [`CodecError::TrailingBytes`] if bytes remain after the advertised
/// message count.
pub fn frame_messages(payload: &[u8]) -> Result<FrameMessages<'_>, CodecError> {
    let is_framed = payload.len() >= 4 && payload[..4] == FRAME_MAGIC.to_le_bytes();
    if !is_framed {
        return Ok(FrameMessages {
            rest: &[],
            remaining: 0,
            legacy: Some(payload),
        });
    }
    // Validation walk: confirm every advertised sub-payload is present
    // and nothing trails, without materializing anything.
    let take4 = |rest: &mut &[u8]| -> Result<u32, CodecError> {
        if rest.len() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = rest.split_at(4);
        *rest = tail;
        Ok(u32::from_le_bytes(head.try_into().expect("exact length")))
    };
    let mut rest = &payload[4..];
    let count = take4(&mut rest)?;
    let body = rest;
    for _ in 0..count {
        let len = take4(&mut rest)? as usize;
        if rest.len() < len {
            return Err(CodecError::UnexpectedEof);
        }
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: rest.len(),
        });
    }
    Ok(FrameMessages {
        rest: body,
        remaining: count,
        legacy: None,
    })
}

/// Borrowing iterator over the messages of a validated transport
/// payload; see [`frame_messages`].
#[derive(Debug, Clone)]
pub struct FrameMessages<'a> {
    rest: &'a [u8],
    remaining: u32,
    legacy: Option<&'a [u8]>,
}

impl<'a> Iterator for FrameMessages<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if let Some(whole) = self.legacy.take() {
            return Some(whole);
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Headers were validated up front; the splits cannot fail.
        let (head, tail) = self.rest.split_at(4);
        let len = u32::from_le_bytes(head.try_into().expect("exact length")) as usize;
        let (msg, tail) = tail.split_at(len);
        self.rest = tail;
        Some(msg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize + usize::from(self.legacy.is_some());
        (n, Some(n))
    }
}

impl ExactSizeIterator for FrameMessages<'_> {}

/// Incremental reassembly of `[len: u32 LE][payload]` wire frames from
/// arbitrarily-split reads, with one reusable buffer.
///
/// This is the receive half of the zero-copy hot path: a transport
/// reads whatever bytes the socket has into [`FrameAssembler::
/// read_slot`], commits the read length, and drains complete frames
/// with [`FrameAssembler::next_frame`] — each returned slice borrows
/// the internal buffer, so steady-state reassembly performs **no
/// allocation per frame** (the buffer grows to the high-water frame
/// size once and is reused; consumed bytes are compacted in place).
/// Frames split at any byte boundary across reads — mid-length-prefix,
/// mid-payload — reassemble exactly; the codec proptests drive every
/// split point.
///
/// The assembler is transport-agnostic: the reactor uses one per
/// connection, and the conformance/property tests drive it directly.
#[derive(Debug)]
pub struct FrameAssembler {
    /// The reusable buffer. `buf[start..end]` holds unconsumed bytes;
    /// `buf[end..]` is writable scratch handed out by `read_slot`.
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameAssembler {
    /// An assembler with the default initial capacity (16 KiB).
    pub fn new() -> Self {
        Self::with_capacity(16 * 1024)
    }

    /// An assembler whose buffer starts at `cap` bytes (it still grows
    /// to the high-water frame size on demand).
    pub fn with_capacity(cap: usize) -> Self {
        FrameAssembler {
            buf: vec![0; cap.max(8)],
            start: 0,
            end: 0,
        }
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Current buffer capacity — exposed so tests can pin that steady
    /// state stops growing.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// A writable window of at least `min` bytes to read into; follow
    /// with [`FrameAssembler::commit`] for however many bytes landed.
    ///
    /// Consumed bytes are compacted away before the buffer grows, so
    /// capacity tracks the largest in-flight frame, not the total
    /// traffic.
    pub fn read_slot(&mut self, min: usize) -> &mut [u8] {
        let min = min.max(1);
        if self.buf.len() - self.end < min {
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            }
            if self.buf.len() - self.end < min {
                let target = (self.end + min).next_power_of_two();
                self.buf.resize(target, 0);
            }
        }
        &mut self.buf[self.end..]
    }

    /// Marks `n` bytes of the last [`FrameAssembler::read_slot`] as
    /// filled.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the last slot's length.
    pub fn commit(&mut self, n: usize) {
        assert!(n <= self.buf.len() - self.end, "commit beyond read slot");
        self.end += n;
    }

    /// Consumes and returns the next `n` raw bytes, if buffered — used
    /// for the connection handshake, which is not length-prefixed.
    pub fn next_bytes(&mut self, n: usize) -> Option<&[u8]> {
        if self.buffered() < n {
            return None;
        }
        let slice_start = self.start;
        self.start += n;
        // Fully drained: rewind so the next read starts at the front
        // without a copy_within. The returned slice is untouched.
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Some(&self.buf[slice_start..slice_start + n])
    }

    /// Consumes and returns the next complete `[len][payload]` frame's
    /// payload, or `None` if only a partial frame is buffered.
    pub fn next_frame(&mut self) -> Option<&[u8]> {
        if self.buffered() < 4 {
            self.rewind_if_empty();
            return None;
        }
        let head: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("exact length");
        let len = u32::from_le_bytes(head) as usize;
        if self.buffered() - 4 < len {
            return None;
        }
        let payload_start = self.start + 4;
        self.start = payload_start + len;
        let (start, end) = (self.start, self.end);
        if start == end {
            self.start = 0;
            self.end = 0;
        }
        Some(&self.buf[payload_start..payload_start + len])
    }

    fn rewind_if_empty(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
    }
}

/// Tag identifying a *shard-addressed* payload: one encoded message
/// prefixed with the consensus group (shard) it belongs to (see
/// [`tag_shard`]).
///
/// Reserved by the same argument as [`FRAME_MAGIC`]: every wire message
/// is a serde enum whose encoding begins with a tiny little-endian
/// `u32` variant index, so an untagged payload can never start with
/// this pattern. [`split_shard`] exploits that to treat untagged
/// payloads as shard 0 traffic, keeping single-group deployments and
/// old peers on the zero-overhead legacy wire format.
pub const SHARD_MAGIC: u32 = 0xC0A1_E5CF;

/// Wraps one encoded message payload in a shard envelope:
///
/// ```text
/// [SHARD_MAGIC: u32 LE][shard: u32 LE][payload bytes]
/// ```
///
/// The inverse is [`split_shard`]. Sharded nodes tag each message with
/// its group before handing it to the transport; the envelope nests
/// *inside* coalesced frames (tag first, [`pack_frame`] second), so one
/// transport frame can interleave traffic for many shards.
pub fn tag_shard(shard: u32, payload: &bytes::Bytes) -> bytes::Bytes {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&SHARD_MAGIC.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(payload);
    bytes::Bytes::from(out)
}

/// Splits a message payload into its shard id and inner payload.
///
/// A payload beginning with [`SHARD_MAGIC`] is parsed as a shard
/// envelope; anything else is a legacy untagged payload and is
/// attributed to shard 0, so unsharded senders interoperate with
/// sharded receivers.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if a tagged payload is
/// truncated before the shard id completes.
pub fn split_shard(payload: &bytes::Bytes) -> Result<(u32, bytes::Bytes), CodecError> {
    let buf: &[u8] = payload;
    let is_tagged = buf.len() >= 4 && buf[..4] == SHARD_MAGIC.to_le_bytes();
    if !is_tagged {
        return Ok((0, payload.clone()));
    }
    // The vendored `Bytes` has no zero-copy `slice`; copying the inner
    // payload out is the supported extraction path.
    let (shard, inner) = split_shard_ref(buf)?;
    Ok((shard, bytes::Bytes::from(inner.to_vec())))
}

/// Borrowing variant of [`split_shard`]: splits a message payload into
/// its shard id and a slice of the inner payload without copying.
///
/// This is the hot-path form — the node deserializes the protocol
/// message straight out of the returned slice, so dispatch of a shard-
/// tagged message performs no allocation in the codec. Untagged
/// payloads are attributed to shard 0, exactly as in [`split_shard`].
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if a tagged payload is
/// truncated before the shard id completes.
pub fn split_shard_ref(payload: &[u8]) -> Result<(u32, &[u8]), CodecError> {
    let is_tagged = payload.len() >= 4 && payload[..4] == SHARD_MAGIC.to_le_bytes();
    if !is_tagged {
        return Ok((0, payload));
    }
    if payload.len() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    let shard = u32::from_le_bytes(payload[4..8].try_into().expect("exact length"));
    Ok((shard, &payload[8..]))
}

struct Encoder<'a> {
    out: &'a mut Vec<u8>,
}

impl Encoder<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

macro_rules! ser_int {
    ($method:ident, $ty:ty) => {
        fn $method(self, v: $ty) -> Result<(), CodecError> {
            self.put(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl ser::Serializer for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.put(&[u8::from(v)]);
        Ok(())
    }

    ser_int!(serialize_i8, i8);
    ser_int!(serialize_i16, i16);
    ser_int!(serialize_i32, i32);
    ser_int!(serialize_i64, i64);
    ser_int!(serialize_u8, u8);
    ser_int!(serialize_u16, u16);
    ser_int!(serialize_u32, u32);
    ser_int!(serialize_u64, u64);
    ser_int!(serialize_f32, f32);
    ser_int!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.serialize_bytes(v.as_bytes())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put(&(v.len() as u64).to_le_bytes());
        self.put(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.put(&[0]);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.put(&[1]);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| {
            ser::Error::custom("sequences must have a known length in this format")
        })?;
        self.put(&(len as u64).to_le_bytes());
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.put(&variant_index.to_le_bytes());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len =
            len.ok_or_else(|| ser::Error::custom("maps must have a known length in this format"))?;
        self.put(&(len as u64).to_le_bytes());
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.put(&variant_index.to_le_bytes());
        Ok(self)
    }
}

macro_rules! ser_compound {
    ($trait_:path, $method:ident $(, $key:ident)?) => {
        impl $trait_ for &mut Encoder<'_> {
            type Ok = ();
            type Error = CodecError;

            $(fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
                key.serialize(&mut **self)
            })?

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

ser_compound!(ser::SerializeSeq, serialize_element);
ser_compound!(ser::SerializeTuple, serialize_element);
ser_compound!(ser::SerializeTupleStruct, serialize_field);
ser_compound!(ser::SerializeTupleVariant, serialize_field);
ser_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        Ok(self.take(N)?.try_into().expect("exact length"))
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let len = u64::from_le_bytes(self.take_array()?);
        usize::try_from(len).map_err(|_| CodecError::UnexpectedEof)
    }

    fn take_tag(&mut self) -> Result<bool, CodecError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

macro_rules! de_int {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
            visitor.$visit(<$ty>::from_le_bytes(self.take_array()?))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<W: de::Visitor<'de>>(self, _visitor: W) -> Result<W::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_bool<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        visitor.visit_bool(self.take_tag()?)
    }

    de_int!(deserialize_i8, visit_i8, i8);
    de_int!(deserialize_i16, visit_i16, i16);
    de_int!(deserialize_i32, visit_i32, i32);
    de_int!(deserialize_i64, visit_i64, i64);
    de_int!(deserialize_u8, visit_u8, u8);
    de_int!(deserialize_u16, visit_u16, u16);
    de_int!(deserialize_u32, visit_u32, u32);
    de_int!(deserialize_u64, visit_u64, u64);
    de_int!(deserialize_f32, visit_f32, f32);
    de_int!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        let raw = u32::from_le_bytes(self.take_array()?);
        visitor.visit_char(char::from_u32(raw).ok_or(CodecError::InvalidChar(raw))?)
    }

    fn deserialize_str<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_str(std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?)
    }

    fn deserialize_string<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        if self.take_tag()? {
            visitor.visit_some(self)
        } else {
            visitor.visit_none()
        }
    }

    fn deserialize_unit<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<W: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<W: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<W: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<W: de::Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<W: de::Visitor<'de>>(self, visitor: W) -> Result<W::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<W: de::Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<W: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<W: de::Visitor<'de>>(
        self,
        _visitor: W,
    ) -> Result<W::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<W: de::Visitor<'de>>(
        self,
        _visitor: W,
    ) -> Result<W::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<Option<S::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<Option<S::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<S: de::DeserializeSeed<'de>>(
        &mut self,
        seed: S,
    ) -> Result<S::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<S: de::DeserializeSeed<'de>>(
        self,
        seed: S,
    ) -> Result<(S::Value, Self), CodecError> {
        let index = u32::from_le_bytes(self.de.take_array()?);
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<S: de::DeserializeSeed<'de>>(
        self,
        seed: S,
    ) -> Result<S::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<W: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<W: de::Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: W,
    ) -> Result<W::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip('λ');
        roundtrip(String::from("héllo"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(9u64));
        roundtrip((1u8, String::from("x"), vec![true, false]));
    }

    #[test]
    fn collections_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        m.insert("b".to_string(), vec![]);
        roundtrip(m);
        roundtrip(std::collections::BTreeSet::from([5u64, 1, 9]));
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Sample {
        Unit,
        Newtype(u64),
        Tuple(u32, String),
        Struct { a: Option<u64>, b: Vec<u8> },
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Sample::Unit);
        roundtrip(Sample::Newtype(7));
        roundtrip(Sample::Tuple(1, "two".into()));
        roundtrip(Sample::Struct {
            a: Some(3),
            b: vec![4, 5],
        });
        roundtrip(vec![Sample::Unit, Sample::Newtype(1)]);
    }

    #[test]
    fn protocol_messages_roundtrip() {
        use twostep_types::{Ballot, ProcessId};

        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        struct OneB {
            bal: Ballot,
            vbal: Ballot,
            val: Option<u64>,
            proposer: Option<ProcessId>,
            decided: Option<u64>,
        }
        roundtrip(OneB {
            bal: Ballot::new(7),
            vbal: Ballot::FAST,
            val: Some(9),
            proposer: Some(ProcessId::new(3)),
            decided: None,
        });
    }

    #[test]
    fn eof_detected() {
        let bytes = to_bytes(&12345u64).unwrap();
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert_eq!(err, CodecError::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = to_bytes(&1u32).unwrap();
        bytes.push(0xFF);
        let err = from_bytes::<u32>(&bytes).unwrap_err();
        assert_eq!(err, CodecError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn bad_bool_tag_detected() {
        let err = from_bytes::<bool>(&[7]).unwrap_err();
        assert_eq!(err, CodecError::InvalidTag(7));
    }

    #[test]
    fn bad_utf8_detected() {
        // len=1, byte 0xFF.
        let mut bytes = (1u64).to_le_bytes().to_vec();
        bytes.push(0xFF);
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert_eq!(err, CodecError::InvalidUtf8);
    }

    #[test]
    fn frame_roundtrips_many_messages() {
        let payloads: Vec<bytes::Bytes> = (0..5u64)
            .map(|i| bytes::Bytes::from(to_bytes(&(i, format!("msg{i}"))).unwrap()))
            .collect();
        let frame = pack_frame(&payloads);
        let back = unpack_frame(&frame).unwrap();
        assert_eq!(back, payloads);
    }

    #[test]
    fn frame_roundtrips_empty_and_single() {
        assert_eq!(
            unpack_frame(&pack_frame(&[])).unwrap(),
            Vec::<bytes::Bytes>::new()
        );
        let one = bytes::Bytes::from(to_bytes(&7u64).unwrap());
        assert_eq!(
            unpack_frame(&pack_frame(std::slice::from_ref(&one))).unwrap(),
            vec![one]
        );
    }

    #[test]
    fn legacy_single_message_passes_through() {
        // An enum-first payload starts with a small variant index, never
        // the magic, so it is returned untouched.
        let legacy = bytes::Bytes::from(to_bytes(&Sample::Newtype(7)).unwrap());
        assert_eq!(unpack_frame(&legacy).unwrap(), vec![legacy.clone()]);
        // Even degenerate short payloads are treated as legacy.
        let short = bytes::Bytes::from(vec![1u8, 2]);
        assert_eq!(unpack_frame(&short).unwrap(), vec![short.clone()]);
    }

    #[test]
    fn truncated_frame_rejected() {
        let payloads = vec![bytes::Bytes::from(vec![9u8; 32])];
        let frame = pack_frame(&payloads);
        for cut in [5, 8, 10, frame.len() - 1] {
            let truncated = bytes::Bytes::from(frame[..cut].to_vec());
            assert_eq!(
                unpack_frame(&truncated).unwrap_err(),
                CodecError::UnexpectedEof,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn frame_trailing_bytes_rejected() {
        let mut raw = pack_frame(&[bytes::Bytes::from(vec![1u8, 2, 3])]).to_vec();
        raw.push(0xAA);
        let err = unpack_frame(&bytes::Bytes::from(raw)).unwrap_err();
        assert_eq!(err, CodecError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn shard_tag_roundtrips() {
        let inner = bytes::Bytes::from(to_bytes(&Sample::Newtype(7)).unwrap());
        for shard in [0u32, 1, 7, u32::MAX] {
            let tagged = tag_shard(shard, &inner);
            assert_eq!(split_shard(&tagged).unwrap(), (shard, inner.clone()));
        }
    }

    #[test]
    fn untagged_payload_maps_to_shard_zero() {
        let legacy = bytes::Bytes::from(to_bytes(&Sample::Newtype(7)).unwrap());
        assert_eq!(split_shard(&legacy).unwrap(), (0, legacy.clone()));
        let short = bytes::Bytes::from(vec![3u8]);
        assert_eq!(split_shard(&short).unwrap(), (0, short.clone()));
        let empty = bytes::Bytes::from(Vec::new());
        assert_eq!(split_shard(&empty).unwrap(), (0, empty.clone()));
    }

    #[test]
    fn truncated_shard_tag_rejected() {
        let tagged = tag_shard(3, &bytes::Bytes::from(vec![9u8; 8]));
        for cut in [4, 5, 7] {
            let truncated = bytes::Bytes::from(tagged[..cut].to_vec());
            assert_eq!(
                split_shard(&truncated).unwrap_err(),
                CodecError::UnexpectedEof,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn shard_tags_nest_inside_coalesced_frames() {
        let a = tag_shard(0, &bytes::Bytes::from(to_bytes(&1u64).unwrap()));
        let b = tag_shard(5, &bytes::Bytes::from(to_bytes(&2u64).unwrap()));
        let frame = pack_frame(&[a.clone(), b.clone()]);
        let back = unpack_frame(&frame).unwrap();
        assert_eq!(back, vec![a, b]);
        let shards: Vec<u32> = back.iter().map(|p| split_shard(p).unwrap().0).collect();
        assert_eq!(shards, vec![0, 5]);
    }

    #[test]
    fn encoding_is_compact() {
        // A u64 is exactly 8 bytes; an Option<u64> 9; a small enum
        // variant 4 (+payload).
        assert_eq!(to_bytes(&1u64).unwrap().len(), 8);
        assert_eq!(to_bytes(&Some(1u64)).unwrap().len(), 9);
        assert_eq!(to_bytes(&Sample::Unit).unwrap().len(), 4);
    }

    #[test]
    fn frame_messages_matches_unpack_frame() {
        let payloads: Vec<bytes::Bytes> = (0..5u64)
            .map(|i| bytes::Bytes::from(to_bytes(&(i, format!("msg{i}"))).unwrap()))
            .collect();
        let frame = pack_frame(&payloads);
        let iter = frame_messages(&frame).unwrap();
        assert_eq!(iter.len(), payloads.len());
        let borrowed: Vec<&[u8]> = iter.collect();
        let owned: Vec<&[u8]> = payloads.iter().map(|p| &p[..]).collect();
        assert_eq!(borrowed, owned);
        // Empty frame.
        assert_eq!(frame_messages(&pack_frame(&[])).unwrap().count(), 0);
    }

    #[test]
    fn frame_messages_legacy_passthrough() {
        let legacy = to_bytes(&Sample::Newtype(7)).unwrap();
        let msgs: Vec<&[u8]> = frame_messages(&legacy).unwrap().collect();
        assert_eq!(msgs, vec![&legacy[..]]);
        // Degenerate short and empty payloads are legacy too.
        assert_eq!(frame_messages(&[1u8, 2]).unwrap().count(), 1);
        assert_eq!(frame_messages(&[]).unwrap().next(), Some(&[][..]));
    }

    #[test]
    fn frame_messages_rejects_malformed_frames() {
        let frame = pack_frame(&[bytes::Bytes::from(vec![9u8; 32])]);
        for cut in [5, 8, 10, frame.len() - 1] {
            assert_eq!(
                frame_messages(&frame[..cut]).unwrap_err(),
                CodecError::UnexpectedEof,
                "cut at {cut}"
            );
        }
        let mut trailing = frame.to_vec();
        trailing.push(0xAA);
        assert_eq!(
            frame_messages(&trailing).unwrap_err(),
            CodecError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn split_shard_ref_matches_split_shard() {
        let inner = bytes::Bytes::from(to_bytes(&Sample::Newtype(7)).unwrap());
        for shard in [0u32, 1, 7, u32::MAX] {
            let tagged = tag_shard(shard, &inner);
            assert_eq!(split_shard_ref(&tagged).unwrap(), (shard, &inner[..]));
        }
        let legacy = to_bytes(&Sample::Unit).unwrap();
        assert_eq!(split_shard_ref(&legacy).unwrap(), (0, &legacy[..]));
        assert_eq!(split_shard_ref(&[]).unwrap(), (0, &[][..]));
        let tagged = tag_shard(3, &inner);
        for cut in [4, 5, 7] {
            assert_eq!(
                split_shard_ref(&tagged[..cut]).unwrap_err(),
                CodecError::UnexpectedEof,
                "cut at {cut}"
            );
        }
    }

    /// Drives a [`FrameAssembler`] with `wire` split into `chunk`-sized
    /// reads and returns every completed frame payload.
    fn assemble_in_chunks(asm: &mut FrameAssembler, wire: &[u8], chunk: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for piece in wire.chunks(chunk.max(1)) {
            let slot = asm.read_slot(piece.len());
            slot[..piece.len()].copy_from_slice(piece);
            asm.commit(piece.len());
            while let Some(frame) = asm.next_frame() {
                out.push(frame.to_vec());
            }
        }
        out
    }

    /// `[len][payload]` wire encoding of a sequence of frame payloads,
    /// as the socket transports emit them.
    fn wire_frames(payloads: &[&[u8]]) -> Vec<u8> {
        let mut wire = Vec::new();
        for p in payloads {
            wire.extend_from_slice(&(p.len() as u32).to_le_bytes());
            wire.extend_from_slice(p);
        }
        wire
    }

    #[test]
    fn assembler_reassembles_at_every_split_granularity() {
        let payloads: Vec<Vec<u8>> = vec![vec![1; 3], vec![], vec![2; 300], vec![3; 17]];
        let refs: Vec<&[u8]> = payloads.iter().map(|p| &p[..]).collect();
        let wire = wire_frames(&refs);
        for chunk in 1..=wire.len() {
            let mut asm = FrameAssembler::with_capacity(8);
            assert_eq!(
                assemble_in_chunks(&mut asm, &wire, chunk),
                payloads,
                "chunk size {chunk}"
            );
            assert_eq!(asm.buffered(), 0);
        }
    }

    #[test]
    fn assembler_buffer_reuse_stops_growing_at_steady_state() {
        let payload = vec![7u8; 1000];
        let wire = wire_frames(&[&payload]);
        let mut asm = FrameAssembler::with_capacity(8);
        assert_eq!(assemble_in_chunks(&mut asm, &wire, 13), vec![payload]);
        let high_water = asm.capacity();
        for _ in 0..100 {
            assert_eq!(assemble_in_chunks(&mut asm, &wire, 13).len(), 1);
        }
        assert_eq!(asm.capacity(), high_water, "steady state must not grow");
    }

    #[test]
    fn assembler_next_bytes_consumes_handshake_prefix() {
        let mut asm = FrameAssembler::with_capacity(8);
        let mut wire = 42u32.to_le_bytes().to_vec(); // handshake
        wire.extend_from_slice(&wire_frames(&[&[9u8, 9]]));
        // Feed one byte at a time: the handshake completes only once
        // four bytes are buffered.
        let mut who = None;
        let mut frames = Vec::new();
        for b in wire {
            let slot = asm.read_slot(1);
            slot[0] = b;
            asm.commit(1);
            if who.is_none() {
                if let Some(head) = asm.next_bytes(4) {
                    who = Some(u32::from_le_bytes(head.try_into().unwrap()));
                }
                continue;
            }
            while let Some(frame) = asm.next_frame() {
                frames.push(frame.to_vec());
            }
        }
        assert_eq!(who, Some(42));
        assert_eq!(frames, vec![vec![9u8, 9]]);
    }

    #[test]
    fn assembler_frames_carry_coalesced_and_tagged_payloads_intact() {
        // End-to-end shape of the socket hot path: shard-tagged
        // messages coalesced into a FRAME_MAGIC frame, length-prefixed
        // on the wire, reassembled from split reads, then iterated
        // without copying.
        let a = tag_shard(2, &bytes::Bytes::from(to_bytes(&1u64).unwrap()));
        let b = tag_shard(5, &bytes::Bytes::from(to_bytes(&2u64).unwrap()));
        let frame = pack_frame(&[a.clone(), b.clone()]);
        let wire = wire_frames(&[&frame]);
        let mut asm = FrameAssembler::with_capacity(8);
        let frames = assemble_in_chunks(&mut asm, &wire, 3);
        assert_eq!(frames.len(), 1);
        let shards: Vec<u32> = frame_messages(&frames[0])
            .unwrap()
            .map(|m| split_shard_ref(m).unwrap().0)
            .collect();
        assert_eq!(shards, vec![2, 5]);
    }
}
