//! Byte transports between runtime nodes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use twostep_telemetry::ObserverHandle;
use twostep_types::ProcessId;

use crate::{codec, RuntimeError};

/// A way to move encoded messages between processes.
///
/// Implementations must be cheap to clone (handles to shared state) and
/// tolerate sends to crashed/closed destinations by dropping the message
/// (the failure model is crash-stop; a crashed process simply stops
/// receiving).
pub trait Transport: Send + Sync + 'static {
    /// Delivers `payload` from `from` to `to`'s inbox, best-effort.
    fn send(&self, from: ProcessId, to: ProcessId, payload: Bytes);

    /// Delivers a burst of payloads from `from` to `to`, best-effort and
    /// in order.
    ///
    /// This is the coalescing hook: implementations that can move many
    /// messages in one underlying operation (one syscall, one channel
    /// send) should override it — see [`codec::pack_frame`]. The default
    /// simply loops over [`Transport::send`].
    fn send_many(&self, from: ProcessId, to: ProcessId, payloads: Vec<Bytes>) {
        for p in payloads {
            self.send(from, to, p);
        }
    }
}

impl Transport for Box<dyn Transport> {
    fn send(&self, from: ProcessId, to: ProcessId, payload: Bytes) {
        (**self).send(from, to, payload);
    }

    fn send_many(&self, from: ProcessId, to: ProcessId, payloads: Vec<Bytes>) {
        (**self).send_many(from, to, payloads);
    }
}

/// Which socket transport a cluster deploys over; the in-memory
/// transport is a separate assembly path (no sockets to choose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SocketBackend {
    /// [`TcpTransport`]: blocking writer thread per destination, read
    /// thread per accepted connection.
    Blocking,
    /// [`crate::ReactorTransport`]: one non-blocking event-loop thread
    /// owning every socket.
    Reactor,
}

impl SocketBackend {
    /// Spawns the chosen backend for process `me`, erased behind the
    /// [`Transport`] trait object so cluster assembly is
    /// backend-generic.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures (the reactor switches the
    /// listener into non-blocking mode).
    pub(crate) fn spawn(
        self,
        me: ProcessId,
        peers: Vec<std::net::SocketAddr>,
        listener: TcpListener,
        inbox: Sender<(ProcessId, Bytes)>,
        obs: ObserverHandle,
    ) -> Result<Box<dyn Transport>, RuntimeError> {
        Ok(match self {
            SocketBackend::Blocking => {
                Box::new(TcpTransport::spawn(me, peers, listener, inbox, obs))
            }
            SocketBackend::Reactor => Box::new(crate::ReactorTransport::spawn(
                me, peers, listener, inbox, obs,
            )?),
        })
    }
}

/// Wraps `inbox` in an emulated one-way link latency: every payload
/// sent to the returned sender arrives at `inbox` `delay` later, in
/// order. A zero delay returns `inbox` unchanged.
///
/// This is the receive-side counterpart of
/// [`InMemoryTransport::with_delay`], used to give the socket backends
/// the same `link_delay` semantics: socket payloads already carry real
/// (tiny) localhost latency, and this adds the configured wall-clock
/// component on delivery. Two threads keep the emulation honest under
/// load: a stamper that assigns each payload its maturity instant the
/// moment it arrives (so delays never compound while the line sleeps),
/// and the delay line that holds payloads until maturity. Both exit
/// when the returned sender's clones are dropped.
pub(crate) fn delayed_inbox(
    delay: std::time::Duration,
    inbox: Sender<(ProcessId, Bytes)>,
) -> Sender<(ProcessId, Bytes)> {
    if delay.is_zero() {
        return inbox;
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(ProcessId, Bytes)>();
    let (line_tx, line_rx) =
        crossbeam::channel::unbounded::<(std::time::Instant, ProcessId, Bytes)>();
    thread::Builder::new()
        .name("twostep-link-stamper".into())
        .spawn(move || {
            while let Ok((from, payload)) = rx.recv() {
                let _ = line_tx.send((std::time::Instant::now() + delay, from, payload));
            }
        })
        .expect("spawn link-stamper thread");
    thread::Builder::new()
        .name("twostep-link-line".into())
        .spawn(move || {
            while let Ok((deliver_at, from, payload)) = line_rx.recv() {
                let now = std::time::Instant::now();
                if deliver_at > now {
                    thread::sleep(deliver_at - now);
                }
                if inbox.send((from, payload)).is_err() {
                    return; // destination node gone
                }
            }
        })
        .expect("spawn link-line thread");
    tx
}

/// A payload queued on the delay line:
/// `(maturity instant, from, to, payload)`.
type DelayedPayload = (std::time::Instant, ProcessId, ProcessId, Bytes);

/// In-memory transport: each node's inbox is a crossbeam channel.
///
/// A multi-payload [`Transport::send_many`] is coalesced into one
/// channel send carrying a packed frame; receivers split it back apart
/// with [`codec::unpack_frame`] (the runtime node does this for every
/// inbox payload).
///
/// [`InMemoryTransport::with_delay`] adds an emulated one-way link
/// latency: every payload is held on a single delay-line thread for the
/// configured duration before reaching its inbox. Because the delay is
/// uniform and the line is FIFO, per-link ordering is preserved exactly
/// as in the zero-delay transport. This turns the in-memory cluster
/// into a deployment where commit latency is wall-clock-bound rather
/// than CPU-bound — the regime real WAN deployments live in, and the
/// one where pipelining and sharding visibly buy throughput.
///
/// # Example
///
/// ```rust
/// use twostep_runtime::{InMemoryTransport, Transport};
/// use twostep_types::ProcessId;
/// use bytes::Bytes;
///
/// let (transport, inboxes) = InMemoryTransport::new(3);
/// transport.send(ProcessId::new(0), ProcessId::new(2), Bytes::from_static(b"hi"));
/// let (from, payload) = inboxes[2].recv().unwrap();
/// assert_eq!(from, ProcessId::new(0));
/// assert_eq!(&payload[..], b"hi");
/// ```
#[derive(Clone)]
pub struct InMemoryTransport {
    inboxes: Arc<Vec<Sender<(ProcessId, Bytes)>>>,
    /// When set, payloads detour through the delay-line thread instead
    /// of going straight to the destination inbox; the duration is the
    /// one-way latency added to every payload.
    delay_line: Option<(std::time::Duration, Sender<DelayedPayload>)>,
}

impl InMemoryTransport {
    /// Creates a transport for `n` processes, returning the receiving
    /// ends of the inboxes in process order.
    pub fn new(n: usize) -> (Self, Vec<crossbeam::channel::Receiver<(ProcessId, Bytes)>>) {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = crossbeam::channel::unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            InMemoryTransport {
                inboxes: Arc::new(senders),
                delay_line: None,
            },
            receivers,
        )
    }

    /// Like [`InMemoryTransport::new`], but every payload is delivered
    /// `delay` after it is sent (emulated one-way link latency).
    ///
    /// A zero `delay` is the plain instant transport. Otherwise one
    /// delay-line thread is spawned; it exits when every transport
    /// clone is dropped. Uniform delay + FIFO line means per-link (and
    /// in fact global) send order is preserved.
    pub fn with_delay(
        n: usize,
        delay: std::time::Duration,
    ) -> (Self, Vec<crossbeam::channel::Receiver<(ProcessId, Bytes)>>) {
        let (mut transport, receivers) = Self::new(n);
        if delay.is_zero() {
            return (transport, receivers);
        }
        let (dtx, drx) = crossbeam::channel::unbounded::<DelayedPayload>();
        let inboxes = Arc::clone(&transport.inboxes);
        thread::Builder::new()
            .name("twostep-delay-line".into())
            .spawn(move || {
                while let Ok((deliver_at, from, to, payload)) = drx.recv() {
                    let now = std::time::Instant::now();
                    if deliver_at > now {
                        thread::sleep(deliver_at - now);
                    }
                    if let Some(tx) = inboxes.get(to.index()) {
                        // A closed inbox means the destination crashed: drop.
                        let _ = tx.send((from, payload));
                    }
                }
            })
            .expect("spawn delay-line thread");
        transport.delay_line = Some((delay, dtx));
        (transport, receivers)
    }
}

impl Transport for InMemoryTransport {
    fn send(&self, from: ProcessId, to: ProcessId, payload: Bytes) {
        if let Some((delay, line)) = &self.delay_line {
            // Stamp the maturity instant at send time; the delay-line
            // thread holds the payload until the stamp matures. A send
            // failure only means global teardown — drop it, matching
            // the crash-stop convention.
            let _ = line.send((std::time::Instant::now() + *delay, from, to, payload));
            return;
        }
        if let Some(tx) = self.inboxes.get(to.index()) {
            // A closed inbox means the destination crashed: drop.
            let _ = tx.send((from, payload));
        }
    }

    fn send_many(&self, from: ProcessId, to: ProcessId, payloads: Vec<Bytes>) {
        match payloads.len() {
            0 => {}
            1 => self.send(from, to, payloads.into_iter().next().expect("len checked")),
            _ => self.send(from, to, codec::pack_frame(&payloads)),
        }
    }
}

/// TCP transport over localhost (or any reachable addresses): one
/// listener per process, and one send queue + writer thread per
/// destination.
///
/// Wire format per connection: a 4-byte little-endian sender id
/// handshake, then frames of `[len: u32 LE][payload]`. A payload is
/// either a single encoded message or a coalesced multi-message frame
/// ([`codec::pack_frame`]); the receive path forwards each payload to
/// the inbox whole, and consumers iterate coalesced frames in place
/// with [`codec::frame_messages`] — the same contract as the in-memory
/// and reactor backends.
///
/// Sends are asynchronous: [`Transport::send`] enqueues and returns.
/// The destination's writer thread drains its queue — everything queued
/// at flush time (up to [`MAX_COALESCE`]) goes out as **one** frame and
/// one `write` syscall, which is where batched SMR traffic stops paying
/// a syscall per message. On a write failure the writer redials once
/// (after [`RECONNECT_BACKOFF`]) before dropping the flush; drops and
/// successful reconnects are reported to the attached observer.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
    queues: Mutex<Vec<Option<Sender<Bytes>>>>,
}

/// State shared with writer threads (deliberately excludes the queues:
/// writers exit when the queue senders drop, so the transport handle
/// going away tears the writers down rather than leaking them).
struct TcpInner {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    obs: ObserverHandle,
}

/// How long a failed flush waits before its single reconnect attempt.
pub const RECONNECT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(10);

/// Upper bound on messages coalesced into one wire frame.
pub const MAX_COALESCE: usize = 128;

impl TcpTransport {
    /// Binds a listener on an OS-assigned localhost port and returns its
    /// address, for assembling the peer list before
    /// [`TcpTransport::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_ephemeral() -> Result<(TcpListener, SocketAddr), RuntimeError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(RuntimeError::Io)?;
        let addr = listener.local_addr().map_err(RuntimeError::Io)?;
        Ok((listener, addr))
    }

    /// Creates the transport for process `me` given everyone's listening
    /// addresses, and spawns the accept loop feeding `inbox`. Pass
    /// [`ObserverHandle::none`] to run unobserved; with an observer
    /// attached, dropped flushes (`message_dropped`, once per message)
    /// and successful redials (`reconnected`) are reported.
    ///
    /// The accept thread runs until the listener is closed (process
    /// drop) or the inbox receiver goes away; writer threads exit when
    /// the transport handle is dropped.
    pub fn spawn(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        listener: TcpListener,
        inbox: Sender<(ProcessId, Bytes)>,
        obs: ObserverHandle,
    ) -> Arc<Self> {
        let transport = Arc::new(TcpTransport {
            queues: Mutex::new((0..peers.len()).map(|_| None).collect()),
            inner: Arc::new(TcpInner { me, peers, obs }),
        });
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let inbox = inbox.clone();
                thread::spawn(move || read_loop(stream, inbox));
            }
        });
        transport
    }

    /// The send queue to `to`, lazily spawning its writer thread.
    fn queue_to(&self, to: ProcessId) -> Option<Sender<Bytes>> {
        let mut queues = self.queues.lock();
        let slot = queues.get_mut(to.index())?;
        if slot.is_none() {
            let (tx, rx) = crossbeam::channel::unbounded();
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || writer_loop(inner, to, rx));
            *slot = Some(tx);
        }
        slot.clone()
    }
}

impl Transport for Arc<TcpTransport> {
    fn send(&self, _from: ProcessId, to: ProcessId, payload: Bytes) {
        if let Some(q) = self.queue_to(to) {
            let _ = q.send(payload);
        }
    }

    fn send_many(&self, _from: ProcessId, to: ProcessId, payloads: Vec<Bytes>) {
        if let Some(q) = self.queue_to(to) {
            for p in payloads {
                let _ = q.send(p);
            }
        }
    }
}

/// Drains the send queue toward `to`: each iteration flushes everything
/// queued (bounded by [`MAX_COALESCE`]) as one wire frame.
fn writer_loop(inner: Arc<TcpInner>, to: ProcessId, rx: Receiver<Bytes>) {
    let mut conn: Option<TcpStream> = None;
    loop {
        // Block for the first payload; the queue senders dropping is the
        // shutdown signal.
        let Ok(first) = rx.recv() else { return };
        let mut flush = vec![first];
        while flush.len() < MAX_COALESCE {
            match rx.try_recv() {
                Ok(p) => flush.push(p),
                Err(_) => break,
            }
        }
        let frame = if flush.len() == 1 {
            // Single message: legacy payload, no frame envelope.
            flush[0].clone()
        } else {
            codec::pack_frame(&flush)
        };
        if write_frame(&inner, &mut conn, to, &frame) {
            continue;
        }
        // Single bounded reconnect: back off briefly, redial once, and
        // resend the whole frame. If that fails too the peer is treated
        // as crashed and the flush is dropped (crash-stop semantics).
        thread::sleep(RECONNECT_BACKOFF);
        conn = None;
        if write_frame(&inner, &mut conn, to, &frame) {
            inner.obs.reconnected(inner.me);
        } else {
            for _ in &flush {
                inner.obs.message_dropped(inner.me, to);
            }
        }
    }
}

/// One attempt to put a whole `[len][frame]` on the wire, dialing and
/// handshaking first if no connection is cached. On failure the cached
/// connection is forgotten — a partially-written frame poisons the
/// stream's framing, so the connection is dropped, not just the frame.
fn write_frame(
    inner: &TcpInner,
    conn: &mut Option<TcpStream>,
    to: ProcessId,
    frame: &Bytes,
) -> bool {
    if conn.is_none() {
        let Some(addr) = inner.peers.get(to.index()) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return false;
        };
        // Handshake: announce who we are.
        if stream.write_all(&inner.me.as_u32().to_le_bytes()).is_err() {
            return false;
        }
        *conn = Some(stream);
    }
    let Some(stream) = conn.as_mut() else {
        return false;
    };
    let len = (frame.len() as u32).to_le_bytes();
    if stream.write_all(&len).is_err() || stream.write_all(frame).is_err() {
        *conn = None;
        return false;
    }
    true
}

fn read_loop(mut stream: TcpStream, inbox: Sender<(ProcessId, Bytes)>) {
    let mut id_buf = [0u8; 4];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let from = ProcessId::new(u32::from_le_bytes(id_buf));
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        // Forward the wire frame whole — consumers iterate coalesced
        // frames in place with [`codec::frame_messages`], exactly as
        // they do for the in-memory and reactor backends, so the read
        // path allocates once per wire frame rather than per message.
        // (A corrupt coalesced frame is dropped by the consumer; the
        // outer length prefix was intact, so the connection's framing
        // still is too.)
        if inbox.send((from, Bytes::from(payload))).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn tcp(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        listener: TcpListener,
        inbox: Sender<(ProcessId, Bytes)>,
    ) -> Arc<TcpTransport> {
        TcpTransport::spawn(me, peers, listener, inbox, ObserverHandle::none())
    }

    /// Receives until `n` individual messages have arrived, iterating
    /// coalesced frames in place — the consumer-side contract shared by
    /// every backend.
    fn recv_messages(
        rx: &crossbeam::channel::Receiver<(ProcessId, Bytes)>,
        n: usize,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        let mut out = Vec::new();
        while out.len() < n {
            let (from, payload) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            for m in codec::frame_messages(&payload).unwrap() {
                out.push((from, m.to_vec()));
            }
        }
        out
    }

    #[test]
    fn memory_transport_routes_by_destination() {
        let (t, inboxes) = InMemoryTransport::new(3);
        t.send(p(0), p(1), Bytes::from_static(b"a"));
        t.send(p(2), p(1), Bytes::from_static(b"b"));
        t.send(p(1), p(0), Bytes::from_static(b"c"));
        let got1: Vec<_> = (0..2).map(|_| inboxes[1].recv().unwrap()).collect();
        assert_eq!(got1[0], (p(0), Bytes::from_static(b"a")));
        assert_eq!(got1[1], (p(2), Bytes::from_static(b"b")));
        assert_eq!(inboxes[0].recv().unwrap().0, p(1));
        assert!(inboxes[2].is_empty());
    }

    #[test]
    fn memory_transport_tolerates_closed_inbox() {
        let (t, inboxes) = InMemoryTransport::new(2);
        drop(inboxes);
        // Must not panic.
        t.send(p(0), p(1), Bytes::from_static(b"x"));
    }

    #[test]
    fn memory_transport_out_of_range_destination_is_dropped() {
        let (t, _inboxes) = InMemoryTransport::new(2);
        t.send(p(0), p(9), Bytes::from_static(b"x"));
    }

    #[test]
    fn delayed_memory_transport_holds_payloads_for_the_link_latency() {
        let (t, inboxes) = InMemoryTransport::with_delay(2, Duration::from_millis(20));
        let sent = std::time::Instant::now();
        t.send(p(0), p(1), Bytes::from_static(b"a"));
        t.send(p(0), p(1), Bytes::from_static(b"b"));
        let (from, first) = inboxes[1].recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            sent.elapsed() >= Duration::from_millis(20),
            "payload delivered after {:?}, before the 20ms link latency",
            sent.elapsed()
        );
        assert_eq!((from, &first[..]), (p(0), &b"a"[..]));
        // Uniform delay + FIFO line: send order is delivery order.
        let (_, second) = inboxes[1].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&second[..], b"b");
    }

    #[test]
    fn delayed_inbox_holds_payloads_and_preserves_order() {
        let (tx, rx) = unbounded();
        let delayed = delayed_inbox(Duration::from_millis(20), tx);
        let sent = std::time::Instant::now();
        delayed.send((p(0), Bytes::from_static(b"a"))).unwrap();
        delayed.send((p(0), Bytes::from_static(b"b"))).unwrap();
        let (from, first) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            sent.elapsed() >= Duration::from_millis(20),
            "payload delivered after {:?}, before the 20ms link latency",
            sent.elapsed()
        );
        assert_eq!((from, &first[..]), (p(0), &b"a"[..]));
        assert_eq!(
            &rx.recv_timeout(Duration::from_secs(5)).unwrap().1[..],
            b"b"
        );
    }

    #[test]
    fn zero_delayed_inbox_is_the_original_sender() {
        let (tx, rx) = unbounded();
        let delayed = delayed_inbox(Duration::ZERO, tx);
        delayed.send((p(1), Bytes::from_static(b"x"))).unwrap();
        // No detour: the payload is immediately available.
        assert_eq!(rx.try_recv().unwrap(), (p(1), Bytes::from_static(b"x")));
    }

    #[test]
    fn zero_delay_memory_transport_skips_the_delay_line() {
        let (t, inboxes) = InMemoryTransport::with_delay(1, Duration::ZERO);
        t.send(p(0), p(0), Bytes::from_static(b"x"));
        // Delivery is synchronous with the send — no thread detour.
        assert_eq!(inboxes[0].try_recv().unwrap().1, Bytes::from_static(b"x"));
    }

    #[test]
    fn memory_transport_coalesces_bursts_into_one_channel_send() {
        let (t, inboxes) = InMemoryTransport::new(2);
        let burst = vec![
            Bytes::from_static(b"one"),
            Bytes::from_static(b"two"),
            Bytes::from_static(b"three"),
        ];
        t.send_many(p(0), p(1), burst.clone());
        // Exactly one channel item: the packed frame.
        let (from, packed) = inboxes[1].recv().unwrap();
        assert_eq!(from, p(0));
        assert!(inboxes[1].is_empty());
        assert_eq!(codec::unpack_frame(&packed).unwrap(), burst);
        // A one-element burst stays a legacy payload.
        t.send_many(p(0), p(1), vec![Bytes::from_static(b"solo")]);
        assert_eq!(&inboxes[1].recv().unwrap().1[..], b"solo");
    }

    #[test]
    fn tcp_transport_end_to_end() {
        // Two processes, full handshake + framing.
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let peers = vec![a0, a1];
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = tcp(p(0), peers.clone(), l0, tx0);
        let t1 = tcp(p(1), peers, l1, tx1);

        t0.send(p(0), p(1), Bytes::from_static(b"hello"));
        let (from, payload) = rx1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(0));
        assert_eq!(&payload[..], b"hello");

        // Reply on the reverse direction (separate connection).
        t1.send(p(1), p(0), Bytes::from_static(b"world"));
        let (from, payload) = rx0.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(1));
        assert_eq!(&payload[..], b"world");

        // Multiple sends keep their boundaries and order — whether or
        // not the writer coalesced them into one wire frame, the
        // consumer-side frame iteration sees individual messages.
        t0.send(p(0), p(1), Bytes::from_static(b"one"));
        t0.send(p(0), p(1), Bytes::from_static(b"two"));
        let msgs = recv_messages(&rx1, 2);
        assert_eq!(msgs[0], (p(0), b"one".to_vec()));
        assert_eq!(msgs[1], (p(0), b"two".to_vec()));
    }

    #[test]
    fn tcp_burst_arrives_as_individual_messages_in_order() {
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = tcp(p(0), vec![a0, a1], l0, tx0);
        let _t1 = tcp(p(1), vec![a0, a1], l1, tx1);

        let burst: Vec<Bytes> = (0..10u8)
            .map(|i| Bytes::from(vec![i; (i as usize % 4) + 1]))
            .collect();
        t0.send_many(p(0), p(1), burst.clone());
        let got = recv_messages(&rx1, burst.len());
        for (want, (from, msg)) in burst.iter().zip(&got) {
            assert_eq!(*from, p(0));
            assert_eq!(msg, &want.to_vec());
        }
    }

    #[test]
    fn tcp_send_to_dead_peer_does_not_panic() {
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        // Reserve then drop a second address so nothing listens there.
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        drop(l1);
        let (tx0, _rx0) = unbounded();
        let t0 = tcp(p(0), vec![a0, a1], l0, tx0);
        t0.send(p(0), p(1), Bytes::from_static(b"into the void"));
    }

    #[test]
    fn tcp_send_to_dead_peer_records_drop_after_one_retry() {
        let (metrics, obs) = twostep_telemetry::Metrics::shared();
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        drop(l1);
        let (tx0, _rx0) = unbounded();
        let t0 = TcpTransport::spawn(p(0), vec![a0, a1], l0, tx0, obs);
        t0.send(p(0), p(1), Bytes::from_static(b"x"));
        // The writer thread retries once then records the drop; poll for
        // it (sends are asynchronous now).
        for _ in 0..200 {
            let snap = metrics.snapshot();
            if snap.dropped > 0 {
                assert_eq!(snap.dropped, 1, "both attempts failed: one drop");
                assert_eq!(snap.reconnects, 0);
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("no drop recorded after a send to a dead peer");
    }

    #[test]
    fn tcp_send_reconnects_after_remote_close() {
        // Peer 1 accepts connections but its inbox receiver is gone, so
        // every accepted connection is torn down immediately. Writes on
        // the stale connection eventually fail; the writer must redial
        // (listener still alive) and count a reconnect rather than
        // dropping silently forever.
        let (metrics, obs) = twostep_telemetry::Metrics::shared();
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = TcpTransport::spawn(p(0), vec![a0, a1], l0, tx0, obs);
        let _t1 = tcp(p(1), vec![a0, a1], l1, tx1);
        drop(rx1); // remote tears down every accepted connection
        for _ in 0..100 {
            t0.send(p(0), p(1), Bytes::from_static(b"probe"));
            if metrics.snapshot().reconnects > 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("no reconnect recorded after 100 sends to a closing peer");
    }

    /// Satellite check: length-prefixed frames survive a sender that
    /// dribbles the handshake and frames onto the wire one byte at a
    /// time (maximally split writes → maximally partial reads).
    #[test]
    fn framing_survives_byte_at_a_time_writes() {
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx1, rx1) = unbounded();
        let _t1 = tcp(p(1), vec![a1], l1, tx1);

        let mut wire = Vec::new();
        wire.extend_from_slice(&7u32.to_le_bytes()); // handshake: sender id
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"omega!".as_slice()] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }

        let mut stream = TcpStream::connect(a1).unwrap();
        for byte in wire {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
        }

        let expect = [
            (p(7), Bytes::from_static(b"alpha")),
            (p(7), Bytes::from_static(b"")),
            (p(7), Bytes::from_static(b"omega!")),
        ];
        for want in expect {
            assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap(), want);
        }
    }

    /// Satellite check: a frame boundary falling mid-write (length
    /// prefix split from payload, payload split across two writes)
    /// never merges or truncates frames.
    #[test]
    fn framing_survives_frames_split_across_writes() {
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx1, rx1) = unbounded();
        let _t1 = tcp(p(1), vec![a1], l1, tx1);

        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        for payload in [b"first-frame".as_slice(), b"second".as_slice()] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }

        // Split the byte stream at deliberately awkward points: inside
        // the handshake, inside a length prefix, and inside a payload.
        let mut stream = TcpStream::connect(a1).unwrap();
        for chunk in [&wire[..2], &wire[2..6], &wire[6..13], &wire[13..]] {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }

        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(3), Bytes::from_static(b"first-frame"))
        );
        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(3), Bytes::from_static(b"second"))
        );
    }
}
