//! Byte transports between runtime nodes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use crossbeam::channel::Sender;
use parking_lot::Mutex;

use twostep_telemetry::ObserverHandle;
use twostep_types::ProcessId;

use crate::RuntimeError;

/// A way to move encoded messages between processes.
///
/// Implementations must be cheap to clone (handles to shared state) and
/// tolerate sends to crashed/closed destinations by dropping the message
/// (the failure model is crash-stop; a crashed process simply stops
/// receiving).
pub trait Transport: Send + Sync + 'static {
    /// Delivers `payload` from `from` to `to`'s inbox, best-effort.
    fn send(&self, from: ProcessId, to: ProcessId, payload: Bytes);
}

/// In-memory transport: each node's inbox is a crossbeam channel.
///
/// # Example
///
/// ```rust
/// use twostep_runtime::{InMemoryTransport, Transport};
/// use twostep_types::ProcessId;
/// use bytes::Bytes;
///
/// let (transport, inboxes) = InMemoryTransport::new(3);
/// transport.send(ProcessId::new(0), ProcessId::new(2), Bytes::from_static(b"hi"));
/// let (from, payload) = inboxes[2].recv().unwrap();
/// assert_eq!(from, ProcessId::new(0));
/// assert_eq!(&payload[..], b"hi");
/// ```
#[derive(Clone)]
pub struct InMemoryTransport {
    inboxes: Arc<Vec<Sender<(ProcessId, Bytes)>>>,
}

impl InMemoryTransport {
    /// Creates a transport for `n` processes, returning the receiving
    /// ends of the inboxes in process order.
    pub fn new(n: usize) -> (Self, Vec<crossbeam::channel::Receiver<(ProcessId, Bytes)>>) {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = crossbeam::channel::unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            InMemoryTransport {
                inboxes: Arc::new(senders),
            },
            receivers,
        )
    }
}

impl Transport for InMemoryTransport {
    fn send(&self, from: ProcessId, to: ProcessId, payload: Bytes) {
        if let Some(tx) = self.inboxes.get(to.index()) {
            // A closed inbox means the destination crashed: drop.
            let _ = tx.send((from, payload));
        }
    }
}

/// TCP transport over localhost (or any reachable addresses): one
/// listener per process, lazily-established outgoing connections, and
/// length-prefixed frames.
///
/// Wire format per connection: a 4-byte little-endian sender id
/// handshake, then frames of `[len: u32 LE][payload]`.
///
/// A failed send gets **one** bounded reconnect attempt (after
/// [`RECONNECT_BACKOFF`]) before the message is dropped; drops and
/// successful reconnects are reported to the attached observer.
pub struct TcpTransport {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    connections: Mutex<Vec<Option<TcpStream>>>,
    obs: ObserverHandle,
}

/// How long a send waits before its single reconnect attempt.
pub const RECONNECT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(10);

impl TcpTransport {
    /// Binds a listener on an OS-assigned localhost port and returns its
    /// address, for assembling the peer list before [`TcpTransport::new`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_ephemeral() -> Result<(TcpListener, SocketAddr), RuntimeError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(RuntimeError::Io)?;
        let addr = listener.local_addr().map_err(RuntimeError::Io)?;
        Ok((listener, addr))
    }

    /// Creates the transport for process `me` given everyone's
    /// listening addresses, and spawns the accept loop feeding `inbox`.
    ///
    /// The accept thread runs until the listener is closed (process
    /// drop) or the inbox receiver goes away.
    pub fn new(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        listener: TcpListener,
        inbox: Sender<(ProcessId, Bytes)>,
    ) -> Arc<Self> {
        Self::new_observed(me, peers, listener, inbox, ObserverHandle::none())
    }

    /// Like [`TcpTransport::new`], with telemetry hooks: dropped
    /// messages (`message_dropped`) and successful send-path reconnects
    /// (`reconnected`) are reported to `obs`.
    pub fn new_observed(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        listener: TcpListener,
        inbox: Sender<(ProcessId, Bytes)>,
        obs: ObserverHandle,
    ) -> Arc<Self> {
        let transport = Arc::new(TcpTransport {
            me,
            connections: Mutex::new((0..peers.len()).map(|_| None).collect()),
            peers,
            obs,
        });
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let inbox = inbox.clone();
                thread::spawn(move || read_loop(stream, inbox));
            }
        });
        transport
    }

    fn connection_to(&self, to: ProcessId) -> Option<TcpStream> {
        let mut conns = self.connections.lock();
        let slot = conns.get_mut(to.index())?;
        if slot.is_none() {
            let stream = TcpStream::connect(self.peers[to.index()]).ok()?;
            let mut s = stream.try_clone().ok()?;
            // Handshake: announce who we are.
            s.write_all(&self.me.as_u32().to_le_bytes()).ok()?;
            *slot = Some(s);
        }
        slot.as_ref().and_then(|s| s.try_clone().ok())
    }

    /// One attempt to put the whole frame on the wire. On failure the
    /// cached connection is forgotten so the next attempt redials.
    fn try_send_frame(&self, to: ProcessId, payload: &Bytes) -> bool {
        let Some(mut stream) = self.connection_to(to) else {
            return false;
        };
        let len = (payload.len() as u32).to_le_bytes();
        if stream.write_all(&len).is_err() || stream.write_all(payload).is_err() {
            // A partially-written frame poisons the stream's framing:
            // drop the connection, not just the message.
            self.connections.lock()[to.index()] = None;
            return false;
        }
        true
    }
}

fn read_loop(mut stream: TcpStream, inbox: Sender<(ProcessId, Bytes)>) {
    let mut id_buf = [0u8; 4];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let from = ProcessId::new(u32::from_le_bytes(id_buf));
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        if inbox.send((from, Bytes::from(payload))).is_err() {
            return;
        }
    }
}

impl Transport for Arc<TcpTransport> {
    fn send(&self, from: ProcessId, to: ProcessId, payload: Bytes) {
        if self.try_send_frame(to, &payload) {
            return;
        }
        // Single bounded reconnect: back off briefly, redial once, and
        // resend the whole frame. If that fails too the peer is treated
        // as crashed and the message is dropped (crash-stop semantics).
        thread::sleep(RECONNECT_BACKOFF);
        if self.try_send_frame(to, &payload) {
            self.obs.reconnected(self.me);
        } else {
            self.obs.message_dropped(from, to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn memory_transport_routes_by_destination() {
        let (t, inboxes) = InMemoryTransport::new(3);
        t.send(p(0), p(1), Bytes::from_static(b"a"));
        t.send(p(2), p(1), Bytes::from_static(b"b"));
        t.send(p(1), p(0), Bytes::from_static(b"c"));
        let got1: Vec<_> = (0..2).map(|_| inboxes[1].recv().unwrap()).collect();
        assert_eq!(got1[0], (p(0), Bytes::from_static(b"a")));
        assert_eq!(got1[1], (p(2), Bytes::from_static(b"b")));
        assert_eq!(inboxes[0].recv().unwrap().0, p(1));
        assert!(inboxes[2].is_empty());
    }

    #[test]
    fn memory_transport_tolerates_closed_inbox() {
        let (t, inboxes) = InMemoryTransport::new(2);
        drop(inboxes);
        // Must not panic.
        t.send(p(0), p(1), Bytes::from_static(b"x"));
    }

    #[test]
    fn memory_transport_out_of_range_destination_is_dropped() {
        let (t, _inboxes) = InMemoryTransport::new(2);
        t.send(p(0), p(9), Bytes::from_static(b"x"));
    }

    #[test]
    fn tcp_transport_end_to_end() {
        // Two processes, full handshake + framing.
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let peers = vec![a0, a1];
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = TcpTransport::new(p(0), peers.clone(), l0, tx0);
        let t1 = TcpTransport::new(p(1), peers, l1, tx1);

        t0.send(p(0), p(1), Bytes::from_static(b"hello"));
        let (from, payload) = rx1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(0));
        assert_eq!(&payload[..], b"hello");

        // Reply on the reverse direction (separate connection).
        t1.send(p(1), p(0), Bytes::from_static(b"world"));
        let (from, payload) = rx0.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(1));
        assert_eq!(&payload[..], b"world");

        // Multiple frames on one connection keep their boundaries.
        t0.send(p(0), p(1), Bytes::from_static(b"one"));
        t0.send(p(0), p(1), Bytes::from_static(b"two"));
        assert_eq!(
            &rx1.recv_timeout(Duration::from_secs(5)).unwrap().1[..],
            b"one"
        );
        assert_eq!(
            &rx1.recv_timeout(Duration::from_secs(5)).unwrap().1[..],
            b"two"
        );
    }

    #[test]
    fn tcp_send_to_dead_peer_does_not_panic() {
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        // Reserve then drop a second address so nothing listens there.
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        drop(l1);
        let (tx0, _rx0) = unbounded();
        let t0 = TcpTransport::new(p(0), vec![a0, a1], l0, tx0);
        t0.send(p(0), p(1), Bytes::from_static(b"into the void"));
    }

    #[test]
    fn tcp_send_to_dead_peer_records_drop_after_one_retry() {
        let (metrics, obs) = twostep_telemetry::Metrics::shared();
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        drop(l1);
        let (tx0, _rx0) = unbounded();
        let t0 = TcpTransport::new_observed(p(0), vec![a0, a1], l0, tx0, obs);
        t0.send(p(0), p(1), Bytes::from_static(b"x"));
        let snap = metrics.snapshot();
        assert_eq!(snap.dropped, 1, "both attempts failed: one drop");
        assert_eq!(snap.reconnects, 0);
    }

    #[test]
    fn tcp_send_reconnects_after_remote_close() {
        // Peer 1 accepts connections but its inbox receiver is gone, so
        // every accepted connection is torn down immediately. Writes on
        // the stale connection eventually fail; the send path must
        // redial (listener still alive) and count a reconnect rather
        // than dropping silently forever.
        let (metrics, obs) = twostep_telemetry::Metrics::shared();
        let (l0, a0) = TcpTransport::bind_ephemeral().unwrap();
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = TcpTransport::new_observed(p(0), vec![a0, a1], l0, tx0, obs);
        let _t1 = TcpTransport::new(p(1), vec![a0, a1], l1, tx1);
        drop(rx1); // remote tears down every accepted connection
        for _ in 0..100 {
            t0.send(p(0), p(1), Bytes::from_static(b"probe"));
            if metrics.snapshot().reconnects > 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("no reconnect recorded after 100 sends to a closing peer");
    }

    /// Satellite check: length-prefixed frames survive a sender that
    /// dribbles the handshake and frames onto the wire one byte at a
    /// time (maximally split writes → maximally partial reads).
    #[test]
    fn framing_survives_byte_at_a_time_writes() {
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx1, rx1) = unbounded();
        let _t1 = TcpTransport::new(p(1), vec![a1], l1, tx1);

        let mut wire = Vec::new();
        wire.extend_from_slice(&7u32.to_le_bytes()); // handshake: sender id
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"omega!".as_slice()] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }

        let mut stream = TcpStream::connect(a1).unwrap();
        for byte in wire {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
        }

        let expect = [
            (p(7), Bytes::from_static(b"alpha")),
            (p(7), Bytes::from_static(b"")),
            (p(7), Bytes::from_static(b"omega!")),
        ];
        for want in expect {
            assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap(), want);
        }
    }

    /// Satellite check: a frame boundary falling mid-write (length
    /// prefix split from payload, payload split across two writes)
    /// never merges or truncates frames.
    #[test]
    fn framing_survives_frames_split_across_writes() {
        let (l1, a1) = TcpTransport::bind_ephemeral().unwrap();
        let (tx1, rx1) = unbounded();
        let _t1 = TcpTransport::new(p(1), vec![a1], l1, tx1);

        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        for payload in [b"first-frame".as_slice(), b"second".as_slice()] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }

        // Split the byte stream at deliberately awkward points: inside
        // the handshake, inside a length prefix, and inside a payload.
        let mut stream = TcpStream::connect(a1).unwrap();
        for chunk in [&wire[..2], &wire[2..6], &wire[6..13], &wire[13..]] {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }

        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(3), Bytes::from_static(b"first-frame"))
        );
        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(3), Bytes::from_static(b"second"))
        );
    }
}
