//! One protocol instance on one OS thread.

use std::collections::HashMap;
use std::thread::{self, JoinHandle};
use std::time::{Duration as WallDuration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{ProcessId, Value, DELTA};

use crate::codec;
use crate::transport::Transport;

/// Control events a node accepts besides network traffic.
#[derive(Debug)]
pub enum Control<V> {
    /// A client proposal submitted at this node (the *proxy* role from
    /// the paper's introduction).
    Propose(V),
    /// Stop the node immediately — models a crash (no clean handover).
    Shutdown,
}

/// Handle to a spawned node.
#[derive(Debug)]
pub struct NodeHandle<V> {
    id: ProcessId,
    control: Sender<Control<V>>,
    join: Option<JoinHandle<()>>,
}

impl<V> NodeHandle<V> {
    /// The node's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Submits a client proposal; silently dropped if the node crashed.
    pub fn propose(&self, value: V) {
        let _ = self.control.send(Control::Propose(value));
    }

    /// A clone of the control channel, for client handles that outlive
    /// borrows of the node (see `ProxyClient`).
    pub(crate) fn control(&self) -> Sender<Control<V>> {
        self.control.clone()
    }

    /// Crashes the node: it stops processing immediately.
    pub fn crash(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Whether the node thread has been shut down via this handle.
    pub fn is_crashed(&self) -> bool {
        self.join.is_none()
    }
}

impl<V> Drop for NodeHandle<V> {
    fn drop(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Engine-level options for [`spawn_node`].
///
/// * `wall_delta` — the wall-clock duration of one `Δ`; protocol timer
///   delays (expressed in virtual units where `Δ` = [`DELTA`]) are
///   scaled by `wall_delta / Δ`. Defaults to 10ms.
/// * `decisions` — every `decide(v)` event is reported as
///   `(id, v, wall time)`.
/// * `observer` — engine telemetry: per-kind encoded sizes
///   (`bytes_sent`) and this process's first decision latency in
///   wall-clock **microseconds** since node start (`decision_latency`).
///   Protocol-level events are reported by the protocol instance itself
///   — pass the same handle to its builder's `observed`.
#[derive(Debug, Clone)]
pub struct NodeOptions<V> {
    /// Wall-clock length of one `Δ`.
    pub wall_delta: WallDuration,
    /// Sink for `decide(v)` events.
    pub decisions: Sender<(ProcessId, V, Instant)>,
    /// Engine telemetry hooks (detached by default).
    pub observer: ObserverHandle,
}

impl<V> NodeOptions<V> {
    /// Options with the default Δ (10ms) and no observer.
    pub fn new(decisions: Sender<(ProcessId, V, Instant)>) -> Self {
        NodeOptions {
            wall_delta: WallDuration::from_millis(10),
            decisions,
            observer: ObserverHandle::none(),
        }
    }

    /// Sets the wall-clock length of one `Δ`.
    #[must_use]
    pub fn wall_delta(mut self, wall_delta: WallDuration) -> Self {
        self.wall_delta = wall_delta;
        self
    }

    /// Attaches engine telemetry hooks.
    #[must_use]
    pub fn observed(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }
}

/// Spawns `protocol` on its own thread.
///
/// * `inbox` — encoded messages from the transport's receive side;
///   coalesced frames ([`codec::pack_frame`]) are split and dispatched
///   message by message.
/// * `transport` — used for this node's sends (self-sends included).
///   One protocol step's sends are grouped per destination and handed
///   to [`Transport::send_many`] as a burst, so coalescing transports
///   move them in one operation.
pub fn spawn_node<V, P, T>(
    mut protocol: P,
    inbox: Receiver<(ProcessId, Bytes)>,
    transport: T,
    opts: NodeOptions<V>,
) -> NodeHandle<V>
where
    V: Value,
    P: Protocol<V> + 'static,
    T: Transport,
{
    let id = protocol.id();
    let (control_tx, control_rx) = crossbeam::channel::unbounded::<Control<V>>();
    let join = thread::Builder::new()
        .name(format!("twostep-node-{id}"))
        .spawn(move || {
            let started = Instant::now();
            let mut node = NodeCtx {
                id,
                transport,
                wall_delta: opts.wall_delta,
                timers: HashMap::new(),
                decisions: opts.decisions,
                obs: opts.observer,
                started,
                decided: false,
            };
            let mut eff = Effects::new();
            protocol.on_start(&mut eff);
            node.apply(eff.drain());

            loop {
                // Fire due timers first.
                let now = Instant::now();
                let due: Vec<TimerId> = node
                    .timers
                    .iter()
                    .filter(|(_, deadline)| **deadline <= now)
                    .map(|(t, _)| *t)
                    .collect();
                for t in due {
                    node.timers.remove(&t);
                    let mut eff = Effects::new();
                    protocol.on_timer(t, &mut eff);
                    node.apply(eff);
                }
                let wait = node
                    .timers
                    .values()
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(WallDuration::from_millis(50));

                crossbeam::channel::select! {
                    recv(inbox) -> msg => match msg {
                        Ok((from, payload)) => {
                            // A transport payload may be a coalesced
                            // frame carrying many messages; a malformed
                            // envelope drops the whole frame, a
                            // malformed sub-payload only itself.
                            if let Ok(msgs) = codec::unpack_frame(&payload) {
                                for m in msgs {
                                    if let Ok(decoded) =
                                        codec::from_bytes::<P::Message>(&m)
                                    {
                                        let mut eff = Effects::new();
                                        protocol.on_message(from, decoded, &mut eff);
                                        node.apply(eff);
                                    }
                                }
                            }
                        }
                        Err(_) => break, // transport torn down
                    },
                    recv(control_rx) -> ctl => match ctl {
                        Ok(Control::Propose(v)) => {
                            let mut eff = Effects::new();
                            protocol.on_propose(v, &mut eff);
                            node.apply(eff);
                        }
                        Ok(Control::Shutdown) | Err(_) => break,
                    },
                    default(wait) => {}
                }
            }
        })
        .expect("spawn node thread");

    NodeHandle {
        id,
        control: control_tx,
        join: Some(join),
    }
}

/// Spawns `protocol` unobserved with an explicit Δ.
#[deprecated(since = "0.1.0", note = "use `spawn_node` with `NodeOptions`")]
pub fn spawn<V, P, T>(
    protocol: P,
    inbox: Receiver<(ProcessId, Bytes)>,
    transport: T,
    wall_delta: WallDuration,
    decisions: Sender<(ProcessId, V, Instant)>,
) -> NodeHandle<V>
where
    V: Value,
    P: Protocol<V> + 'static,
    T: Transport,
{
    spawn_node(
        protocol,
        inbox,
        transport,
        NodeOptions::new(decisions).wall_delta(wall_delta),
    )
}

/// Spawns `protocol` with telemetry hooks and an explicit Δ.
#[deprecated(
    since = "0.1.0",
    note = "use `spawn_node` with `NodeOptions::new(..).observed(obs)`"
)]
pub fn spawn_observed<V, P, T>(
    protocol: P,
    inbox: Receiver<(ProcessId, Bytes)>,
    transport: T,
    wall_delta: WallDuration,
    decisions: Sender<(ProcessId, V, Instant)>,
    obs: ObserverHandle,
) -> NodeHandle<V>
where
    V: Value,
    P: Protocol<V> + 'static,
    T: Transport,
{
    spawn_node(
        protocol,
        inbox,
        transport,
        NodeOptions::new(decisions)
            .wall_delta(wall_delta)
            .observed(obs),
    )
}

/// The per-thread engine state shared by every effect application.
struct NodeCtx<V, T> {
    id: ProcessId,
    transport: T,
    wall_delta: WallDuration,
    timers: HashMap<TimerId, Instant>,
    decisions: Sender<(ProcessId, V, Instant)>,
    obs: ObserverHandle,
    started: Instant,
    decided: bool,
}

impl<V: Value, T: Transport> NodeCtx<V, T> {
    fn apply<M: std::fmt::Debug + serde::Serialize>(&mut self, eff: Effects<V, M>) {
        for v in eff.decisions {
            let at = Instant::now();
            if !self.decided {
                self.decided = true;
                // Wall-clock latency since node start, in microseconds.
                let us = at.duration_since(self.started).as_micros();
                self.obs
                    .decision_latency(self.id, u64::try_from(us).unwrap_or(u64::MAX));
            }
            let _ = self.decisions.send((self.id, v, at));
        }
        // Group the step's sends per destination (preserving each
        // destination's order) so a coalescing transport can flush one
        // burst per peer instead of one frame per message.
        let mut by_dest: Vec<(ProcessId, Vec<Bytes>)> = Vec::new();
        for (to, msg) in eff.sends {
            match codec::to_bytes(&msg) {
                Ok(bytes) => {
                    if self.obs.is_attached() {
                        self.obs.bytes_sent(self.id, &msg_kind(&msg), bytes.len());
                    }
                    let payload = Bytes::from(bytes);
                    match by_dest.iter_mut().find(|(d, _)| *d == to) {
                        Some((_, burst)) => burst.push(payload),
                        None => by_dest.push((to, vec![payload])),
                    }
                }
                Err(_) => {
                    // Unencodable messages indicate a bug in the value
                    // type; drop rather than poison the node.
                    debug_assert!(false, "failed to encode outgoing message");
                }
            }
        }
        for (to, burst) in by_dest {
            self.transport.send_many(self.id, to, burst);
        }
        for (timer, delay) in eff.timer_sets {
            let wall = self
                .wall_delta
                .mul_f64(delay.units() as f64 / DELTA.units() as f64);
            self.timers.insert(timer, Instant::now() + wall);
        }
        for timer in eff.timer_cancels {
            self.timers.remove(&timer);
        }
    }
}

/// The wire kind of a message: its `Debug` rendering up to the first
/// payload delimiter (`(`, `{` or space) — e.g. `Vote(…)` → `"Vote"`.
fn msg_kind<M: std::fmt::Debug>(msg: &M) -> String {
    let full = format!("{msg:?}");
    let cut = full
        .find(['(', '{', ' '])
        .map(|i| full[..i].trim_end().to_string());
    cut.unwrap_or(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryTransport;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Echo(u64);

    /// Decides any proposed value; echoes messages back to the sender;
    /// decides 999 when its timer fires.
    #[derive(Debug)]
    struct Toy {
        me: ProcessId,
        decided: Option<u64>,
    }

    impl Protocol<u64> for Toy {
        type Message = Echo;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, eff: &mut Effects<u64, Echo>) {
            eff.set_timer(TimerId(9), twostep_types::Duration::deltas(4));
        }
        fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, Echo>) {
            self.decided = Some(v);
            eff.decide(v);
        }
        fn on_message(&mut self, from: ProcessId, m: Echo, eff: &mut Effects<u64, Echo>) {
            if m.0 < 10 {
                eff.send(from, Echo(m.0 + 100));
            } else {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, eff: &mut Effects<u64, Echo>) {
            if self.decided.is_none() {
                self.decided = Some(999);
                eff.decide(999);
            }
        }
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn spawn_toy(
        me: ProcessId,
        inbox: Receiver<(ProcessId, Bytes)>,
        transport: InMemoryTransport,
        wall_delta: WallDuration,
        dtx: Sender<(ProcessId, u64, Instant)>,
    ) -> NodeHandle<u64> {
        spawn_node(
            Toy { me, decided: None },
            inbox,
            transport,
            NodeOptions::new(dtx).wall_delta(wall_delta),
        )
    }

    #[test]
    fn propose_reaches_protocol_and_decision_reported() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport,
            WallDuration::from_millis(10),
            dtx,
        );
        node.propose(42);
        let (who, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((who, v), (p(0), 42));
    }

    #[test]
    fn messages_roundtrip_through_codec_and_transport() {
        let (transport, mut inboxes) = InMemoryTransport::new(2);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let rx1 = inboxes.pop().unwrap();
        let rx0 = inboxes.pop().unwrap();
        let _n0 = spawn_toy(
            p(0),
            rx0,
            transport.clone(),
            WallDuration::from_millis(10),
            dtx.clone(),
        );
        let _n1 = spawn_toy(
            p(1),
            rx1,
            transport.clone(),
            WallDuration::from_millis(10),
            dtx,
        );
        // Inject Echo(5) to node 1 as if from node 0: node 1 replies
        // Echo(105) to node 0, which decides 105.
        let bytes = codec::to_bytes(&Echo(5)).unwrap();
        transport.send(p(0), p(1), Bytes::from(bytes));
        let (who, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((who, v), (p(0), 105));
    }

    #[test]
    fn coalesced_inbox_frames_are_dispatched_per_message() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let _node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport.clone(),
            WallDuration::from_millis(10),
            dtx,
        );
        // Two deciding messages coalesced into one transport payload:
        // both must reach the protocol, in order.
        transport.send_many(
            p(0),
            p(0),
            vec![
                Bytes::from(codec::to_bytes(&Echo(11)).unwrap()),
                Bytes::from(codec::to_bytes(&Echo(12)).unwrap()),
            ],
        );
        let (_, v1, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        let (_, v2, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((v1, v2), (11, 12));
    }

    #[test]
    fn timer_fires_at_wall_deadline() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let started = Instant::now();
        let _node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport,
            WallDuration::from_millis(5), // Δ = 5ms → timer at 20ms
            dtx,
        );
        let (_, v, at) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!(v, 999);
        let elapsed = at.duration_since(started);
        assert!(
            elapsed >= WallDuration::from_millis(15),
            "fired too early: {elapsed:?}"
        );
    }

    #[test]
    fn crash_stops_processing() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport,
            WallDuration::from_millis(10),
            dtx,
        );
        node.crash();
        assert!(node.is_crashed());
        node.propose(42);
        assert!(drx.recv_timeout(WallDuration::from_millis(300)).is_err());
    }

    #[test]
    fn malformed_frames_are_dropped() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let _node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport.clone(),
            WallDuration::from_millis(10),
            dtx,
        );
        transport.send(p(0), p(0), Bytes::from_static(b"\xFF\xFF"));
        // A truncated coalesced frame (valid magic, missing body) must
        // also be survivable.
        let packed = codec::pack_frame(&[Bytes::from_static(b"\x00\x00\x00\x00")]);
        transport.send(p(0), p(0), Bytes::from(packed[..6].to_vec()));
        // Node survives garbage and still handles proposals.
        _node.propose(7);
        let (_, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!(v, 7);
    }
}
