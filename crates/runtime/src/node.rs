//! One protocol instance on one OS thread.

use std::collections::HashMap;
use std::thread::{self, JoinHandle};
use std::time::{Duration as WallDuration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{ProcessId, Value, DELTA};

use crate::codec;
use crate::transport::Transport;

/// Control events a node accepts besides network traffic.
#[derive(Debug)]
pub enum Control<V> {
    /// A client proposal submitted at this node (the *proxy* role from
    /// the paper's introduction). Routed to shard 0 — the only shard on
    /// an unsharded node.
    Propose(V),
    /// A client proposal addressed to a specific consensus group on a
    /// sharded node. `ProposeAt(0, v)` is equivalent to `Propose(v)`.
    ProposeAt(u32, V),
    /// Stop the node immediately — models a crash (no clean handover).
    Shutdown,
}

/// Handle to a spawned node.
#[derive(Debug)]
pub struct NodeHandle<V> {
    id: ProcessId,
    control: Sender<Control<V>>,
    join: Option<JoinHandle<()>>,
}

impl<V> NodeHandle<V> {
    /// The node's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Submits a client proposal; silently dropped if the node crashed.
    pub fn propose(&self, value: V) {
        let _ = self.control.send(Control::Propose(value));
    }

    /// Submits a client proposal to a specific shard of a sharded node;
    /// silently dropped if the node crashed or the shard is not hosted.
    pub fn propose_at(&self, shard: u32, value: V) {
        let _ = self.control.send(Control::ProposeAt(shard, value));
    }

    /// A clone of the control channel, for client handles that outlive
    /// borrows of the node (see `ProxyClient`).
    pub(crate) fn control(&self) -> Sender<Control<V>> {
        self.control.clone()
    }

    /// Crashes the node: it stops processing immediately.
    pub fn crash(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Whether the node thread has been shut down via this handle.
    pub fn is_crashed(&self) -> bool {
        self.join.is_none()
    }
}

impl<V> Drop for NodeHandle<V> {
    fn drop(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Engine-level options for [`spawn_node`] / [`spawn_sharded_node`].
///
/// * `wall_delta` — the wall-clock duration of one `Δ`; protocol timer
///   delays (expressed in virtual units where `Δ` = [`DELTA`]) are
///   scaled by `wall_delta / Δ`. Defaults to 10ms.
/// * `decisions` — every `decide(v)` event is reported as
///   `(id, shard, v, wall time)`; unsharded nodes always report
///   shard 0.
/// * `observer` — engine telemetry: per-kind encoded sizes
///   (`bytes_sent`) and this process's first decision latency in
///   wall-clock **microseconds** since node start (`decision_latency`).
///   Protocol-level events are reported by the protocol instance itself
///   — pass the same handle to its builder's `observed`.
/// * `shard_observers` — optional per-shard engine telemetry; shard `s`
///   reports to `shard_observers[s]` when present, falling back to the
///   shared `observer` otherwise.
#[derive(Debug, Clone)]
pub struct NodeOptions<V> {
    /// Wall-clock length of one `Δ`.
    pub wall_delta: WallDuration,
    /// Sink for `decide(v)` events, tagged with the deciding shard.
    pub decisions: Sender<(ProcessId, u32, V, Instant)>,
    /// Engine telemetry hooks (detached by default).
    pub observer: ObserverHandle,
    /// Per-shard engine telemetry hooks (empty by default).
    pub shard_observers: Vec<ObserverHandle>,
}

impl<V> NodeOptions<V> {
    /// Options with the default Δ (10ms) and no observer.
    pub fn new(decisions: Sender<(ProcessId, u32, V, Instant)>) -> Self {
        NodeOptions {
            wall_delta: WallDuration::from_millis(10),
            decisions,
            observer: ObserverHandle::none(),
            shard_observers: Vec::new(),
        }
    }

    /// Sets the wall-clock length of one `Δ`.
    #[must_use]
    pub fn wall_delta(mut self, wall_delta: WallDuration) -> Self {
        self.wall_delta = wall_delta;
        self
    }

    /// Attaches engine telemetry hooks.
    #[must_use]
    pub fn observed(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Attaches per-shard engine telemetry hooks (shard `s` uses entry
    /// `s`; missing entries fall back to the shared observer).
    #[must_use]
    pub fn shard_observed(mut self, shard_observers: Vec<ObserverHandle>) -> Self {
        self.shard_observers = shard_observers;
        self
    }
}

/// Spawns `protocol` on its own thread.
///
/// * `inbox` — encoded messages from the transport's receive side;
///   coalesced frames ([`codec::pack_frame`]) are split and dispatched
///   message by message.
/// * `transport` — used for this node's sends (self-sends included).
///   One protocol step's sends are grouped per destination and handed
///   to [`Transport::send_many`] as a burst, so coalescing transports
///   move them in one operation.
pub fn spawn_node<V, P, T>(
    protocol: P,
    inbox: Receiver<(ProcessId, Bytes)>,
    transport: T,
    opts: NodeOptions<V>,
) -> NodeHandle<V>
where
    V: Value,
    P: Protocol<V> + 'static,
    T: Transport,
{
    spawn_sharded_node(vec![protocol], inbox, transport, opts)
}

/// Spawns one OS thread hosting `shards.len()` independent protocol
/// instances multiplexed over one transport endpoint — the sharded
/// deployment shape: every physical node runs one replica of *every*
/// consensus group.
///
/// All instances must report the same [`Protocol::id`] (they are the
/// same physical node). Shard `s`'s outgoing messages are wrapped in a
/// [`codec::tag_shard`] envelope when the node hosts more than one
/// shard; a single-shard node stays on the untagged legacy wire format,
/// which [`codec::split_shard`] reads back as shard 0. Incoming
/// payloads are first split out of coalesced frames, then routed to
/// their shard's instance; traffic for shards this node does not host
/// is dropped and reported to the observer.
///
/// # Panics
///
/// Panics if `shards` is empty or the instances disagree on their
/// process id.
pub fn spawn_sharded_node<V, P, T>(
    mut shards: Vec<P>,
    inbox: Receiver<(ProcessId, Bytes)>,
    transport: T,
    opts: NodeOptions<V>,
) -> NodeHandle<V>
where
    V: Value,
    P: Protocol<V> + 'static,
    T: Transport,
{
    assert!(!shards.is_empty(), "a node hosts at least one shard");
    let id = shards[0].id();
    assert!(
        shards.iter().all(|s| s.id() == id),
        "all shard instances on one node share its process id"
    );
    let nshards = shards.len();
    let (control_tx, control_rx) = crossbeam::channel::unbounded::<Control<V>>();
    let join = thread::Builder::new()
        .name(format!("twostep-node-{id}"))
        .spawn(move || {
            let started = Instant::now();
            let obs: Vec<ObserverHandle> = (0..nshards)
                .map(|s| {
                    opts.shard_observers
                        .get(s)
                        .cloned()
                        .unwrap_or_else(|| opts.observer.clone())
                })
                .collect();
            let mut node = NodeCtx {
                id,
                transport,
                wall_delta: opts.wall_delta,
                // Messages are shard-tagged only when there is traffic
                // from more than one group to tell apart.
                tagged: nshards > 1,
                timers: HashMap::new(),
                decisions: opts.decisions,
                obs,
                started,
                decided: vec![false; nshards],
            };
            for (s, shard) in shards.iter_mut().enumerate() {
                let mut eff = Effects::new();
                shard.on_start(&mut eff);
                node.apply(s as u32, eff.drain());
            }

            loop {
                // Fire due timers first.
                let now = Instant::now();
                let due: Vec<(u32, TimerId)> = node
                    .timers
                    .iter()
                    .filter(|(_, deadline)| **deadline <= now)
                    .map(|(k, _)| *k)
                    .collect();
                for (s, t) in due {
                    node.timers.remove(&(s, t));
                    let mut eff = Effects::new();
                    shards[s as usize].on_timer(t, &mut eff);
                    node.apply(s, eff);
                }
                let wait = node
                    .timers
                    .values()
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(WallDuration::from_millis(50));

                crossbeam::channel::select! {
                    recv(inbox) -> msg => match msg {
                        Ok((from, payload)) => {
                            // A transport payload may be a coalesced
                            // frame carrying many messages; a malformed
                            // envelope drops the whole frame, a
                            // malformed sub-payload only itself. The
                            // messages are iterated in place — no
                            // per-message allocation on the hot path.
                            if let Ok(msgs) = codec::frame_messages(&payload) {
                                for m in msgs {
                                    node.dispatch(&mut shards, from, m);
                                }
                            }
                        }
                        Err(_) => break, // transport torn down
                    },
                    recv(control_rx) -> ctl => match ctl {
                        Ok(Control::Propose(v)) => {
                            let mut eff = Effects::new();
                            shards[0].on_propose(v, &mut eff);
                            node.apply(0, eff);
                        }
                        Ok(Control::ProposeAt(s, v)) => {
                            if let Some(shard) = shards.get_mut(s as usize) {
                                let mut eff = Effects::new();
                                shard.on_propose(v, &mut eff);
                                node.apply(s, eff);
                            }
                        }
                        Ok(Control::Shutdown) | Err(_) => break,
                    },
                    default(wait) => {}
                }
            }
        })
        .expect("spawn node thread");

    NodeHandle {
        id,
        control: control_tx,
        join: Some(join),
    }
}

/// The per-thread engine state shared by every effect application.
struct NodeCtx<V, T> {
    id: ProcessId,
    transport: T,
    wall_delta: WallDuration,
    tagged: bool,
    timers: HashMap<(u32, TimerId), Instant>,
    decisions: Sender<(ProcessId, u32, V, Instant)>,
    obs: Vec<ObserverHandle>,
    started: Instant,
    decided: Vec<bool>,
}

impl<V: Value, T: Transport> NodeCtx<V, T> {
    /// Routes one decoded-off-the-wire payload to its shard's instance.
    ///
    /// The payload is a borrowed slice into the transport frame: shard
    /// untagging ([`codec::split_shard_ref`]) and message decoding both
    /// read it in place, so dispatch allocates nothing beyond what the
    /// decoded message itself owns.
    fn dispatch<P: Protocol<V>>(&mut self, shards: &mut [P], from: ProcessId, payload: &[u8]) {
        let Ok((shard, inner)) = codec::split_shard_ref(payload) else {
            return; // truncated shard envelope: drop the message
        };
        let Some(instance) = shards.get_mut(shard as usize) else {
            // Traffic for a group this node does not host — a peer with
            // a different shard map. Observable, not fatal.
            self.obs[0].message_dropped(self.id, from);
            return;
        };
        if let Ok(decoded) = codec::from_bytes::<P::Message>(inner) {
            let mut eff = Effects::new();
            instance.on_message(from, decoded, &mut eff);
            self.apply(shard, eff);
        }
    }

    fn apply<M: std::fmt::Debug + serde::Serialize>(&mut self, shard: u32, eff: Effects<V, M>) {
        let s = shard as usize;
        for v in eff.decisions {
            let at = Instant::now();
            if !self.decided[s] {
                self.decided[s] = true;
                // Wall-clock latency since node start, in microseconds.
                let us = at.duration_since(self.started).as_micros();
                self.obs[s].decision_latency(self.id, u64::try_from(us).unwrap_or(u64::MAX));
            }
            let _ = self.decisions.send((self.id, shard, v, at));
        }
        // Group the step's sends per destination (preserving each
        // destination's order) so a coalescing transport can flush one
        // burst per peer instead of one frame per message.
        let mut by_dest: Vec<(ProcessId, Vec<Bytes>)> = Vec::new();
        for (to, msg) in eff.sends {
            match codec::to_bytes(&msg) {
                Ok(bytes) => {
                    if self.obs[s].is_attached() {
                        self.obs[s].bytes_sent(self.id, &msg_kind(&msg), bytes.len());
                    }
                    let encoded = Bytes::from(bytes);
                    let payload = if self.tagged {
                        codec::tag_shard(shard, &encoded)
                    } else {
                        encoded
                    };
                    match by_dest.iter_mut().find(|(d, _)| *d == to) {
                        Some((_, burst)) => burst.push(payload),
                        None => by_dest.push((to, vec![payload])),
                    }
                }
                Err(_) => {
                    // Unencodable messages indicate a bug in the value
                    // type; drop rather than poison the node.
                    debug_assert!(false, "failed to encode outgoing message");
                }
            }
        }
        for (to, burst) in by_dest {
            self.transport.send_many(self.id, to, burst);
        }
        for (timer, delay) in eff.timer_sets {
            let wall = self
                .wall_delta
                .mul_f64(delay.units() as f64 / DELTA.units() as f64);
            self.timers.insert((shard, timer), Instant::now() + wall);
        }
        for timer in eff.timer_cancels {
            self.timers.remove(&(shard, timer));
        }
    }
}

/// The wire kind of a message: its `Debug` rendering up to the first
/// payload delimiter (`(`, `{` or space) — e.g. `Vote(…)` → `"Vote"`.
fn msg_kind<M: std::fmt::Debug>(msg: &M) -> String {
    let full = format!("{msg:?}");
    let cut = full
        .find(['(', '{', ' '])
        .map(|i| full[..i].trim_end().to_string());
    cut.unwrap_or(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryTransport;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Echo(u64);

    /// Decides any proposed value; echoes messages back to the sender;
    /// decides 999 when its timer fires.
    #[derive(Debug)]
    struct Toy {
        me: ProcessId,
        decided: Option<u64>,
    }

    impl Protocol<u64> for Toy {
        type Message = Echo;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_start(&mut self, eff: &mut Effects<u64, Echo>) {
            eff.set_timer(TimerId(9), twostep_types::Duration::deltas(4));
        }
        fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, Echo>) {
            self.decided = Some(v);
            eff.decide(v);
        }
        fn on_message(&mut self, from: ProcessId, m: Echo, eff: &mut Effects<u64, Echo>) {
            if m.0 < 10 {
                eff.send(from, Echo(m.0 + 100));
            } else {
                self.decided = Some(m.0);
                eff.decide(m.0);
            }
        }
        fn on_timer(&mut self, _: TimerId, eff: &mut Effects<u64, Echo>) {
            if self.decided.is_none() {
                self.decided = Some(999);
                eff.decide(999);
            }
        }
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn spawn_toy(
        me: ProcessId,
        inbox: Receiver<(ProcessId, Bytes)>,
        transport: InMemoryTransport,
        wall_delta: WallDuration,
        dtx: Sender<(ProcessId, u32, u64, Instant)>,
    ) -> NodeHandle<u64> {
        spawn_node(
            Toy { me, decided: None },
            inbox,
            transport,
            NodeOptions::new(dtx).wall_delta(wall_delta),
        )
    }

    /// A node hosting `shards` independent `Toy` instances.
    fn spawn_sharded_toy(
        me: ProcessId,
        shards: usize,
        inbox: Receiver<(ProcessId, Bytes)>,
        transport: InMemoryTransport,
        dtx: Sender<(ProcessId, u32, u64, Instant)>,
    ) -> NodeHandle<u64> {
        let instances = (0..shards).map(|_| Toy { me, decided: None }).collect();
        spawn_sharded_node(
            instances,
            inbox,
            transport,
            NodeOptions::new(dtx).wall_delta(WallDuration::from_millis(10)),
        )
    }

    #[test]
    fn propose_reaches_protocol_and_decision_reported() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport,
            WallDuration::from_millis(10),
            dtx,
        );
        node.propose(42);
        let (who, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((who, shard, v), (p(0), 0, 42));
    }

    #[test]
    fn messages_roundtrip_through_codec_and_transport() {
        let (transport, mut inboxes) = InMemoryTransport::new(2);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let rx1 = inboxes.pop().unwrap();
        let rx0 = inboxes.pop().unwrap();
        let _n0 = spawn_toy(
            p(0),
            rx0,
            transport.clone(),
            WallDuration::from_millis(10),
            dtx.clone(),
        );
        let _n1 = spawn_toy(
            p(1),
            rx1,
            transport.clone(),
            WallDuration::from_millis(10),
            dtx,
        );
        // Inject Echo(5) to node 1 as if from node 0: node 1 replies
        // Echo(105) to node 0, which decides 105.
        let bytes = codec::to_bytes(&Echo(5)).unwrap();
        transport.send(p(0), p(1), Bytes::from(bytes));
        let (who, _, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((who, v), (p(0), 105));
    }

    #[test]
    fn coalesced_inbox_frames_are_dispatched_per_message() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let _node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport.clone(),
            WallDuration::from_millis(10),
            dtx,
        );
        // Two deciding messages coalesced into one transport payload:
        // both must reach the protocol, in order.
        transport.send_many(
            p(0),
            p(0),
            vec![
                Bytes::from(codec::to_bytes(&Echo(11)).unwrap()),
                Bytes::from(codec::to_bytes(&Echo(12)).unwrap()),
            ],
        );
        let (_, _, v1, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        let (_, _, v2, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((v1, v2), (11, 12));
    }

    #[test]
    fn sharded_node_routes_proposals_and_tags_decisions() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let node = spawn_sharded_toy(p(0), 3, inboxes.remove(0), transport, dtx);
        node.propose_at(2, 7);
        let (who, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((who, shard, v), (p(0), 2, 7));
        // Plain propose lands on shard 0.
        node.propose(8);
        let (_, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((shard, v), (0, 8));
        // Proposals to unhosted shards are dropped, not crashed.
        node.propose_at(9, 1);
        node.propose_at(1, 3);
        let (_, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((shard, v), (1, 3));
    }

    #[test]
    fn sharded_nodes_tag_wire_traffic_per_shard() {
        let (transport, mut inboxes) = InMemoryTransport::new(2);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let rx1 = inboxes.pop().unwrap();
        let rx0 = inboxes.pop().unwrap();
        let _n0 = spawn_sharded_toy(p(0), 2, rx0, transport.clone(), dtx.clone());
        let _n1 = spawn_sharded_toy(p(1), 2, rx1, transport.clone(), dtx);
        // Inject Echo(5) tagged for shard 1 of node 1, as if from node 0:
        // node 1's shard 1 replies Echo(105) — tagged, because the node
        // hosts two shards — and node 0's shard 1 decides 105.
        let inner = Bytes::from(codec::to_bytes(&Echo(5)).unwrap());
        transport.send(p(0), p(1), codec::tag_shard(1, &inner));
        let (who, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((who, shard, v), (p(0), 1, 105));
    }

    #[test]
    fn untagged_traffic_reaches_shard_zero_of_sharded_node() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let _node = spawn_sharded_toy(p(0), 2, inboxes.remove(0), transport.clone(), dtx);
        // A legacy untagged deciding message is shard 0 traffic.
        transport.send(p(0), p(0), Bytes::from(codec::to_bytes(&Echo(11)).unwrap()));
        let (_, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((shard, v), (0, 11));
        // Traffic for an unhosted shard is dropped; the node survives.
        let inner = Bytes::from(codec::to_bytes(&Echo(12)).unwrap());
        transport.send(p(0), p(0), codec::tag_shard(7, &inner));
        transport.send(p(0), p(0), codec::tag_shard(1, &inner));
        let (_, shard, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!((shard, v), (1, 12));
    }

    #[test]
    fn timer_fires_at_wall_deadline() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let started = Instant::now();
        let _node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport,
            WallDuration::from_millis(5), // Δ = 5ms → timer at 20ms
            dtx,
        );
        let (_, _, v, at) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!(v, 999);
        let elapsed = at.duration_since(started);
        assert!(
            elapsed >= WallDuration::from_millis(15),
            "fired too early: {elapsed:?}"
        );
    }

    #[test]
    fn crash_stops_processing() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let mut node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport,
            WallDuration::from_millis(10),
            dtx,
        );
        node.crash();
        assert!(node.is_crashed());
        node.propose(42);
        assert!(drx.recv_timeout(WallDuration::from_millis(300)).is_err());
    }

    #[test]
    fn malformed_frames_are_dropped() {
        let (transport, mut inboxes) = InMemoryTransport::new(1);
        let (dtx, drx) = crossbeam::channel::unbounded();
        let _node = spawn_toy(
            p(0),
            inboxes.remove(0),
            transport.clone(),
            WallDuration::from_millis(10),
            dtx,
        );
        transport.send(p(0), p(0), Bytes::from_static(b"\xFF\xFF"));
        // A truncated coalesced frame (valid magic, missing body) must
        // also be survivable.
        let packed = codec::pack_frame(&[Bytes::from_static(b"\x00\x00\x00\x00")]);
        transport.send(p(0), p(0), Bytes::from(packed[..6].to_vec()));
        // Node survives garbage and still handles proposals.
        _node.propose(7);
        let (_, _, v, _) = drx.recv_timeout(WallDuration::from_secs(5)).unwrap();
        assert_eq!(v, 7);
    }
}
