//! Single-threaded non-blocking reactor transport.
//!
//! [`ReactorTransport`] is the third runtime backend (alongside
//! [`crate::InMemoryTransport`] and the blocking [`crate::TcpTransport`]):
//! **one** event-loop thread owns every socket the process touches —
//! the listener, all inbound connections, and all outbound connections —
//! instead of the blocking transport's thread-per-connection layout.
//! The loop multiplexes three event sources, in the `BinaryHeap`-driven
//! shape of an event-heap simulator main loop:
//!
//! * **Commands** from [`Transport::send`]/[`Transport::send_many`]
//!   handles, delivered over a channel and woken by a [`Doorbell`]
//!   (an atomic sleeping flag + `unpark`, modeled under loom in
//!   `twostep-analysis`).
//! * **Timers** — a `BinaryHeap<Reverse<(Instant, peer)>>` of reconnect
//!   backoff deadlines; the park timeout is clipped to the next due
//!   timer.
//! * **Socket readiness** — every stream is `set_nonblocking(true)`;
//!   reads drain until `WouldBlock` into a per-connection reusable
//!   [`codec::FrameAssembler`] buffer, and writes go out as **vectored**
//!   writes ([`std::io::IoSlice`]) of the `[len][FRAME_MAGIC frame]`
//!   wire layout, so coalesced payloads are never copied into a
//!   contiguous staging buffer.
//!
//! The wire format is byte-identical to [`crate::TcpTransport`]: a
//! 4-byte little-endian sender-id handshake, then `[len: u32 LE]
//! [payload]` frames where a payload is either one legacy message or a
//! [`codec::pack_frame`]-style coalesced frame (built here as IoSlice
//! segments rather than via `pack_frame`). The two socket backends
//! interoperate in both directions.
//!
//! ## Allocation discipline
//!
//! Steady-state costs are **per flush / per wire frame**, never per
//! message: a flush allocates its payload list and header block once
//! for up to [`MAX_COALESCE`] messages, the read side reassembles into
//! a reused buffer that grows to the high-water frame size and stops,
//! and one `Bytes` is allocated per *wire frame* handed to the inbox
//! (the node iterates its messages in place via
//! [`codec::frame_messages`]).
//!
//! ## Failure semantics
//!
//! Identical to the blocking backend, checked by the shared conformance
//! suite: a failed write keeps the whole in-flight frame, waits
//! [`RECONNECT_BACKOFF`] (as a timer, not a sleeping thread), redials
//! once and resends the frame from the start — a partial write poisons
//! the old connection's framing, so it is abandoned wholesale. A second
//! failure drops the frame and reports `message_dropped` per message;
//! a successful redial reports `reconnected`. [`ReactorTransport::
//! inject_write_failure`] poisons the next write to one peer so tests
//! can exercise this path deterministically.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender, TryRecvError};

use twostep_telemetry::ObserverHandle;
use twostep_types::ProcessId;

use crate::codec::{self, FrameAssembler};
use crate::transport::{Transport, MAX_COALESCE, RECONNECT_BACKOFF};
use crate::RuntimeError;

/// Park bound while any connection is open: readiness is discovered by
/// polling (`std::net` has no selector), so this is the worst-case
/// added latency for socket traffic while the loop is otherwise idle.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Park bound while no connection exists yet: only the listener needs
/// polling, so the loop sleeps longer. Commands still wake it
/// immediately via the doorbell.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Read size requested per `read` call; the assembler grows past it on
/// demand for larger frames.
const READ_CHUNK: usize = 16 * 1024;

/// Commands from transport handles to the reactor thread.
enum Cmd {
    /// Queue one payload toward `to`.
    Send { to: ProcessId, payload: Bytes },
    /// Queue a burst toward `to`; flushed as one coalesced frame (up to
    /// [`MAX_COALESCE`] per frame).
    Burst { to: ProcessId, payloads: Vec<Bytes> },
    /// Test hook: poison the next write toward `to` (see
    /// [`ReactorTransport::inject_write_failure`]).
    FailNextWrite { to: ProcessId },
}

/// Wakes the reactor thread when a command is enqueued while it parks.
///
/// The handoff is the classic sleeping-consumer protocol: the reactor
/// publishes `sleeping = true`, *then* rechecks the command channel,
/// and only parks if it is empty; a sender enqueues, *then* swaps
/// `sleeping` to false and unparks on observing `true`. Either the
/// sender observes `sleeping` (and unparks) or the reactor's recheck
/// observes the enqueued command — a command can never be stranded
/// behind a full park. `twostep-analysis`'s loom suite model-checks
/// exactly this interleaving (`reactor_doorbell_never_loses_a_wakeup`).
struct Doorbell {
    sleeping: AtomicBool,
    /// The reactor thread to unpark; set once at spawn, before any
    /// handle exists.
    thread: StdMutex<Option<Thread>>,
}

impl Doorbell {
    fn new() -> Self {
        Doorbell {
            sleeping: AtomicBool::new(false),
            thread: StdMutex::new(None),
        }
    }

    /// Sender side: called after enqueuing a command.
    fn ring(&self) {
        if self.sleeping.swap(false, Ordering::AcqRel) {
            if let Some(t) = self.thread.lock().expect("doorbell lock").as_ref() {
                t.unpark();
            }
        }
    }
}

/// Handle to a reactor event loop; the runtime's third transport
/// backend (`ClusterBuilder::reactor()`).
///
/// Cloning is cheap (a channel sender and an `Arc`). Sends enqueue a
/// command and return immediately; the reactor thread owns all sockets
/// and performs every read, write, dial and redial itself.
///
/// # Example
///
/// ```rust
/// use twostep_runtime::{ReactorTransport, Transport};
/// use twostep_telemetry::ObserverHandle;
/// use twostep_types::ProcessId;
/// use bytes::Bytes;
/// use crossbeam::channel::unbounded;
///
/// let (l0, a0) = ReactorTransport::bind_ephemeral().unwrap();
/// let (l1, a1) = ReactorTransport::bind_ephemeral().unwrap();
/// let (tx0, _rx0) = unbounded();
/// let (tx1, rx1) = unbounded();
/// let peers = vec![a0, a1];
/// let t0 = ReactorTransport::spawn(ProcessId::new(0), peers.clone(), l0, tx0,
///     ObserverHandle::none()).unwrap();
/// let _t1 = ReactorTransport::spawn(ProcessId::new(1), peers, l1, tx1,
///     ObserverHandle::none()).unwrap();
/// t0.send(ProcessId::new(0), ProcessId::new(1), Bytes::from_static(b"hi"));
/// let (from, payload) = rx1.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
/// assert_eq!((from, &payload[..]), (ProcessId::new(0), &b"hi"[..]));
/// ```
#[derive(Clone)]
pub struct ReactorTransport {
    cmds: Sender<Cmd>,
    doorbell: Arc<Doorbell>,
}

impl ReactorTransport {
    /// Binds a listener on an OS-assigned localhost port and returns its
    /// address, for assembling the peer list before
    /// [`ReactorTransport::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_ephemeral() -> Result<(TcpListener, SocketAddr), RuntimeError> {
        crate::TcpTransport::bind_ephemeral()
    }

    /// Creates the transport for process `me` given everyone's listening
    /// addresses, and spawns the reactor thread feeding `inbox`. Pass
    /// [`ObserverHandle::none`] to run unobserved; with an observer
    /// attached, the reactor reports wire-level flush sizes
    /// (`bytes_sent` under kind `"wire"`), dropped flushes
    /// (`message_dropped`, once per message) and successful redials
    /// (`reconnected`).
    ///
    /// The reactor thread exits once every handle clone is dropped *and*
    /// its send queues have drained (pending frames are still flushed,
    /// with their one reconnect attempt, before exit).
    ///
    /// # Errors
    ///
    /// Propagates the failure to switch `listener` into non-blocking
    /// mode.
    pub fn spawn(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        listener: TcpListener,
        inbox: Sender<(ProcessId, Bytes)>,
        obs: ObserverHandle,
    ) -> Result<Self, RuntimeError> {
        listener.set_nonblocking(true).map_err(RuntimeError::Io)?;
        let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded();
        let doorbell = Arc::new(Doorbell::new());
        let reactor = Reactor {
            me,
            peers: peers.clone(),
            listener,
            inbox,
            obs,
            cmds: cmd_rx,
            doorbell: Arc::clone(&doorbell),
            inbound: Vec::new(),
            outbound: (0..peers.len()).map(|_| Outbound::new()).collect(),
            timers: BinaryHeap::new(),
            disconnected: false,
        };
        let join = thread::Builder::new()
            .name(format!("twostep-reactor-{}", me.as_u32()))
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        // Registered before any handle exists, so `ring` can never race
        // with an unset thread slot.
        *doorbell.thread.lock().expect("doorbell lock") = Some(join.thread().clone());
        Ok(ReactorTransport {
            cmds: cmd_tx,
            doorbell,
        })
    }

    /// Test hook: makes the next write toward `to` fail as if the
    /// connection broke, killing the cached connection in the process.
    ///
    /// This drives the reconnect path deterministically — real kernel
    /// socket teardown surfaces write errors at unpredictable points,
    /// so the seeded reconnect regression test injects the failure here
    /// instead. The poisoned write follows the production failure path
    /// exactly: whole-frame retention, backoff timer, single redial.
    pub fn inject_write_failure(&self, to: ProcessId) {
        let _ = self.cmds.send(Cmd::FailNextWrite { to });
        self.doorbell.ring();
    }
}

impl Transport for ReactorTransport {
    fn send(&self, _from: ProcessId, to: ProcessId, payload: Bytes) {
        let _ = self.cmds.send(Cmd::Send { to, payload });
        self.doorbell.ring();
    }

    fn send_many(&self, _from: ProcessId, to: ProcessId, payloads: Vec<Bytes>) {
        match payloads.len() {
            0 => return,
            1 => {
                let payload = payloads.into_iter().next().expect("len checked");
                let _ = self.cmds.send(Cmd::Send { to, payload });
            }
            _ => {
                let _ = self.cmds.send(Cmd::Burst { to, payloads });
            }
        }
        self.doorbell.ring();
    }
}

/// An accepted connection: stream, peeled handshake, and the reusable
/// frame-reassembly buffer.
struct Inbound {
    stream: TcpStream,
    /// `None` until the 4-byte sender-id handshake completes (it can
    /// itself arrive split across reads).
    from: Option<ProcessId>,
    asm: FrameAssembler,
}

/// Per-peer outbound state.
struct Outbound {
    conn: Option<TcpStream>,
    /// Payloads queued behind the in-flight flush.
    queue: VecDeque<Bytes>,
    /// The wire frame currently being written, if any; survives
    /// `WouldBlock` (partial write) and the single reconnect.
    flush: Option<Flush>,
    /// Set while waiting out [`RECONNECT_BACKOFF`]; cleared by the
    /// timer.
    retry_at: Option<Instant>,
    /// Whether the current flush has used its one redial.
    retried: bool,
    /// Test hook: fail the next write attempt (see
    /// [`ReactorTransport::inject_write_failure`]).
    fail_next: bool,
}

impl Outbound {
    fn new() -> Self {
        Outbound {
            conn: None,
            queue: VecDeque::new(),
            flush: None,
            retry_at: None,
            retried: false,
            fail_next: false,
        }
    }

    /// No queued work, no in-flight frame, no pending retry.
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.flush.is_none() && self.retry_at.is_none()
    }
}

/// One wire frame mid-write: up to [`MAX_COALESCE`] payloads plus the
/// header block (`[outer len][FRAME_MAGIC][count][per-message len]…`)
/// they share. Payload bytes are written straight from the `Bytes`
/// handles via `IoSlice` — never copied into a staging buffer.
struct Flush {
    msgs: Vec<Bytes>,
    heads: Vec<u8>,
    /// Bytes of the logical frame already accepted by the kernel;
    /// resumption after `WouldBlock` skips this prefix.
    written: usize,
    total: usize,
}

impl Flush {
    /// Drains up to [`MAX_COALESCE`] payloads from `queue` into a frame.
    /// A single payload goes out in the legacy (unframed) layout, many
    /// in the [`codec::FRAME_MAGIC`] coalesced layout — matching
    /// [`codec::pack_frame`] byte for byte.
    fn build(queue: &mut VecDeque<Bytes>) -> Flush {
        let k = queue.len().min(MAX_COALESCE);
        let msgs: Vec<Bytes> = queue.drain(..k).collect();
        let body_len = if msgs.len() == 1 {
            msgs[0].len()
        } else {
            8 + msgs.iter().map(|m| 4 + m.len()).sum::<usize>()
        };
        let mut heads = Vec::with_capacity(12 + 4 * msgs.len());
        heads.extend_from_slice(&(body_len as u32).to_le_bytes());
        if msgs.len() > 1 {
            heads.extend_from_slice(&codec::FRAME_MAGIC.to_le_bytes());
            heads.extend_from_slice(&(msgs.len() as u32).to_le_bytes());
            for m in &msgs {
                heads.extend_from_slice(&(m.len() as u32).to_le_bytes());
            }
        }
        Flush {
            written: 0,
            total: 4 + body_len,
            msgs,
            heads,
        }
    }

    /// The frame's wire layout as borrowed segments, in order: header
    /// block first, then (in the coalesced layout) each message's
    /// length prefix interleaved with its payload.
    fn segments(&self) -> Vec<&[u8]> {
        let mut segs = Vec::with_capacity(1 + 2 * self.msgs.len());
        if self.msgs.len() == 1 {
            segs.push(&self.heads[0..4]);
            segs.push(&self.msgs[0][..]);
        } else {
            segs.push(&self.heads[0..12]);
            for (i, m) in self.msgs.iter().enumerate() {
                segs.push(&self.heads[12 + 4 * i..16 + 4 * i]);
                segs.push(&m[..]);
            }
        }
        segs
    }

    /// Pushes frame bytes at the kernel until done or `WouldBlock`.
    ///
    /// Returns `Ok(true)` when the whole frame is out, `Ok(false)` on
    /// `WouldBlock` (state kept for resumption), and `Err` on a real
    /// write failure.
    fn write_some(&mut self, stream: &mut TcpStream) -> io::Result<bool> {
        while self.written < self.total {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(1 + 2 * self.msgs.len());
            let mut skip = self.written;
            for seg in self.segments() {
                if skip >= seg.len() {
                    skip -= seg.len();
                    continue;
                }
                if !seg[skip..].is_empty() {
                    slices.push(IoSlice::new(&seg[skip..]));
                }
                skip = 0;
            }
            match stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// What reading one inbound connection concluded.
enum ReadOutcome {
    Open,
    Closed,
    InboxGone,
}

/// The event-loop state, owned by the reactor thread.
struct Reactor {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    listener: TcpListener,
    inbox: Sender<(ProcessId, Bytes)>,
    obs: ObserverHandle,
    cmds: Receiver<Cmd>,
    doorbell: Arc<Doorbell>,
    inbound: Vec<Inbound>,
    outbound: Vec<Outbound>,
    /// Reconnect deadlines: min-heap of `(due, peer index)`.
    timers: BinaryHeap<Reverse<(Instant, usize)>>,
    /// All handles dropped; exit once the outbound queues drain.
    disconnected: bool,
}

impl Reactor {
    fn run(mut self) {
        loop {
            self.drain_cmds();
            if self.disconnected && self.outbound.iter().all(Outbound::is_idle) {
                return;
            }
            self.fire_timers();
            self.accept_new();
            if !self.read_all() {
                return; // node inbox gone: nothing left to deliver to
            }
            for peer in 0..self.outbound.len() {
                self.flush_peer(peer);
            }
            self.park();
        }
    }

    fn drain_cmds(&mut self) {
        loop {
            match self.cmds.try_recv() {
                Ok(Cmd::Send { to, payload }) => {
                    if let Some(o) = self.outbound.get_mut(to.index()) {
                        o.queue.push_back(payload);
                    }
                }
                Ok(Cmd::Burst { to, payloads }) => {
                    if let Some(o) = self.outbound.get_mut(to.index()) {
                        o.queue.extend(payloads);
                    }
                }
                Ok(Cmd::FailNextWrite { to }) => {
                    if let Some(o) = self.outbound.get_mut(to.index()) {
                        o.fail_next = true;
                    }
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    return;
                }
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        while let Some(&Reverse((due, peer))) = self.timers.peek() {
            if due > now {
                return;
            }
            self.timers.pop();
            let o = &mut self.outbound[peer];
            if o.retry_at.is_some_and(|at| at <= now) {
                // Backoff served; flush_peer redials on this pass.
                o.retry_at = None;
            }
        }
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // unusable socket: drop it
                    }
                    let _ = stream.set_nodelay(true);
                    self.inbound.push(Inbound {
                        stream,
                        from: None,
                        asm: FrameAssembler::with_capacity(READ_CHUNK),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock, or listener torn down
            }
        }
    }

    /// Drains every readable inbound connection; `false` means the node
    /// inbox is gone and the reactor should exit.
    fn read_all(&mut self) -> bool {
        let mut i = 0;
        while i < self.inbound.len() {
            match self.read_conn(i) {
                ReadOutcome::Open => i += 1,
                ReadOutcome::Closed => {
                    self.inbound.swap_remove(i);
                }
                ReadOutcome::InboxGone => return false,
            }
        }
        true
    }

    fn read_conn(&mut self, i: usize) -> ReadOutcome {
        let conn = &mut self.inbound[i];
        loop {
            // Deliver whatever completed on the previous read first.
            if conn.from.is_none() {
                if let Some(head) = conn.asm.next_bytes(4) {
                    let id = u32::from_le_bytes(head.try_into().expect("exact length"));
                    conn.from = Some(ProcessId::new(id));
                }
            }
            if let Some(from) = conn.from {
                while let Some(frame) = conn.asm.next_frame() {
                    // One allocation per *wire frame* (it may carry up
                    // to MAX_COALESCE messages): the inbox needs owned
                    // bytes, and the node iterates messages in place.
                    let payload = Bytes::from(frame.to_vec());
                    if self.inbox.send((from, payload)).is_err() {
                        return ReadOutcome::InboxGone;
                    }
                }
            }
            let slot = conn.asm.read_slot(READ_CHUNK);
            match conn.stream.read(slot) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => conn.asm.commit(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }

    /// Advances one peer's outbound state machine as far as the kernel
    /// allows: builds flushes from the queue, dials on demand, writes
    /// until `WouldBlock`, and walks the retry-once path on failure.
    fn flush_peer(&mut self, peer: usize) {
        loop {
            let o = &mut self.outbound[peer];
            if o.retry_at.is_some() {
                return; // waiting out the backoff timer
            }
            if o.flush.is_none() {
                if o.queue.is_empty() {
                    return;
                }
                o.flush = Some(Flush::build(&mut o.queue));
            }
            if o.conn.is_none() {
                match dial(self.me, self.peers.get(peer)) {
                    Ok(stream) => o.conn = Some(stream),
                    Err(_) => {
                        self.note_write_failure(peer);
                        continue;
                    }
                }
            }
            if o.fail_next {
                // Injected failure: kill the connection and take the
                // production failure path.
                o.fail_next = false;
                o.conn = None;
                self.note_write_failure(peer);
                continue;
            }
            let flush = o.flush.as_mut().expect("flush ensured above");
            let stream = o.conn.as_mut().expect("connection ensured above");
            match flush.write_some(stream) {
                Ok(true) => {
                    let total = flush.total;
                    if o.retried {
                        o.retried = false;
                        self.obs.reconnected(self.me);
                    }
                    self.outbound[peer].flush = None;
                    if self.obs.is_attached() {
                        self.obs.bytes_sent(self.me, "wire", total);
                    }
                }
                Ok(false) => return, // kernel buffer full: resume later
                Err(_) => {
                    self.outbound[peer].conn = None;
                    self.note_write_failure(peer);
                }
            }
        }
    }

    /// The retry-once state machine, shared by dial and write failures:
    /// first failure keeps the whole frame and arms the backoff timer;
    /// second failure drops the frame and reports each message.
    fn note_write_failure(&mut self, peer: usize) {
        let me = self.me;
        let o = &mut self.outbound[peer];
        let Some(flush) = o.flush.as_mut() else {
            return;
        };
        flush.written = 0; // the frame restarts from byte 0 on redial
        if !o.retried {
            o.retried = true;
            let due = Instant::now() + RECONNECT_BACKOFF;
            o.retry_at = Some(due);
            self.timers.push(Reverse((due, peer)));
        } else {
            let dropped = flush.msgs.len();
            o.flush = None;
            o.retried = false;
            for _ in 0..dropped {
                self.obs.message_dropped(me, ProcessId::new(peer as u32));
            }
        }
    }

    /// Parks until the next event could possibly arrive: a command
    /// (doorbell wakes immediately), a due timer, or — since readiness
    /// is polled — the poll interval when any socket is open.
    fn park(&mut self) {
        let has_sockets = !self.inbound.is_empty()
            || self
                .outbound
                .iter()
                .any(|o| !o.is_idle() || o.conn.is_some());
        let mut timeout = if has_sockets {
            POLL_INTERVAL
        } else {
            IDLE_PARK
        };
        if let Some(&Reverse((due, _))) = self.timers.peek() {
            timeout = timeout.min(due.saturating_duration_since(Instant::now()));
        }
        if timeout.is_zero() {
            return;
        }
        // Sleeping-consumer handoff; see [`Doorbell`].
        self.doorbell.sleeping.store(true, Ordering::Release);
        if self.cmds.is_empty() {
            thread::park_timeout(timeout);
        }
        self.doorbell.sleeping.store(false, Ordering::Release);
    }
}

/// Dials `addr` and performs the sender-id handshake, returning a
/// non-blocking stream. The dial itself is blocking — on the localhost
/// deployments this transport targets it either completes or refuses
/// immediately.
fn dial(me: ProcessId, addr: Option<&SocketAddr>) -> io::Result<TcpStream> {
    let addr = addr.ok_or_else(|| io::Error::from(io::ErrorKind::AddrNotAvailable))?;
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&me.as_u32().to_le_bytes())?;
    stream.set_nonblocking(true)?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    type Inbox = Receiver<(ProcessId, Bytes)>;

    fn pair() -> (ReactorTransport, ReactorTransport, Inbox, Inbox) {
        let (l0, a0) = ReactorTransport::bind_ephemeral().unwrap();
        let (l1, a1) = ReactorTransport::bind_ephemeral().unwrap();
        let peers = vec![a0, a1];
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 =
            ReactorTransport::spawn(p(0), peers.clone(), l0, tx0, ObserverHandle::none()).unwrap();
        let t1 = ReactorTransport::spawn(p(1), peers, l1, tx1, ObserverHandle::none()).unwrap();
        (t0, t1, rx0, rx1)
    }

    #[test]
    fn reactor_end_to_end_both_directions() {
        let (t0, t1, rx0, rx1) = pair();
        t0.send(p(0), p(1), Bytes::from_static(b"hello"));
        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(0), Bytes::from_static(b"hello"))
        );
        t1.send(p(1), p(0), Bytes::from_static(b"world"));
        assert_eq!(
            rx0.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(1), Bytes::from_static(b"world"))
        );
    }

    #[test]
    fn reactor_burst_is_one_coalesced_frame() {
        let (t0, _t1, _rx0, rx1) = pair();
        let burst: Vec<Bytes> = (0..10u8).map(|i| Bytes::from(vec![i; 3])).collect();
        t0.send_many(p(0), p(1), burst.clone());
        let (from, frame) = rx1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, p(0));
        let msgs: Vec<Bytes> = codec::unpack_frame(&frame).unwrap();
        assert_eq!(msgs, burst);
    }

    #[test]
    fn reactor_send_to_dead_peer_records_drop_after_one_retry() {
        let (metrics, obs) = twostep_telemetry::Metrics::shared();
        let (l0, a0) = ReactorTransport::bind_ephemeral().unwrap();
        let (l1, a1) = ReactorTransport::bind_ephemeral().unwrap();
        drop(l1);
        let (tx0, _rx0) = unbounded();
        let t0 = ReactorTransport::spawn(p(0), vec![a0, a1], l0, tx0, obs).unwrap();
        t0.send(p(0), p(1), Bytes::from_static(b"x"));
        for _ in 0..200 {
            let snap = metrics.snapshot();
            if snap.dropped > 0 {
                assert_eq!(snap.dropped, 1, "both attempts failed: one drop");
                assert_eq!(snap.reconnects, 0);
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("no drop recorded after a send to a dead peer");
    }

    #[test]
    fn reactor_interoperates_with_blocking_tcp() {
        // Reactor on one side, the blocking writer-thread transport on
        // the other: the wire format must be byte-identical.
        let (l0, a0) = ReactorTransport::bind_ephemeral().unwrap();
        let (l1, a1) = ReactorTransport::bind_ephemeral().unwrap();
        let peers = vec![a0, a1];
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let reactor =
            ReactorTransport::spawn(p(0), peers.clone(), l0, tx0, ObserverHandle::none()).unwrap();
        let blocking = crate::TcpTransport::spawn(p(1), peers, l1, tx1, ObserverHandle::none());

        reactor.send_many(
            p(0),
            p(1),
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"bb")],
        );
        // The blocking read side pre-splits coalesced frames.
        let mut got = Vec::new();
        while got.len() < 2 {
            let (from, payload) = rx1.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, p(0));
            for m in codec::frame_messages(&payload).unwrap() {
                got.push(m.to_vec());
            }
        }
        assert_eq!(got, vec![b"a".to_vec(), b"bb".to_vec()]);

        blocking.send(p(1), p(0), Bytes::from_static(b"back"));
        assert_eq!(
            rx0.recv_timeout(Duration::from_secs(5)).unwrap(),
            (p(1), Bytes::from_static(b"back"))
        );
    }

    #[test]
    fn reactor_queued_frames_survive_handle_drop() {
        // Handles dropped immediately after a burst: the reactor must
        // drain its queues before exiting, not abandon them.
        let (l0, a0) = ReactorTransport::bind_ephemeral().unwrap();
        let (l1, a1) = ReactorTransport::bind_ephemeral().unwrap();
        let peers = vec![a0, a1];
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 =
            ReactorTransport::spawn(p(0), peers.clone(), l0, tx0, ObserverHandle::none()).unwrap();
        let _t1 = ReactorTransport::spawn(p(1), peers, l1, tx1, ObserverHandle::none()).unwrap();
        for i in 0..50u8 {
            t0.send(p(0), p(1), Bytes::from(vec![i]));
        }
        drop(t0);
        let mut got = 0;
        while got < 50 {
            let (_, payload) = rx1.recv_timeout(Duration::from_secs(5)).unwrap();
            got += codec::frame_messages(&payload).unwrap().count();
        }
        assert_eq!(got, 50);
    }
}
