//! Fluent construction of whole clusters.

use std::time::Duration as WallDuration;

use twostep_smr::{SmrReplicaBuilder, StateMachine};
use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::cluster::Cluster;
use crate::RuntimeError;

/// Which transport a [`ClusterBuilder`] deploys over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    InMemory,
    Tcp,
}

/// Builder for [`Cluster`] — the one construction path for every
/// deployment shape.
///
/// Replaces the constructor matrix (`in_memory`/`in_memory_observed`/
/// `tcp`/`tcp_observed` × `spawn`/`spawn_observed` ×
/// `TcpTransport::new`/`new_observed`) with one fluent chain: config up
/// front, then transport choice, observer and batching/pipeline knobs,
/// then either [`ClusterBuilder::build`] with a protocol factory or
/// [`ClusterBuilder::build_smr`] for the batteries-included SMR
/// deployment. Client handles come from
/// [`Cluster::proxy_client`].
///
/// ```rust
/// use std::time::Duration;
/// use twostep_runtime::ClusterBuilder;
/// use twostep_smr::{KvCommand, KvStore};
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_object(1, 1)?;
/// let cluster = ClusterBuilder::new(cfg)
///     .wall_delta(Duration::from_millis(5))
///     .batch(16)
///     .pipeline(8)
///     .build_smr::<KvCommand, KvStore>()
///     .expect("in-memory build cannot fail");
/// let client = cluster.proxy_client(ProcessId::new(0));
/// client.propose(KvCommand::put("k", "v"));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    cfg: SystemConfig,
    wall_delta: WallDuration,
    transport: TransportKind,
    obs: ObserverHandle,
    batch: usize,
    pipeline: usize,
}

impl ClusterBuilder {
    /// Starts a builder for `cfg`: in-memory transport, `Δ` = 10ms, no
    /// observer, batch size 1 and pipeline depth 1 (the unbatched seed
    /// semantics).
    pub fn new(cfg: SystemConfig) -> Self {
        ClusterBuilder {
            cfg,
            wall_delta: WallDuration::from_millis(10),
            transport: TransportKind::InMemory,
            obs: ObserverHandle::none(),
            batch: 1,
            pipeline: 1,
        }
    }

    /// Sets the wall-clock duration of one `Δ`; it bounds the
    /// protocol's timeouts (fast-path window `2Δ`, ballot retry `5Δ`)
    /// and the SMR pump tick (`2Δ`).
    #[must_use]
    pub fn wall_delta(mut self, wall_delta: WallDuration) -> Self {
        self.wall_delta = wall_delta;
        self
    }

    /// Deploys over localhost TCP (real sockets, framing and the binary
    /// codec on every hop, coalescing writer threads).
    #[must_use]
    pub fn tcp(mut self) -> Self {
        self.transport = TransportKind::Tcp;
        self
    }

    /// Deploys over the in-memory transport (the default).
    #[must_use]
    pub fn in_memory(mut self) -> Self {
        self.transport = TransportKind::InMemory;
        self
    }

    /// Attaches telemetry hooks: nodes report per-kind wire bytes and
    /// decision latency, TCP transports report drops/reconnects, and
    /// [`ClusterBuilder::build_smr`] passes the handle through to every
    /// replica (batch sizes, queue depths, protocol paths).
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Groups up to `size` commands per consensus slot (SMR builds
    /// only; see [`SmrReplicaBuilder::batch`]).
    #[must_use]
    pub fn batch(mut self, size: usize) -> Self {
        self.batch = size;
        self
    }

    /// Keeps up to `depth` batches in flight concurrently (SMR builds
    /// only; see [`SmrReplicaBuilder::pipeline`]).
    #[must_use]
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = depth;
        self
    }

    /// Builds a cluster running `make(p)` at each process.
    ///
    /// The batching/pipeline knobs do not apply here — they configure
    /// replicas built by [`ClusterBuilder::build_smr`]; a custom
    /// protocol factory wires its own knobs. The observer *is* applied
    /// at the node and transport layers; pass the same handle into
    /// `make` for protocol-level events.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures on the TCP transport; the
    /// in-memory build is infallible.
    pub fn build<V, P, F>(self, make: F) -> Result<Cluster<V>, RuntimeError>
    where
        V: Value,
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        match self.transport {
            TransportKind::InMemory => Ok(Cluster::assemble_in_memory(
                self.cfg,
                self.wall_delta,
                make,
                self.obs,
            )),
            TransportKind::Tcp => Cluster::assemble_tcp(self.cfg, self.wall_delta, make, self.obs),
        }
    }

    /// Builds a cluster of SMR replicas replicating state machine `S`
    /// over command type `C`, with this builder's batching/pipeline
    /// knobs and observer applied to every replica.
    ///
    /// The cluster's value type is the *command*: proposals are single
    /// commands, decide events are single applied commands, and the
    /// replicas batch internally.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures on the TCP transport; the
    /// in-memory build is infallible.
    pub fn build_smr<C, S>(self) -> Result<Cluster<C>, RuntimeError>
    where
        C: Value + Ord,
        S: StateMachine<C> + 'static,
    {
        let (cfg, obs, batch, pipeline) = (self.cfg, self.obs.clone(), self.batch, self.pipeline);
        self.build(move |p| {
            SmrReplicaBuilder::new(cfg, p)
                .pipeline(pipeline)
                .batch(batch)
                .observed(obs.clone())
                .build::<C, S>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use twostep_smr::{KvCommand, KvStore};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn smr_cluster_commits_through_proxy_client() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .wall_delta(Duration::from_millis(5))
            .batch(4)
            .pipeline(2)
            .build_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.proxy_client(p(0));
        let latency =
            client.submit_and_wait(KvCommand::put("answer", "42"), Duration::from_secs(10));
        assert!(latency.is_some(), "command never committed");
    }

    #[test]
    fn builder_over_tcp_reaches_agreement() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .tcp()
            .wall_delta(Duration::from_millis(10))
            .build_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.proxy_client(p(0));
        assert!(client
            .submit_and_wait(KvCommand::put("k", "v"), Duration::from_secs(10))
            .is_some());
    }
}
