//! Fluent construction of whole clusters.

use std::time::Duration as WallDuration;

use std::sync::Arc;

use twostep_smr::{Routable, SmrReplicaBuilder, StateMachine};
use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
use twostep_types::{ProcessId, SystemConfig, Value};

use crate::cluster::Cluster;
use crate::shard::{ShardRouter, ShardedCluster};
use crate::transport::SocketBackend;
use crate::RuntimeError;

/// Which transport a [`ClusterBuilder`] deploys over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    InMemory,
    Tcp,
    Reactor,
}

impl TransportKind {
    /// The socket backend this kind maps to, if it is a socket kind.
    fn socket_backend(self) -> Option<SocketBackend> {
        match self {
            TransportKind::InMemory => None,
            TransportKind::Tcp => Some(SocketBackend::Blocking),
            TransportKind::Reactor => Some(SocketBackend::Reactor),
        }
    }
}

/// Builder for [`Cluster`] — the one construction path for every
/// deployment shape.
///
/// Replaces the constructor matrix (`in_memory`/`in_memory_observed`/
/// `tcp`/`tcp_observed` × `spawn`/`spawn_observed` ×
/// `TcpTransport::new`/`new_observed`) with one fluent chain: config up
/// front, then transport choice, observer and batching/pipeline knobs,
/// then either [`ClusterBuilder::build`] with a protocol factory or
/// [`ClusterBuilder::build_smr`] for the batteries-included SMR
/// deployment. Client handles come from
/// [`Cluster::proxy_client`].
///
/// ```rust
/// use std::time::Duration;
/// use twostep_runtime::ClusterBuilder;
/// use twostep_smr::{KvCommand, KvStore};
/// use twostep_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::minimal_object(1, 1)?;
/// let cluster = ClusterBuilder::new(cfg)
///     .wall_delta(Duration::from_millis(5))
///     .batch(16)
///     .pipeline(8)
///     .build_smr::<KvCommand, KvStore>()
///     .expect("in-memory build cannot fail");
/// let client = cluster.proxy_client(ProcessId::new(0));
/// client.propose(KvCommand::put("k", "v"));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    cfg: SystemConfig,
    wall_delta: WallDuration,
    link_delay: WallDuration,
    transport: TransportKind,
    obs: ObserverHandle,
    shard_obs: Vec<ObserverHandle>,
    batch: usize,
    pipeline: usize,
    shards: usize,
}

impl ClusterBuilder {
    /// Starts a builder for `cfg`: in-memory transport, `Δ` = 10ms, no
    /// observer, batch size 1 and pipeline depth 1 (the unbatched seed
    /// semantics).
    pub fn new(cfg: SystemConfig) -> Self {
        ClusterBuilder {
            cfg,
            wall_delta: WallDuration::from_millis(10),
            link_delay: WallDuration::ZERO,
            transport: TransportKind::InMemory,
            obs: ObserverHandle::none(),
            shard_obs: Vec::new(),
            batch: 1,
            pipeline: 1,
            shards: 1,
        }
    }

    /// Sets the wall-clock duration of one `Δ`; it bounds the
    /// protocol's timeouts (fast-path window `2Δ`, ballot retry `5Δ`)
    /// and the SMR pump tick (`2Δ`).
    #[must_use]
    pub fn wall_delta(mut self, wall_delta: WallDuration) -> Self {
        self.wall_delta = wall_delta;
        self
    }

    /// Emulates a one-way link latency: every payload is held for
    /// `delay` before delivery, on every transport. The in-memory
    /// transport detours through its delay-line thread
    /// ([`crate::InMemoryTransport::with_delay`]); the socket backends
    /// hold received payloads on the receive side before the node sees
    /// them, on top of the real (tiny) localhost latency — so a given
    /// `link_delay` is comparable across all three backends. Zero (the
    /// default) adds nothing.
    ///
    /// Use this to measure pipelining/sharding effects: with instant
    /// links a single consensus group is CPU-bound and extra in-flight
    /// capacity buys nothing, while under a wall-clock link latency the
    /// deployment behaves like a LAN/WAN one, where capacity hides
    /// latency.
    #[must_use]
    pub fn link_delay(mut self, delay: WallDuration) -> Self {
        self.link_delay = delay;
        self
    }

    /// Deploys over localhost TCP with the blocking writer-thread
    /// transport (real sockets, framing and the binary codec on every
    /// hop; one writer thread per destination, one read thread per
    /// accepted connection).
    #[must_use]
    pub fn tcp(mut self) -> Self {
        self.transport = TransportKind::Tcp;
        self
    }

    /// Deploys over localhost TCP with the reactor transport
    /// ([`crate::ReactorTransport`]): the same wire format as
    /// [`ClusterBuilder::tcp`], moved by **one** non-blocking event-loop
    /// thread per node instead of a thread per connection — vectored
    /// writes, reusable read buffers, timer-heap reconnect backoff.
    #[must_use]
    pub fn reactor(mut self) -> Self {
        self.transport = TransportKind::Reactor;
        self
    }

    /// Deploys over the in-memory transport (the default).
    #[must_use]
    pub fn in_memory(mut self) -> Self {
        self.transport = TransportKind::InMemory;
        self
    }

    /// Attaches telemetry hooks: nodes report per-kind wire bytes and
    /// decision latency, TCP transports report drops/reconnects, and
    /// [`ClusterBuilder::build_smr`] passes the handle through to every
    /// replica (batch sizes, queue depths, protocol paths).
    #[must_use]
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Groups up to `size` commands per consensus slot (SMR builds
    /// only; see [`SmrReplicaBuilder::batch`]).
    #[must_use]
    pub fn batch(mut self, size: usize) -> Self {
        self.batch = size;
        self
    }

    /// Keeps up to `depth` batches in flight concurrently (SMR builds
    /// only; see [`SmrReplicaBuilder::pipeline`]).
    #[must_use]
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = depth;
        self
    }

    /// Hash-partitions the key space across `k` independent consensus
    /// groups (sharded builds only; see
    /// [`ClusterBuilder::build_sharded_smr`]). Every node hosts one
    /// replica of every group on its existing thread and transport
    /// endpoint; group `s`'s leader preference is rotated to node
    /// `s mod n`, spreading leader load round-robin.
    #[must_use]
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k;
        self
    }

    /// Attaches per-shard engine telemetry: shard `s` reports its
    /// decision latencies, wire bytes and protocol paths to
    /// `handles[s]` (missing entries fall back to the
    /// [`ClusterBuilder::observed`] handle). Pair with
    /// `twostep_telemetry`'s `ShardedMetrics::handles`.
    #[must_use]
    pub fn shard_observers(mut self, handles: Vec<ObserverHandle>) -> Self {
        self.shard_obs = handles;
        self
    }

    /// Builds a cluster running `make(p)` at each process.
    ///
    /// The batching/pipeline knobs do not apply here — they configure
    /// replicas built by [`ClusterBuilder::build_smr`]; a custom
    /// protocol factory wires its own knobs. The observer *is* applied
    /// at the node and transport layers; pass the same handle into
    /// `make` for protocol-level events.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures on the TCP transport; the
    /// in-memory build is infallible.
    pub fn build<V, P, F>(self, make: F) -> Result<Cluster<V>, RuntimeError>
    where
        V: Value,
        P: Protocol<V> + 'static,
        F: FnMut(ProcessId) -> P,
    {
        match self.transport.socket_backend() {
            None => Ok(Cluster::assemble_in_memory(
                self.cfg,
                self.wall_delta,
                self.link_delay,
                make,
                self.obs,
            )),
            Some(backend) => Cluster::assemble_sockets(
                self.cfg,
                self.wall_delta,
                self.link_delay,
                backend,
                make,
                self.obs,
            ),
        }
    }

    /// Builds a cluster of SMR replicas replicating state machine `S`
    /// over command type `C`, with this builder's batching/pipeline
    /// knobs and observer applied to every replica.
    ///
    /// The cluster's value type is the *command*: proposals are single
    /// commands, decide events are single applied commands, and the
    /// replicas batch internally.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures on the TCP transport; the
    /// in-memory build is infallible.
    pub fn build_smr<C, S>(self) -> Result<Cluster<C>, RuntimeError>
    where
        C: Value + Ord,
        S: StateMachine<C> + 'static,
    {
        let (cfg, obs, batch, pipeline) = (self.cfg, self.obs.clone(), self.batch, self.pipeline);
        self.build(move |p| {
            SmrReplicaBuilder::new(cfg, p)
                .pipeline(pipeline)
                .batch(batch)
                .observed(obs.clone())
                .build::<C, S>()
        })
    }

    /// Builds a sharded cluster: [`ClusterBuilder::shards`] independent
    /// SMR groups, each replicating its own instance of `S` over the
    /// partition of the command space that hashes to it. The
    /// batching/pipeline knobs apply per group, so total in-flight
    /// capacity scales with the shard count.
    ///
    /// Commands pick their group via [`Routable::route_key`] hashed by
    /// the cluster's [`ShardRouter`]. A one-shard build is wire- and
    /// semantics-compatible with [`ClusterBuilder::build_smr`].
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures on the TCP transport; the
    /// in-memory build is infallible.
    pub fn build_sharded_smr<C, S>(self) -> Result<ShardedCluster<C>, RuntimeError>
    where
        C: Value + Ord + Routable,
        S: StateMachine<C> + 'static,
    {
        let router = ShardRouter::new(self.shards);
        let route = Arc::new(move |c: &C| router.route(c.route_key().as_ref()));
        let (cfg, obs, batch, pipeline) = (self.cfg, self.obs.clone(), self.batch, self.pipeline);
        let shard_obs = self.shard_obs.clone();
        let make = move |p: ProcessId, s: u32| {
            let obs = shard_obs
                .get(s as usize)
                .cloned()
                .unwrap_or_else(|| obs.clone());
            SmrReplicaBuilder::new(cfg, p)
                .pipeline(pipeline)
                .batch(batch)
                .leader_rotation(s)
                .observed(obs)
                .build::<C, S>()
        };
        let timing = crate::shard::Timing {
            wall_delta: self.wall_delta,
            link_delay: self.link_delay,
        };
        let observers = crate::shard::Observers {
            cluster: self.obs,
            shards: self.shard_obs,
        };
        match self.transport.socket_backend() {
            None => Ok(ShardedCluster::assemble_in_memory(
                self.cfg, router, timing, make, route, observers,
            )),
            Some(backend) => ShardedCluster::assemble_sockets(
                self.cfg, router, timing, backend, make, route, observers,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use twostep_smr::{KvCommand, KvStore};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn smr_cluster_commits_through_proxy_client() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .wall_delta(Duration::from_millis(5))
            .batch(4)
            .pipeline(2)
            .build_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.proxy_client(p(0));
        let latency =
            client.submit_and_wait(KvCommand::put("answer", "42"), Duration::from_secs(10));
        assert!(latency.is_some(), "command never committed");
    }

    #[test]
    fn sharded_smr_cluster_commits_across_shards() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .shards(4)
            .wall_delta(Duration::from_millis(5))
            .batch(4)
            .pipeline(2)
            .build_sharded_smr::<KvCommand, KvStore>()
            .unwrap();
        assert_eq!(cluster.shards(), 4);
        let client = cluster.client();
        let router = cluster.router();
        let mut shards_hit = std::collections::BTreeSet::new();
        for i in 0..12 {
            let cmd = KvCommand::put(format!("key-{i}"), format!("v{i}"));
            let shard = client.shard_of(&cmd);
            assert_eq!(shard, router.route(format!("key-{i}").as_bytes()));
            shards_hit.insert(shard);
            assert!(
                client
                    .submit_and_wait(cmd, Duration::from_secs(10))
                    .is_some(),
                "command {i} never committed in shard {shard}"
            );
        }
        assert!(shards_hit.len() > 1, "12 keys should span multiple shards");
        assert!(cluster.agreement(), "per-shard agreement must hold");
    }

    #[test]
    fn sharded_cluster_routes_same_key_to_same_shard() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .shards(8)
            .wall_delta(Duration::from_millis(5))
            .build_sharded_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.client();
        let put = KvCommand::put("stable-key", "1");
        let del = KvCommand::delete("stable-key");
        assert_eq!(
            client.shard_of(&put),
            client.shard_of(&del),
            "all operations on one key share one log"
        );
    }

    #[test]
    fn builder_over_reactor_reaches_agreement() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .reactor()
            .wall_delta(Duration::from_millis(10))
            .build_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.proxy_client(p(0));
        assert!(client
            .submit_and_wait(KvCommand::put("k", "v"), Duration::from_secs(10))
            .is_some());
    }

    #[test]
    fn sharded_builder_over_reactor_commits_across_shards() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .reactor()
            .shards(4)
            .wall_delta(Duration::from_millis(5))
            .batch(4)
            .pipeline(2)
            .build_sharded_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.client();
        for i in 0..8 {
            assert!(
                client
                    .submit_and_wait(
                        KvCommand::put(format!("rk-{i}"), format!("v{i}")),
                        Duration::from_secs(10)
                    )
                    .is_some(),
                "command {i} never committed over the reactor backend"
            );
        }
        assert!(cluster.agreement());
    }

    #[test]
    fn builder_over_tcp_reaches_agreement() {
        let cfg = SystemConfig::minimal_object(1, 1).unwrap();
        let cluster = ClusterBuilder::new(cfg)
            .tcp()
            .wall_delta(Duration::from_millis(10))
            .build_smr::<KvCommand, KvStore>()
            .unwrap();
        let client = cluster.proxy_client(p(0));
        assert!(client
            .submit_and_wait(KvCommand::put("k", "v"), Duration::from_secs(10))
            .is_some());
    }
}
