//! Client handles bound to one proxy replica.

use std::sync::Arc;
use std::time::{Duration as WallDuration, Instant};

use crossbeam::channel::Sender;

use twostep_telemetry::ObserverHandle;
use twostep_types::{ProcessId, Value};

use crate::cluster::ClusterShared;
use crate::node::Control;

/// A closed-loop client of one proxy node.
///
/// Obtained from [`Cluster::proxy_client`](crate::Cluster::proxy_client).
/// Each in-flight [`ProxyClient::submit_and_wait`] registers a
/// value-keyed waiter with the cluster router, so concurrent clients
/// (even on the same proxy) wait for their own commands independently —
/// the closed-loop pattern the throughput harness drives — and the
/// router's per-event cost stays O(1) in the number of clients.
///
/// Clients identify their commands **by value**: submit values that are
/// unique per client (e.g. a key embedding the client id and a sequence
/// number) or [`ProxyClient::submit_and_wait`] may match another
/// client's identical command committing first. For measuring commit
/// latency that early match is harmless — some copy of the value
/// committed — but sequencing guarantees only hold for unique values.
pub struct ProxyClient<V> {
    proxy: ProcessId,
    control: Sender<Control<V>>,
    shared: Arc<ClusterShared<V>>,
    obs: ObserverHandle,
}

impl<V: Value> ProxyClient<V> {
    pub(crate) fn new(
        proxy: ProcessId,
        control: Sender<Control<V>>,
        shared: Arc<ClusterShared<V>>,
        obs: ObserverHandle,
    ) -> Self {
        ProxyClient {
            proxy,
            control,
            shared,
            obs,
        }
    }

    /// The proxy this client submits to.
    pub fn proxy(&self) -> ProcessId {
        self.proxy
    }

    /// Fire-and-forget submission; silently dropped if the proxy
    /// crashed.
    pub fn propose(&self, value: V) {
        let _ = self.control.send(Control::Propose(value));
    }

    /// Submits `value` and blocks until the proxy reports it decided
    /// (in whatever slot/batch it ended up in), or `timeout` elapses.
    ///
    /// Returns the wall-clock submit→commit latency. With batching this
    /// is the per-command *amortized* latency — each command in a batch
    /// observes its own wait — and it is reported to the attached
    /// observer's `amortized_latency` hook in microseconds.
    pub fn submit_and_wait(&self, value: V, timeout: WallDuration) -> Option<WallDuration> {
        let start = Instant::now();
        // Register before proposing so the commit event cannot race past
        // an unregistered waiter (no lost wakeup).
        let (token, rx) = self.shared.register_waiter(value.clone(), self.proxy);
        self.propose(value.clone());
        match rx.recv_timeout(timeout) {
            Ok(_at) => {
                let latency = start.elapsed();
                let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                self.obs.amortized_latency(self.proxy, us);
                Some(latency)
            }
            Err(_) => {
                self.shared.deregister_waiter(&value, token);
                None
            }
        }
    }
}
