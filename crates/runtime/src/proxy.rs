//! Client handles bound to one proxy replica (or, sharded, one proxy
//! per consensus group).

use std::sync::Arc;
use std::time::{Duration as WallDuration, Instant};

use crossbeam::channel::Sender;

use twostep_telemetry::ObserverHandle;
use twostep_types::{ProcessId, Value};

use crate::cluster::ClusterShared;
use crate::node::Control;

/// Picks the shard a value is routed to.
pub(crate) type RouteFn<V> = Arc<dyn Fn(&V) -> u32 + Send + Sync>;

/// A closed-loop client of one proxy node — or, in a sharded cluster,
/// of one proxy node *per shard*.
///
/// Obtained from [`Cluster::proxy_client`](crate::Cluster::proxy_client)
/// or [`ShardedCluster::client`](crate::ShardedCluster::client). Each
/// in-flight [`ProxyClient::submit_and_wait`] registers a
/// `(shard, value)`-keyed waiter with the cluster router, so concurrent
/// clients (even on the same proxy) wait for their own commands
/// independently — the closed-loop pattern the throughput harness
/// drives — and the router's per-event cost stays O(1) in the number of
/// clients. The shard in the waiter key isolates groups: an identical
/// value committing in a different shard never wakes this client.
///
/// Clients identify their commands **by value**: submit values that are
/// unique per client (e.g. a key embedding the client id and a sequence
/// number) or [`ProxyClient::submit_and_wait`] may match another
/// client's identical command committing first. For measuring commit
/// latency that early match is harmless — some copy of the value
/// committed — but sequencing guarantees only hold for unique values.
pub struct ProxyClient<V> {
    /// Per-shard submission target: `(proxy node, its control channel)`,
    /// indexed by shard. Unsharded clients have exactly one entry.
    targets: Arc<Vec<(ProcessId, Sender<Control<V>>)>>,
    route: RouteFn<V>,
    shared: Arc<ClusterShared<V>>,
    obs: ObserverHandle,
}

impl<V: Value> ProxyClient<V> {
    /// A client of an unsharded cluster: everything routes to shard 0
    /// at `proxy`.
    pub(crate) fn single(
        proxy: ProcessId,
        control: Sender<Control<V>>,
        shared: Arc<ClusterShared<V>>,
        obs: ObserverHandle,
    ) -> Self {
        ProxyClient {
            targets: Arc::new(vec![(proxy, control)]),
            route: Arc::new(|_| 0),
            shared,
            obs,
        }
    }

    /// A sharded client: command `v` goes to shard `route(v)`, proposed
    /// at (and awaited on) node `targets[route(v)].0`.
    pub(crate) fn sharded(
        targets: Arc<Vec<(ProcessId, Sender<Control<V>>)>>,
        route: RouteFn<V>,
        shared: Arc<ClusterShared<V>>,
        obs: ObserverHandle,
    ) -> Self {
        assert!(!targets.is_empty(), "a client needs at least one target");
        ProxyClient {
            targets,
            route,
            shared,
            obs,
        }
    }

    /// The proxy this client submits shard-0 traffic to (its only proxy
    /// when the cluster is unsharded).
    pub fn proxy(&self) -> ProcessId {
        self.targets[0].0
    }

    /// The shard `value` would be routed to.
    pub fn shard_of(&self, value: &V) -> u32 {
        (self.route)(value)
    }

    /// Fire-and-forget submission; silently dropped if the target proxy
    /// crashed.
    pub fn propose(&self, value: V) {
        let shard = (self.route)(&value);
        let (_, control) = &self.targets[shard as usize];
        let _ = control.send(Control::ProposeAt(shard, value));
    }

    /// Submits `value` and blocks until its shard's proxy reports it
    /// decided (in whatever slot/batch it ended up in), or `timeout`
    /// elapses.
    ///
    /// Returns the wall-clock submit→commit latency. With batching this
    /// is the per-command *amortized* latency — each command in a batch
    /// observes its own wait — and it is reported to the attached
    /// observer's `amortized_latency` hook in microseconds.
    pub fn submit_and_wait(&self, value: V, timeout: WallDuration) -> Option<WallDuration> {
        let start = Instant::now();
        let shard = (self.route)(&value);
        let (proxy, control) = &self.targets[shard as usize];
        // Register before proposing so the commit event cannot race past
        // an unregistered waiter (no lost wakeup).
        let (token, rx) = self.shared.register_waiter(shard, value.clone(), *proxy);
        let _ = control.send(Control::ProposeAt(shard, value.clone()));
        match rx.recv_timeout(timeout) {
            Ok(_at) => {
                let latency = start.elapsed();
                let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                self.obs.amortized_latency(*proxy, us);
                Some(latency)
            }
            Err(_) => {
                self.shared.deregister_waiter(shard, &value, token);
                None
            }
        }
    }
}
