//! Two-step-ness witness checks.
//!
//! The untimed [`twostep_sim::ManualExecutor`] that the fuzzer drives
//! has no clock, so "decided within 2Δ" cannot be read off a fuzzed
//! run. Two-step-ness is an *existential* property anyway (Definition 4
//! quantifies over E-faulty synchronous runs), so the fuzzer checks it
//! the way the paper defines it: a timed, `e`-crash synchronous-round
//! simulation in which the favored proposer must appear in
//! `twostep_verify::props::two_step_deciders` — i.e. decide by `2Δ`.
//! The `twostep-fuzz` binary runs this witness before every campaign,
//! so a refactor that silently destroys the fast path fails loudly even
//! though it cannot violate safety.

use twostep_baselines::{EPaxosLite, FastPaxos, Paxos};
use twostep_core::{OmegaMode, TwoStepBuilder};
use twostep_sim::{SyncOutcome, SyncRunner};
use twostep_types::protocol::Protocol;
use twostep_types::{ProcessId, ProcessSet, SystemConfig, Time};
use twostep_verify::props::two_step_deciders;

use crate::case::FuzzProtocol;

/// The witness run: processes `p_0 … p_{e-1}` form the failure set `E`
/// and crash at the first round's start (Definition 2); the favored
/// proposer is `p_{n-1}`.
fn witness_run<P: Protocol<u64>>(
    cfg: SystemConfig,
    make: impl FnMut(ProcessId) -> P,
    proposal: Option<u64>,
) -> SyncOutcome<u64, P> {
    let favored = ProcessId::new(cfg.n() as u32 - 1);
    let faulty: ProcessSet = (0..cfg.e() as u32).map(ProcessId::new).collect();
    let runner = SyncRunner::new(cfg).crashed(faulty).favoring(favored);
    match proposal {
        None => runner.run(make),
        Some(v) => runner.run_object(make, vec![(favored, v, Time::ZERO)]),
    }
}

/// Checks that `protocol` is two-step at `cfg`: in an `e`-crash
/// synchronous run favoring one proposer, that proposer decides by
/// `2Δ`. Paxos is exempt — it is not an e-two-step protocol for any
/// `e > 0` (no fast path), which [`paxos_is_not_two_step`] demonstrates.
pub fn two_step_witness(protocol: FuzzProtocol, cfg: SystemConfig) -> Result<(), String> {
    let favored = ProcessId::new(cfg.n() as u32 - 1);
    // A statically configured Ω keeps heartbeat traffic out of the
    // witness run; the leader never acts before 2Δ anyway.
    let omega = OmegaMode::Static(favored);
    let deciders = match protocol {
        FuzzProtocol::Paxos => return Ok(()),
        FuzzProtocol::Task => {
            // The favored proposer carries the maximum value, so the
            // `v ≥ initial_val` vote precondition never blocks it.
            let outcome = witness_run(
                cfg,
                |p| {
                    TwoStepBuilder::new(cfg)
                        .omega(omega)
                        .task(p, u64::from(p.as_u32()))
                },
                None,
            );
            two_step_deciders(&outcome.trace)
        }
        FuzzProtocol::Object => {
            let outcome = witness_run(
                cfg,
                |p| TwoStepBuilder::new(cfg).omega(omega).object(p),
                Some(7),
            );
            two_step_deciders(&outcome.trace)
        }
        FuzzProtocol::FastPaxos => {
            // A conflict-free fast round: everyone proposes the same
            // value, so the favored learner assembles a fast quorum of
            // the n-e surviving votes by 2Δ.
            let outcome = witness_run(cfg, |p| FastPaxos::new(cfg, p, 7u64), None);
            two_step_deciders(&outcome.trace)
        }
        FuzzProtocol::EPaxos => {
            let outcome = witness_run(cfg, |p| EPaxosLite::<u64>::new(cfg, p), Some(7));
            two_step_deciders(&outcome.trace)
        }
    };
    if deciders.contains(favored) {
        Ok(())
    } else {
        Err(format!(
            "{} is not two-step at {cfg}: favored proposer {favored} did not decide by 2Δ \
             (two-step deciders: {deciders})",
            protocol.name(),
        ))
    }
}

/// Demonstrates why [`two_step_witness`] exempts Paxos. Fault-free,
/// Paxos's fixed ballot-0 coordinator `p0` *does* decide in two message
/// delays (it skips phase 1), but Definition 4 quantifies over every
/// failure set of size ≤ `e`: with `E = {p0}` no other process can
/// decide by `2Δ`, because taking over requires phase 1. Returns true
/// when that `E`-faulty run indeed has no two-step decider.
pub fn paxos_is_not_two_step(cfg: SystemConfig) -> bool {
    let favored = ProcessId::new(cfg.n() as u32 - 1);
    let coordinator: ProcessSet = std::iter::once(ProcessId::new(0)).collect();
    let outcome = SyncRunner::new(cfg)
        .crashed(coordinator)
        .favoring(favored)
        .run(|p| Paxos::new(cfg, p, 7u64));
    two_step_deciders(&outcome.trace).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_passes_its_witness_at_its_minimum() {
        for protocol in FuzzProtocol::ALL {
            for (e, f) in [(1, 1), (1, 2), (2, 2)] {
                let n = protocol.min_processes(e, f);
                let cfg = SystemConfig::new(n, e, f).unwrap();
                two_step_witness(protocol, cfg).unwrap_or_else(|err| {
                    panic!(
                        "witness failed for {} at (e={e}, f={f}): {err}",
                        protocol.name()
                    )
                });
            }
        }
    }

    #[test]
    fn paxos_really_is_not_two_step() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        assert!(paxos_is_not_two_step(cfg));
    }
}
