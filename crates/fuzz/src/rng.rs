//! A tiny, fully deterministic PRNG for schedule generation.
//!
//! The fuzzer's only requirement of its randomness source is *stable
//! reproducibility*: the pair `(seed, iteration)` must map to the same
//! schedule on every platform and in every future version of the
//! standard library. SplitMix64 (Steele, Lea & Flood, OOPSLA'14) is a
//! 64-bit permutation with good avalanche behaviour and a trivially
//! portable implementation, so the fuzzer carries its own copy instead
//! of depending on an external generator whose stream might change.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Derives the seed for an independent stream, used to give every
    /// fuzzing iteration its own schedule from one root seed.
    pub fn stream(root: u64, index: u64) -> u64 {
        let mut g = SplitMix64(root ^ index.wrapping_mul(GOLDEN));
        g.next_u64()
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, if any.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        assert_ne!(SplitMix64::stream(1, 0), SplitMix64::stream(1, 1));
        assert_ne!(SplitMix64::stream(1, 0), SplitMix64::stream(2, 0));
    }

    #[test]
    fn known_reference_values() {
        // Pinned so a refactor cannot silently change every schedule in
        // the regression corpus.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn shuffle_permutes() {
        let mut g = SplitMix64::new(7);
        let mut v: Vec<u32> = (0..10).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
