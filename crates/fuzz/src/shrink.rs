//! Counterexample shrinking by delta debugging.
//!
//! Because every [`Action`] is total, any
//! subsequence of a failing schedule is itself a valid schedule, so
//! shrinking is plain ddmin (Zeller & Hildebrandt, *Simplifying and
//! Isolating Failure-Inducing Input*, TSE'02): repeatedly try to delete
//! chunks, halving the chunk size on a full unsuccessful sweep, and
//! finish with single-action sweeps until a fixpoint — the result is
//! 1-minimal (no single action can be removed without losing the
//! violation). Every candidate is re-executed from scratch, which the
//! deterministic [`run_case`] makes sound.

use crate::case::{run_case, FuzzCase};
use crate::oracle::check_safety;
use crate::schedule::{Action, Schedule};

/// The result of shrinking a failing case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized schedule (still reproduces a safety violation).
    pub schedule: Schedule,
    /// How many schedule executions the search used.
    pub executions: usize,
    /// True if the execution budget ran out before reaching 1-minimality.
    pub gave_up: bool,
}

struct Shrinker<'a> {
    case: &'a FuzzCase,
    executions: usize,
    budget: usize,
}

impl Shrinker<'_> {
    fn reproduces(&mut self, actions: &[Action]) -> bool {
        self.executions += 1;
        let case = self.case.with_schedule(actions.to_vec());
        check_safety(case.protocol, &run_case(&case)).is_some()
    }

    fn exhausted(&self) -> bool {
        self.executions >= self.budget
    }
}

/// Minimizes `case.schedule` while preserving *some* safety violation
/// (not necessarily the original property: a schedule that shrinks from
/// an agreement violation into an integrity violation is still a bug
/// witness). The caller must pass a case whose full schedule fails;
/// `budget` caps the number of re-executions.
pub fn shrink(case: &FuzzCase, budget: usize) -> ShrinkOutcome {
    let mut s = Shrinker {
        case,
        executions: 0,
        budget,
    };
    let mut cur: Vec<Action> = case.schedule.actions.clone();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        if s.exhausted() {
            return ShrinkOutcome {
                schedule: cur.into(),
                executions: s.executions,
                gave_up: true,
            };
        }
        let mut reduced = false;
        let mut i = 0;
        while i < cur.len() && !s.exhausted() {
            let end = (i + chunk).min(cur.len());
            let candidate: Vec<Action> = cur[..i].iter().chain(&cur[end..]).copied().collect();
            if s.reproduces(&candidate) {
                // The deletion stuck; the next chunk slid into place at
                // the same index.
                cur = candidate;
                reduced = true;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !reduced {
                break; // 1-minimal.
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    ShrinkOutcome {
        schedule: cur.into(),
        executions: s.executions,
        gave_up: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_core::Ablations;
    use twostep_types::{ProcessId, SystemConfig};

    use crate::case::FuzzProtocol;

    // Shrinking of a *real* violation (the ablated recovery tie-break)
    // is exercised end-to-end in `tests/smoke.rs`; the unit tests here
    // cover only the search mechanics.

    #[test]
    fn shrink_of_non_failing_case_returns_quickly() {
        // A clean case never reproduces, so ddmin deletes everything it
        // can (every candidate fails to reproduce) and returns the
        // original schedule untouched.
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let case = FuzzCase {
            protocol: FuzzProtocol::Task,
            cfg,
            values: vec![1, 2, 3],
            leader: ProcessId::new(0),
            ablations: Ablations::NONE,
            schedule: vec![Action::DeliverAllTo(0), Action::DeliverAllTo(1)].into(),
        };
        let out = shrink(&case, 100);
        assert!(!out.gave_up);
        assert_eq!(out.schedule.actions, case.schedule.actions);
    }

    #[test]
    fn budget_zero_gives_up_immediately() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let case = FuzzCase {
            protocol: FuzzProtocol::Task,
            cfg,
            values: vec![1, 2, 3],
            leader: ProcessId::new(0),
            ablations: Ablations::NONE,
            schedule: vec![Action::DeliverAllTo(0)].into(),
        };
        let out = shrink(&case, 0);
        assert!(out.gave_up);
        assert_eq!(out.executions, 0);
        assert_eq!(out.schedule.actions, case.schedule.actions);
    }
}
