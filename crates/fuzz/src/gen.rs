//! Schedule generation.
//!
//! Uniformly random action sequences essentially never reach the
//! interesting corners of a consensus protocol: an agreement violation
//! of the (deliberately ablated) recovery tie-break needs a proposer to
//! fast-decide on one side of a vote split, both proposers to crash, and
//! a leader to recover over exactly the surviving split — a coincidence
//! with probability ~2⁻⁴⁰ under uniform sampling. The generator is
//! therefore *phase-structured*, in the spirit of the paper's §B.1
//! adversary: it picks biased roles (a fast *winner* `w`, a rival
//! *contender* `c`, a recovery leader), scatters the two rival proposals
//! across the remaining processes, returns votes to the winner, crashes
//! up to `f` processes (biased towards `w` and `c`), silences the dead
//! proposers' in-flight messages, triggers recovery at the leader and
//! drains the system — with low-probability noise (extra drops, random
//! deliveries, restarts) sprinkled throughout so the exploration is not
//! confined to the template.
//!
//! The output is still a flat, total [`Schedule`](crate::schedule::Schedule):
//! the structure only
//! biases *generation*; shrinking and replay treat the schedule as an
//! arbitrary action list.

use twostep_core::Ablations;
use twostep_types::{ProcessId, SystemConfig};

use crate::case::{FuzzCase, FuzzProtocol};
use crate::rng::SplitMix64;
use crate::schedule::Action;

/// Derives the fully determined case for one fuzzing iteration from its
/// stream seed (see [`SplitMix64::stream`]).
pub fn gen_case(
    protocol: FuzzProtocol,
    cfg: SystemConfig,
    ablations: Ablations,
    seed: u64,
) -> FuzzCase {
    let mut rng = SplitMix64::new(seed);
    let n = cfg.n() as u8;
    let f = cfg.f();

    // Roles: the fast winner, a rival contender, and a recovery leader
    // that usually survives the crash burst.
    let w = rng.below(n as u64) as u8;
    let c = loop {
        let c = rng.below(n as u64) as u8;
        if c != w {
            break c;
        }
    };
    let bystanders: Vec<u8> = (0..n).filter(|p| *p != w && *p != c).collect();
    let leader = if rng.chance(7, 8) {
        *rng.pick(&bystanders).unwrap_or(&w)
    } else {
        rng.below(n as u64) as u8
    };

    // Values: mostly the adversarial shape (winner strictly above the
    // contender, everyone else below both, so the `v ≥ initial_val` vote
    // precondition never blocks either rival), sometimes uniform.
    let values: Vec<u64> = if rng.chance(3, 4) {
        (0..n)
            .map(|p| {
                if p == w {
                    2
                } else if p == c {
                    1
                } else {
                    0
                }
            })
            .collect()
    } else {
        (0..n).map(|_| rng.below(4)).collect()
    };

    let mut acts: Vec<Action> = Vec::new();

    // Phase 0 (object-style protocols): submit the rival proposals, plus
    // occasional extra ones. No-ops for task-style protocols, where the
    // initial values are proposed at startup.
    if !protocol.task_style() {
        acts.push(Action::Propose(w, values[w as usize] as u8));
        acts.push(Action::Propose(c, values[c as usize] as u8));
        for &p in &bystanders {
            if rng.chance(1, 4) {
                acts.push(Action::Propose(p, values[p as usize] as u8));
            }
        }
    }

    // Phase 1 — scatter: each bystander receives one rival's proposal
    // first (winner-biased), splitting the fast-round vote.
    let mut order = bystanders.clone();
    rng.shuffle(&mut order);
    for &r in &order {
        let src = if rng.chance(1, 2) {
            w
        } else if rng.chance(3, 5) {
            c
        } else {
            rng.below(n as u64) as u8
        };
        acts.push(Action::DeliverFromTo(src, r));
        if rng.chance(1, 8) {
            acts.push(Action::DeliverIdx(rng.next_u64() as u16));
        }
    }
    // The contender usually votes for the winner too — the §B.1 splice's
    // double-duty move that lets the winner reach its fast quorum while
    // the contender's proposal still owns part of the split.
    if rng.chance(3, 4) {
        acts.push(Action::DeliverFromTo(w, c));
    }
    if rng.chance(1, 4) {
        acts.push(Action::DeliverFromTo(c, w));
    }

    // Phase 2 — returns: the votes travel back; the winner may now
    // fast-decide.
    acts.push(Action::DeliverAllTo(w));
    if rng.chance(1, 2) {
        acts.push(Action::DeliverAllTo(c));
    }

    // Phase 3 — crash burst: up to f processes die, biased towards the
    // two rivals; occasionally one of them comes back.
    let burst = if rng.chance(3, 4) {
        f
    } else {
        rng.below(f as u64 + 1) as usize
    };
    let mut crashed: Vec<u8> = Vec::new();
    for i in 0..burst {
        let t = match i {
            0 if rng.chance(3, 4) => w,
            1 if rng.chance(3, 4) => c,
            _ => rng.below(n as u64) as u8,
        };
        crashed.push(t);
        acts.push(Action::Crash(t));
    }
    if !crashed.is_empty() && rng.chance(1, 16) {
        acts.push(Action::Restart(*rng.pick(&crashed).unwrap()));
    }

    // Phase 4 — silence: drop the dead winner's in-flight messages
    // (its `Propose` retransmissions and, crucially, its `Decide`
    // broadcast), so the survivors must recover from votes alone.
    if rng.chance(3, 4) {
        for r in 0..n {
            if r != w {
                acts.push(Action::DropFromTo(w, r));
                acts.push(Action::DropFromTo(w, r));
            }
            if r != c && rng.chance(1, 4) {
                acts.push(Action::DropFromTo(c, r));
            }
        }
    }

    // Phase 5 — recovery: the leader's new-ballot timer fires.
    acts.push(Action::FireAllTimers(leader));

    // Phase 6 — drain: rounds of full deliveries let the slow ballot
    // (and any remaining fast-path traffic) run to completion. The
    // leader often goes last in a round so same-round replies reach it.
    let rounds = 4 + rng.below(3);
    for round in 0..rounds {
        let mut order: Vec<u8> = (0..n).collect();
        rng.shuffle(&mut order);
        if rng.chance(1, 2) {
            if let Some(pos) = order.iter().position(|p| *p == leader) {
                order.remove(pos);
                order.push(leader);
            }
        }
        for p in order {
            acts.push(Action::DeliverAllTo(p));
            if rng.chance(1, 16) {
                acts.push(Action::DropIdx(rng.next_u64() as u16));
            }
        }
        if round + 1 < rounds && rng.chance(1, 4) {
            acts.push(Action::FireAllTimers(rng.below(n as u64) as u8));
        }
    }

    FuzzCase {
        protocol,
        cfg,
        values,
        leader: ProcessId::new(u32::from(leader)),
        ablations,
        schedule: acts.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SystemConfig::new(6, 2, 2).unwrap();
        let a = gen_case(FuzzProtocol::Task, cfg, Ablations::NONE, 123);
        let b = gen_case(FuzzProtocol::Task, cfg, Ablations::NONE, 123);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.values, b.values);
        assert_eq!(a.leader, b.leader);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let cfg = SystemConfig::new(6, 2, 2).unwrap();
        let a = gen_case(FuzzProtocol::Task, cfg, Ablations::NONE, 1);
        let b = gen_case(FuzzProtocol::Task, cfg, Ablations::NONE, 2);
        assert_ne!((a.schedule, a.values), (b.schedule, b.values));
    }

    #[test]
    fn object_cases_contain_proposals() {
        let cfg = SystemConfig::new(5, 2, 2).unwrap();
        let case = gen_case(FuzzProtocol::Object, cfg, Ablations::NONE, 9);
        assert!(case
            .schedule
            .actions
            .iter()
            .any(|a| matches!(a, Action::Propose(..))));
    }

    #[test]
    fn task_cases_contain_no_proposals() {
        let cfg = SystemConfig::new(6, 2, 2).unwrap();
        for seed in 0..20 {
            let case = gen_case(FuzzProtocol::Task, cfg, Ablations::NONE, seed);
            assert!(!case
                .schedule
                .actions
                .iter()
                .any(|a| matches!(a, Action::Propose(..))));
        }
    }
}
