//! Safety oracles: the fuzzer's pass/fail judgement.
//!
//! A [`RunReport`] is converted to a synthetic [`Trace`] of `Decided`
//! events (the untimed [`twostep_sim::ManualExecutor`] has no clock, so
//! all events are stamped `Time::ZERO`) and handed to the verification
//! crate's property checkers. Reusing `twostep-verify` as the oracle
//! means the fuzzer and the exhaustive model checker disagree about
//! correctness only if one of them mis-translates a run — never about
//! what "correct" means.

use twostep_sim::{Trace, TraceEvent};
use twostep_types::{ProcessSet, Time};
use twostep_verify::{check_agreement, check_integrity, check_termination, check_validity};

use crate::case::{FuzzProtocol, RunReport};

/// A safety (or, when requested, liveness) violation found by the
/// oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Two processes decided different values.
    Agreement(String),
    /// A decided value was never proposed.
    Validity(String),
    /// A process decided more than once.
    Integrity(String),
    /// A live process failed to decide (only checked with `--liveness`).
    Termination(String),
}

impl Verdict {
    /// The violated property's name.
    pub fn property(&self) -> &'static str {
        match self {
            Verdict::Agreement(_) => "agreement",
            Verdict::Validity(_) => "validity",
            Verdict::Integrity(_) => "integrity",
            Verdict::Termination(_) => "termination",
        }
    }

    /// The oracle's explanation of the violation.
    pub fn detail(&self) -> &str {
        match self {
            Verdict::Agreement(d)
            | Verdict::Validity(d)
            | Verdict::Integrity(d)
            | Verdict::Termination(d) => d,
        }
    }

    /// Whether this is a safety violation (vs. a liveness one).
    pub fn is_safety(&self) -> bool {
        !matches!(self, Verdict::Termination(_))
    }
}

fn synthetic_trace(report: &RunReport) -> Trace<u64> {
    let mut trace = Trace::new();
    for &(process, value) in &report.decide_log {
        trace.push(TraceEvent::Decided {
            time: Time::ZERO,
            process,
            value,
        });
    }
    trace
}

/// Checks the protocol's safety properties on a run, most severe first.
///
/// Agreement is only meaningful for single-decree protocols; EPaxosLite
/// commits one command *per proposer* (its `decide` event means "own
/// command committed"), so for it only Validity and Integrity apply.
pub fn check_safety(protocol: FuzzProtocol, report: &RunReport) -> Option<Verdict> {
    let trace = synthetic_trace(report);
    if protocol != FuzzProtocol::EPaxos {
        if let Err(v) = check_agreement(&trace) {
            return Some(Verdict::Agreement(v.to_string()));
        }
    }
    if let Err(v) = check_validity(&trace, &report.proposed) {
        return Some(Verdict::Validity(v.to_string()));
    }
    if let Err(v) = check_integrity(&trace) {
        return Some(Verdict::Integrity(v.to_string()));
    }
    None
}

/// Checks that every process in `correct` decided. Only meaningful
/// after a schedule that drains all messages and fires all timers; the
/// runner gates this behind `--liveness` for that reason.
pub fn check_liveness(report: &RunReport, correct: ProcessSet) -> Option<Verdict> {
    let trace = synthetic_trace(report);
    check_termination(&trace, correct)
        .err()
        .map(|v| Verdict::Termination(v.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_types::ProcessId;

    fn report(decide_log: Vec<(u32, u64)>, proposed: Vec<u64>) -> RunReport {
        let alive = (0..3).map(ProcessId::new).collect();
        RunReport {
            decide_log: decide_log
                .into_iter()
                .map(|(p, v)| (ProcessId::new(p), v))
                .collect(),
            decisions: vec![None; 3],
            proposed,
            alive,
        }
    }

    #[test]
    fn clean_run_passes() {
        let r = report(vec![(0, 7), (1, 7), (2, 7)], vec![7, 8]);
        assert_eq!(check_safety(FuzzProtocol::Task, &r), None);
    }

    #[test]
    fn split_decision_is_agreement_violation() {
        let r = report(vec![(0, 7), (1, 8)], vec![7, 8]);
        let v = check_safety(FuzzProtocol::Task, &r).expect("should flag");
        assert_eq!(v.property(), "agreement");
        assert!(v.is_safety());
    }

    #[test]
    fn unproposed_value_is_validity_violation() {
        let r = report(vec![(0, 9), (1, 9)], vec![7, 8]);
        assert_eq!(
            check_safety(FuzzProtocol::Task, &r).unwrap().property(),
            "validity"
        );
    }

    #[test]
    fn double_decide_is_integrity_violation() {
        let r = report(vec![(0, 7), (0, 7)], vec![7]);
        assert_eq!(
            check_safety(FuzzProtocol::Task, &r).unwrap().property(),
            "integrity"
        );
    }

    #[test]
    fn epaxos_tolerates_per_proposer_decisions() {
        // Each replica committing its own command is EPaxos's normal
        // outcome, not an agreement violation.
        let r = report(vec![(0, 7), (1, 8)], vec![7, 8]);
        assert_eq!(check_safety(FuzzProtocol::EPaxos, &r), None);
        // But double commits and unproposed commands still count.
        let r = report(vec![(0, 7), (0, 7)], vec![7]);
        assert_eq!(
            check_safety(FuzzProtocol::EPaxos, &r).unwrap().property(),
            "integrity"
        );
    }

    #[test]
    fn liveness_flags_silent_live_process() {
        let r = report(vec![(0, 7), (1, 7)], vec![7]);
        let correct: ProcessSet = (0..3).map(ProcessId::new).collect();
        let v = check_liveness(&r, correct).expect("p2 never decided");
        assert_eq!(v.property(), "termination");
        assert!(!v.is_safety());
    }
}
