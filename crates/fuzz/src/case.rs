//! Fuzz cases and their deterministic execution.
//!
//! A [`FuzzCase`] pins down *everything* a run depends on — protocol,
//! configuration, initial values, Ω leader, ablations and the schedule —
//! so a counterexample is replayable from the case alone (and the case
//! itself is derivable from `(root seed, iteration)` via
//! [`crate::gen::gen_case`]).

use twostep_baselines::{EPaxosLite, FastPaxos, Paxos};
use twostep_core::{Ablations, OmegaMode, TwoStepBuilder};
use twostep_sim::ManualExecutor;
use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::Protocol;
use twostep_types::{ProcessId, ProcessSet, ProtocolKind, SystemConfig};

use crate::schedule::{Action, Schedule};

/// The protocols the fuzzer can drive differentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzProtocol {
    /// The paper's two-step consensus, task variant.
    Task,
    /// The paper's two-step consensus, object variant.
    Object,
    /// Classic single-decree Paxos (baseline).
    Paxos,
    /// Fast Paxos (baseline).
    FastPaxos,
    /// The EPaxos-style fast/slow baseline.
    EPaxos,
}

impl FuzzProtocol {
    /// All fuzzable protocols, for `--protocol all`.
    pub const ALL: [FuzzProtocol; 5] = [
        FuzzProtocol::Task,
        FuzzProtocol::Object,
        FuzzProtocol::Paxos,
        FuzzProtocol::FastPaxos,
        FuzzProtocol::EPaxos,
    ];

    /// Whether initial values are fixed at construction (task-style) as
    /// opposed to arriving via explicit `propose` calls (object-style).
    pub fn task_style(self) -> bool {
        matches!(
            self,
            FuzzProtocol::Task | FuzzProtocol::Paxos | FuzzProtocol::FastPaxos
        )
    }

    /// The protocol family whose minimal-process bound this target is
    /// validated against. EPaxosLite only runs in the bare-majority
    /// regime, so it shares the Paxos bound.
    pub fn kind(self) -> ProtocolKind {
        match self {
            FuzzProtocol::Task => ProtocolKind::TaskTwoStep,
            FuzzProtocol::Object => ProtocolKind::ObjectTwoStep,
            FuzzProtocol::Paxos | FuzzProtocol::EPaxos => ProtocolKind::Paxos,
            FuzzProtocol::FastPaxos => ProtocolKind::FastPaxos,
        }
    }

    /// The minimal valid `n` for `(e, f)` under this protocol's bound.
    pub fn min_processes(self, e: usize, f: usize) -> usize {
        self.kind().min_processes(e, f)
    }

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FuzzProtocol::Task => "task",
            FuzzProtocol::Object => "object",
            FuzzProtocol::Paxos => "paxos",
            FuzzProtocol::FastPaxos => "fastpaxos",
            FuzzProtocol::EPaxos => "epaxos",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<FuzzProtocol> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// One fully determined fuzz execution.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Which protocol to run.
    pub protocol: FuzzProtocol,
    /// The system configuration.
    pub cfg: SystemConfig,
    /// Initial values by process id (task-style protocols; also the
    /// value pool used by `Propose` actions for object-style ones).
    pub values: Vec<u64>,
    /// The static Ω leader (two-step variants; ignored by baselines).
    pub leader: ProcessId,
    /// Protocol ablations (used to inject known bugs on purpose).
    pub ablations: Ablations,
    /// The interleaving to execute.
    pub schedule: Schedule,
}

impl FuzzCase {
    /// The same case with a different schedule (used by the shrinker).
    pub fn with_schedule(&self, actions: Vec<Action>) -> FuzzCase {
        FuzzCase {
            schedule: Schedule::from(actions),
            ..self.clone()
        }
    }
}

/// What a run produced, as consumed by the oracles.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Every decide event, in execution order.
    pub decide_log: Vec<(ProcessId, u64)>,
    /// First decision per process.
    pub decisions: Vec<Option<u64>>,
    /// The values that entered the system (initial values for task-style
    /// protocols; accepted `propose` arguments for object-style).
    pub proposed: Vec<u64>,
    /// Processes alive at the end of the run.
    pub alive: ProcessSet,
}

/// Executes a case and reports what happened. Deterministic: the same
/// case always yields the same report.
pub fn run_case(case: &FuzzCase) -> RunReport {
    run_case_observed(case, ObserverHandle::none())
}

/// Like [`run_case`], with telemetry hooks attached to every protocol
/// instance — campaign summaries aggregate decision paths, recovery
/// cases and ballot churn across all executed schedules.
pub fn run_case_observed(case: &FuzzCase, obs: ObserverHandle) -> RunReport {
    let cfg = case.cfg;
    let leader = case.leader;
    let omega = OmegaMode::Static(leader);
    let abl = case.ablations;
    let values = case.values.clone();
    match case.protocol {
        FuzzProtocol::Task => run_schedule(case, |p| {
            TwoStepBuilder::new(cfg)
                .omega(omega)
                .ablations(abl)
                .observed(obs.clone())
                .task(p, values[p.index()])
        }),
        FuzzProtocol::Object => run_schedule(case, |p| {
            TwoStepBuilder::new(cfg)
                .omega(omega)
                .ablations(abl)
                .observed(obs.clone())
                .object(p)
        }),
        FuzzProtocol::Paxos => run_schedule(case, |p| {
            Paxos::new(cfg, p, values[p.index()]).observed(obs.clone())
        }),
        FuzzProtocol::FastPaxos => run_schedule(case, |p| {
            FastPaxos::new(cfg, p, values[p.index()]).observed(obs.clone())
        }),
        FuzzProtocol::EPaxos => {
            run_schedule(case, |p| EPaxosLite::new(cfg, p).observed(obs.clone()))
        }
    }
}

/// The schedule interpreter: applies each action to a fresh
/// [`ManualExecutor`], with every operand decoded modulo what the
/// executor currently offers (see [`crate::schedule`]).
fn run_schedule<P, F>(case: &FuzzCase, make: F) -> RunReport
where
    P: Protocol<u64>,
    F: FnMut(ProcessId) -> P,
{
    let n = case.cfg.n();
    let f = case.cfg.f();
    let pid = |raw: u8| ProcessId::new(u32::from(raw) % n as u32);

    let mut ex = ManualExecutor::new(case.cfg, make);
    ex.start_all();

    let mut proposed: Vec<u64> = if case.protocol.task_style() {
        case.values.clone()
    } else {
        Vec::new()
    };

    for &action in &case.schedule.actions {
        match action {
            Action::DeliverFromTo(a, b) => {
                let (from, to) = (pid(a), pid(b));
                if let Some(&id) = ex
                    .pending_matching(|m| m.from == from && m.to == to)
                    .first()
                {
                    ex.deliver(id);
                }
            }
            Action::DeliverAllTo(a) => {
                ex.deliver_all_to(pid(a));
            }
            Action::DeliverIdx(k) => {
                let ids: Vec<_> = ex.pending().iter().map(|m| m.id).collect();
                if !ids.is_empty() {
                    ex.deliver(ids[k as usize % ids.len()]);
                }
            }
            Action::DropFromTo(a, b) => {
                let (from, to) = (pid(a), pid(b));
                if let Some(&id) = ex
                    .pending_matching(|m| m.from == from && m.to == to)
                    .first()
                {
                    ex.drop_message(id);
                }
            }
            Action::DropIdx(k) => {
                let ids: Vec<_> = ex.pending().iter().map(|m| m.id).collect();
                if !ids.is_empty() {
                    ex.drop_message(ids[k as usize % ids.len()]);
                }
            }
            Action::Crash(a) => {
                let p = pid(a);
                let dead = n - ex.alive().len();
                if ex.alive().contains(p) && dead < f {
                    ex.crash(p);
                }
            }
            Action::Restart(a) => {
                ex.restart(pid(a));
            }
            Action::FireTimer(a, k) => {
                let p = pid(a);
                let timers = ex.armed_timers(p);
                if !timers.is_empty() {
                    ex.fire_timer(p, timers[k as usize % timers.len()]);
                }
            }
            Action::FireAllTimers(a) => {
                let p = pid(a);
                for t in ex.armed_timers(p) {
                    ex.fire_timer(p, t);
                }
            }
            Action::Propose(a, v) => {
                if !case.protocol.task_style() {
                    let p = pid(a);
                    let value = u64::from(v);
                    if ex.propose(p, value) {
                        proposed.push(value);
                    }
                }
            }
        }
    }

    RunReport {
        decide_log: ex.decide_log().to_vec(),
        decisions: ex.decisions().to_vec(),
        proposed,
        alive: ex.alive(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(protocol: FuzzProtocol, actions: Vec<Action>) -> FuzzCase {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        FuzzCase {
            protocol,
            cfg,
            values: vec![1, 2, 3],
            leader: ProcessId::new(0),
            ablations: Ablations::NONE,
            schedule: Schedule::from(actions),
        }
    }

    #[test]
    fn empty_schedule_runs_clean() {
        for p in FuzzProtocol::ALL {
            let report = run_case(&case(p, vec![]));
            assert_eq!(report.alive.len(), 3);
            assert!(
                report.decide_log.is_empty(),
                "{p:?} decided with no deliveries"
            );
        }
    }

    #[test]
    fn crash_budget_is_enforced() {
        let report = run_case(&case(
            FuzzProtocol::Task,
            vec![Action::Crash(0), Action::Crash(1), Action::Crash(2)],
        ));
        // f = 1: only the first crash takes effect.
        assert_eq!(report.alive.len(), 2);
    }

    #[test]
    fn restart_frees_the_crash_budget() {
        let report = run_case(&case(
            FuzzProtocol::Task,
            vec![Action::Crash(0), Action::Restart(0), Action::Crash(1)],
        ));
        assert_eq!(report.alive.len(), 2);
        assert!(report.alive.contains(ProcessId::new(0)));
        assert!(!report.alive.contains(ProcessId::new(1)));
    }

    #[test]
    fn full_drain_decides_task_consensus() {
        // Deliver everything repeatedly: all three processes decide and
        // agree.
        let mut actions = Vec::new();
        for _ in 0..6 {
            for p in 0..3 {
                actions.push(Action::DeliverAllTo(p));
            }
        }
        let report = run_case(&case(FuzzProtocol::Task, actions));
        assert!(report.decisions.iter().all(Option::is_some));
        let first = report.decide_log[0].1;
        assert!(report.decide_log.iter().all(|(_, v)| *v == first));
    }

    #[test]
    fn deterministic_replay() {
        let actions = vec![
            Action::DeliverIdx(5),
            Action::Crash(2),
            Action::DeliverAllTo(0),
            Action::FireAllTimers(0),
            Action::DeliverAllTo(1),
        ];
        let a = run_case(&case(FuzzProtocol::Task, actions.clone()));
        let b = run_case(&case(FuzzProtocol::Task, actions));
        assert_eq!(a.decide_log, b.decide_log);
        assert_eq!(a.alive, b.alive);
    }
}
