//! Byzantine campaigns: seeded misbehavior against the FaB-style
//! [`FastBft`] baseline, judged by honest-only oracles.
//!
//! The flat fuzzer and the sharded campaign inject *crash* faults; this
//! campaign injects *Byzantine* ones. Per iteration it picks a seeded
//! coalition of up to `f` victims, assigns each one of the four
//! [`ByzBehavior::MALICIOUS`] behaviors — equivocation (the same
//! step's sends split into two conflicting halves), payload forgery,
//! ballot lying, or selective silence —
//! via [`ByzPlan`], wraps every process's [`FastBft`] in the injection
//! layer, and drives the system through a seeded interleaving of
//! deliveries and timer fires on the untimed [`ManualExecutor`] —
//! including the view changes that suspicion timers provoke, so forged
//! `Promise`s reach real recovery quorums.
//!
//! The oracle judges **honest processes only**: Agreement, Validity
//! (against the proposal pool — a forged payload is not a proposal, so
//! an honest decision on one is a Validity violation) and Integrity.
//! What the coalition itself claims to decide is not a property of the
//! protocol.
//!
//! Process 0 — the ballot-0 coordinator and first Ω leader — is never a
//! victim: without signatures a Byzantine *coordinator* can fabricate
//! the fast proposal itself, which no quorum arithmetic detects (see
//! the unsigned-BFT caveat in `twostep-baselines::fab`). Victims are
//! drawn from `{1, …, n−1}`, the acceptor/recovery roles whose
//! misbehavior the FaB quorums are sized to absorb.
//!
//! Everything is deterministic: an iteration is fully described by
//! `(root seed, iteration index)`, which is what a failure reports and
//! what the `--replay`-style line re-runs.

use twostep_baselines::FastBft;
use twostep_byz::{ByzBehavior, ByzPlan, ByzProtocol};
use twostep_sim::ManualExecutor;
use twostep_telemetry::ObserverHandle;
use twostep_types::{ByzConfig, ProcessId, SystemConfig};

use crate::oracle::Verdict;
use crate::rng::SplitMix64;

/// Every process's protocol in a Byzantine campaign: the real FastBft
/// under the injection wrapper (honest processes pass through).
pub type WrappedFastBft = ByzProtocol<u64, FastBft<u64>>;

/// Ceiling on chaos steps per iteration: view-change retries regenerate
/// messages forever, so quiescence alone cannot terminate the loop.
const STEP_BUDGET: u32 = 10_000;

/// Parameters of one Byzantine campaign.
#[derive(Debug, Clone)]
pub struct ByzFuzzConfig {
    /// The Byzantine configuration (variant, `n`, `f`) under test.
    pub byz: ByzConfig,
    /// Root seed; iteration `i` uses stream seed `stream(seed, i)`.
    pub seed: u64,
    /// Number of iterations to run.
    pub iters: u64,
}

/// Everything one iteration produced, as the oracle needs it.
#[derive(Debug, Clone)]
pub struct ByzRun {
    /// Who misbehaved and how.
    pub plan: ByzPlan,
    /// The initial values, one per process — the Validity pool.
    pub proposed: Vec<u64>,
    /// Every decide event, in order (honest and Byzantine processes).
    pub decide_log: Vec<(ProcessId, u64)>,
}

/// A violation found by a Byzantine campaign.
#[derive(Debug, Clone)]
pub struct ByzFailure {
    /// The iteration (0-based) that failed.
    pub iteration: u64,
    /// Its stream seed — with the campaign parameters this replays the
    /// iteration exactly.
    pub stream_seed: u64,
    /// The victim coalition of the failing iteration.
    pub victims: Vec<(ProcessId, ByzBehavior)>,
    /// What was violated, among the honest processes.
    pub verdict: Verdict,
}

/// The result of a Byzantine campaign.
#[derive(Debug, Clone)]
pub struct ByzFuzzOutcome {
    /// Iterations actually executed (equals `iters` on a clean run).
    pub iterations_run: u64,
    /// Decide events by *honest* processes across all iterations — a
    /// clean pass with zero honest decisions would be vacuous, so
    /// callers should insist this is positive.
    pub decisions: u64,
    /// The first violation, if any.
    pub failure: Option<ByzFailure>,
}

impl ByzFuzzOutcome {
    /// True if no violation was found.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Picks the seeded victim coalition: 1..=f distinct processes, never
/// process 0 (the unsigned-BFT caveat above).
fn pick_victims(rng: &mut SplitMix64, n: usize, f: usize) -> Vec<ProcessId> {
    let count = 1 + rng.below(f as u64) as usize;
    let mut victims: Vec<ProcessId> = Vec::new();
    while victims.len() < count {
        let v = ProcessId::new(1 + rng.below(n as u64 - 1) as u32);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    victims
}

/// Fires one seeded armed timer somewhere in the system (scanning from
/// a seeded start so no process is starved). Returns false when no
/// process has any timer armed.
fn fire_seeded_timer(exec: &mut ManualExecutor<u64, WrappedFastBft>, rng: &mut SplitMix64) -> bool {
    let n = exec.config().n();
    let start = rng.below(n as u64) as usize;
    for k in 0..n {
        let p = ProcessId::new(((start + k) % n) as u32);
        let timers = exec.armed_timers(p);
        if !timers.is_empty() {
            let t = timers[rng.below(timers.len() as u64) as usize];
            exec.fire_timer(p, t);
            return true;
        }
    }
    false
}

/// Executes one seeded iteration. Deterministic: the same
/// `(config, stream_seed)` always yields the same [`ByzRun`].
pub fn run_byzantine_iteration(
    fc: &ByzFuzzConfig,
    stream_seed: u64,
    observer: &ObserverHandle,
) -> ByzRun {
    let byz = fc.byz;
    let n = byz.n();
    let mut rng = SplitMix64::new(stream_seed);

    let mut plan = ByzPlan::honest(stream_seed);
    for v in pick_victims(&mut rng, n, byz.f()) {
        let malicious = ByzBehavior::MALICIOUS;
        let behavior = malicious[rng.below(malicious.len() as u64) as usize];
        plan = plan.with(v, behavior);
    }

    // Initial values stay far below the forgery bit pattern, so a
    // decided forgery is both outside the pool and visibly corrupt.
    let proposed: Vec<u64> = (0..n).map(|_| 1 + rng.below(999)).collect();

    // The executor only reads n and the crash sets from its config;
    // n ≥ 3f+1 makes (n, f, f) a valid crash-model configuration.
    let sim = SystemConfig::new(n, byz.f(), byz.f()).expect("n >= 3f+1 is a valid crash config");
    let values = proposed.clone();
    let build_plan = plan.clone();
    let obs = observer.clone();
    let mut exec: ManualExecutor<u64, WrappedFastBft> = ManualExecutor::new(sim, move |q| {
        build_plan.wrap_observed(FastBft::new(byz, q, values[q.index()]), obs.clone())
    });
    exec.start_all();

    // Chaos: deliver pending messages in seeded order, interleaving
    // seeded timer fires (heartbeats, suspicion, ballot retries) so
    // recovery paths run with the coalition's corruption in flight.
    let mut steps = 0u32;
    loop {
        steps += 1;
        if steps > STEP_BUDGET {
            break;
        }
        let ids = exec.pending_matching(|_| true);
        if ids.is_empty() {
            if !fire_seeded_timer(&mut exec, &mut rng) {
                break;
            }
            continue;
        }
        exec.deliver(ids[rng.below(ids.len() as u64) as usize]);
        if rng.chance(1, 10) {
            fire_seeded_timer(&mut exec, &mut rng);
        }
    }

    ByzRun {
        plan,
        proposed,
        decide_log: exec.decide_log().to_vec(),
    }
}

/// The honest-only oracle: Agreement, Validity and Integrity over the
/// decisions of processes the plan left honest. Byzantine processes'
/// own decide events are ignored — a traitor claiming a wrong decision
/// is not a protocol violation.
pub fn check_byzantine(run: &ByzRun) -> Option<Verdict> {
    let honest: Vec<(ProcessId, u64)> = run
        .decide_log
        .iter()
        .copied()
        .filter(|(p, _)| run.plan.behavior_of(*p).is_honest())
        .collect();
    if let Some(&(p0, v0)) = honest.first() {
        for &(p, v) in &honest {
            if v != v0 {
                return Some(Verdict::Agreement(format!(
                    "honest {p0} decided {v0} but honest {p} decided {v}"
                )));
            }
        }
    }
    for &(p, v) in &honest {
        if !run.proposed.contains(&v) {
            return Some(Verdict::Validity(format!(
                "honest {p} decided {v}, which no process proposed (forged payload?)"
            )));
        }
    }
    for (i, &(p, v)) in honest.iter().enumerate() {
        if honest[..i].iter().any(|&(q, _)| q == p) {
            return Some(Verdict::Integrity(format!(
                "honest {p} decided more than once (last value {v})"
            )));
        }
    }
    None
}

/// Runs a Byzantine campaign, stopping at the first violation.
pub fn fuzz_byzantine(fc: &ByzFuzzConfig, observer: &ObserverHandle) -> ByzFuzzOutcome {
    let mut decisions = 0u64;
    for i in 0..fc.iters {
        let stream_seed = SplitMix64::stream(fc.seed, i);
        let run = run_byzantine_iteration(fc, stream_seed, observer);
        decisions += run
            .decide_log
            .iter()
            .filter(|(p, _)| run.plan.behavior_of(*p).is_honest())
            .count() as u64;
        if let Some(verdict) = check_byzantine(&run) {
            return ByzFuzzOutcome {
                iterations_run: i + 1,
                decisions,
                failure: Some(ByzFailure {
                    iteration: i,
                    stream_seed,
                    victims: run.plan.byzantine().collect(),
                    verdict,
                }),
            };
        }
    }
    ByzFuzzOutcome {
        iterations_run: fc.iters,
        decisions,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_types::ByzVariant;

    fn minimal() -> ByzConfig {
        ByzConfig::minimal_fast(ByzVariant::Fab, 1).unwrap()
    }

    #[test]
    fn iterations_are_deterministic() {
        let fc = ByzFuzzConfig {
            byz: minimal(),
            seed: 11,
            iters: 1,
        };
        let seed = SplitMix64::stream(fc.seed, 0);
        let obs = ObserverHandle::default();
        let a = run_byzantine_iteration(&fc, seed, &obs);
        let b = run_byzantine_iteration(&fc, seed, &obs);
        assert_eq!(a.decide_log, b.decide_log);
        assert_eq!(a.proposed, b.proposed);
        let va: Vec<_> = a.plan.byzantine().collect();
        let vb: Vec<_> = b.plan.byzantine().collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn process_zero_is_never_a_victim() {
        for seed in 0..200 {
            let mut rng = SplitMix64::new(seed);
            for v in pick_victims(&mut rng, 6, 1) {
                assert_ne!(v, ProcessId::new(0), "seed {seed}");
            }
        }
    }

    #[test]
    fn forged_decision_is_a_validity_violation() {
        // A synthetic run in which the only honest decide is a value
        // nobody proposed (the forgery bit pattern): Agreement holds
        // vacuously, so the oracle must flag Validity.
        let run = ByzRun {
            plan: ByzPlan::honest(0),
            proposed: vec![1, 2, 3],
            decide_log: vec![(ProcessId::new(0), 0x8000_0000_0000_0001)],
        };
        let verdict = check_byzantine(&run).expect("forged decision must be flagged");
        assert_eq!(verdict.property(), "validity");
    }

    #[test]
    fn byzantine_decisions_are_not_judged() {
        let fc = ByzFuzzConfig {
            byz: minimal(),
            seed: 5,
            iters: 1,
        };
        let obs = ObserverHandle::default();
        let mut run = run_byzantine_iteration(&fc, SplitMix64::stream(5, 0), &obs);
        let (victim, _) = run.plan.byzantine().next().expect("one victim");
        let before = check_byzantine(&run);
        run.decide_log.push((victim, u64::MAX));
        assert_eq!(check_byzantine(&run), before, "traitor claims are ignored");
    }

    #[test]
    fn small_campaign_is_clean_and_decides() {
        let fc = ByzFuzzConfig {
            byz: minimal(),
            seed: 9,
            iters: 15,
        };
        let out = fuzz_byzantine(&fc, &ObserverHandle::default());
        assert!(out.is_clean(), "unexpected violation: {:?}", out.failure);
        assert_eq!(out.iterations_run, 15);
        assert!(out.decisions > 0, "campaign never decided anything");
    }

    #[test]
    fn floor_config_campaigns_are_clean() {
        // n = 3f+1 = 4: the REVIEW.md corner where a promise quorum's
        // intersection with an accepting quorum holds a single
        // guaranteed-honest reporter (Fab), and where the Tight
        // quorum can exclude the coordinator. Both must stay clean now
        // that slow reports are certificate-pinned and Tight recovery
        // waits for the coordinator.
        for variant in [ByzVariant::Fab, ByzVariant::Tight] {
            let fc = ByzFuzzConfig {
                byz: ByzConfig::new(4, 1, variant).unwrap(),
                seed: 21,
                iters: 15,
            };
            let out = fuzz_byzantine(&fc, &ObserverHandle::default());
            assert!(
                out.is_clean(),
                "{variant:?} floor violation: {:?}",
                out.failure
            );
            assert!(out.decisions > 0, "{variant:?} floor campaign was vacuous");
        }
    }

    #[test]
    fn tight_variant_campaign_is_clean() {
        let fc = ByzFuzzConfig {
            byz: ByzConfig::minimal_fast(ByzVariant::Tight, 2).unwrap(),
            seed: 13,
            iters: 8,
        };
        let out = fuzz_byzantine(&fc, &ObserverHandle::default());
        assert!(out.is_clean(), "unexpected violation: {:?}", out.failure);
        assert!(out.decisions > 0);
    }
}
