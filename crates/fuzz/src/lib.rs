//! Deterministic schedule fuzzer for the workspace's consensus
//! protocols.
//!
//! The model checker in `twostep-verify` explores *every* interleaving
//! of small systems; this crate explores *random* interleavings of
//! larger ones — with fault injection (message drops, crashes,
//! crash-restarts, timer fires) — and shrinks any safety violation to a
//! minimal, replayable schedule. The two share their oracles: a run is
//! judged by `twostep-verify`'s Agreement/Validity/Integrity checkers,
//! so the fuzzer cannot drift from the project's definition of
//! correctness.
//!
//! Everything is deterministic. An iteration is fully described by
//! `(root seed, iteration index)`; a counterexample is fully described
//! by its [`FuzzCase`] (configuration, values, leader, ablations,
//! schedule), which the `twostep-fuzz` binary prints in a one-line
//! `--replay` format.
//!
//! The pipeline, module by module:
//!
//! 1. [`rng`] — a self-contained SplitMix64 with per-iteration streams.
//! 2. [`gen`] — phase-structured schedule generation, biased towards
//!    the fast-decide / vote-split / crash / recover shape of the
//!    paper's §B.1 adversary.
//! 3. [`case`] — the total-action interpreter over
//!    [`twostep_sim::ManualExecutor`], dispatching across the two-step
//!    protocol (task and object variants) and the Paxos / Fast Paxos /
//!    EPaxos-lite baselines.
//! 4. [`oracle`] — safety (and optional termination) verdicts.
//! 5. [`mod@shrink`] — ddmin minimization to a 1-minimal schedule.
//! 6. [`runner`] — the campaign loop tying it all together.
//! 7. [`witness`] — the timed two-step-ness check run before each
//!    campaign (the untimed executor cannot measure `2Δ`).
//! 8. [`mod@shard`] — sharded campaigns: `k` groups on shared nodes,
//!    a shard-leader node crash/restart mid-load, and a per-shard
//!    oracle with a cross-shard leakage check.
//! 9. [`byzcamp`] — Byzantine campaigns: seeded equivocation/forgery
//!    coalitions injected into the FaB-style fast-BFT baseline via
//!    `twostep-byz`, judged by honest-only oracles.

pub mod byzcamp;
pub mod case;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod runner;
pub mod schedule;
pub mod shard;
pub mod shrink;
pub mod witness;

pub use byzcamp::{
    check_byzantine, fuzz_byzantine, run_byzantine_iteration, ByzFailure, ByzFuzzConfig,
    ByzFuzzOutcome, ByzRun,
};
pub use case::{run_case, run_case_observed, FuzzCase, FuzzProtocol, RunReport};
pub use gen::gen_case;
pub use oracle::{check_liveness, check_safety, Verdict};
pub use rng::SplitMix64;
pub use runner::{fuzz, fuzz_with_progress, Failure, FuzzConfig, FuzzOutcome};
pub use schedule::{Action, ParseError, Schedule};
pub use shard::{
    check_sharded, fuzz_sharded, run_sharded_iteration, shard_of_value, shard_value, ShardFailure,
    ShardFuzzConfig, ShardFuzzOutcome, SHARD_STRIDE,
};
pub use shrink::{shrink, ShrinkOutcome};
pub use witness::{paxos_is_not_two_step, two_step_witness};
