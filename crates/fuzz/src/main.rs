//! `twostep-fuzz` — the schedule-fuzzing CLI.
//!
//! ```text
//! # 1000 random schedules of the task protocol at its (1,1) minimum:
//! twostep-fuzz --seed 42 --iters 1000 --protocol task
//!
//! # Demonstrate that the recovery tie-break is load-bearing: inject the
//! # min-instead-of-max ablation at the first configuration where it can
//! # split a recovery quorum, and shrink the counterexample:
//! twostep-fuzz --protocol task --e 2 --f 2 --ablate no_max_tiebreak
//!
//! # Replay a shrunk counterexample:
//! twostep-fuzz --protocol task --e 2 --f 2 --ablate no_max_tiebreak \
//!     --replay 'd:5>3 D:5 c:5 c:2 T:0 D:0 ...' --values 0,0,1,0,0,2 --leader 0
//! ```
//!
//! Exit codes: 0 = clean, 1 = violation found, 2 = usage error.

use std::process::ExitCode;

use twostep_core::Ablations;
use twostep_fuzz::{
    check_liveness, check_safety, fuzz_byzantine, fuzz_sharded, fuzz_with_progress, run_case,
    two_step_witness, ByzFuzzConfig, Failure, FuzzCase, FuzzConfig, FuzzProtocol, Schedule,
    ShardFuzzConfig,
};
use twostep_telemetry::{Metrics, MetricsSnapshot, Path, RecoveryCase};
use twostep_types::{ByzConfig, ByzVariant, ProcessId, SystemConfig};

const USAGE: &str = "\
twostep-fuzz: deterministic schedule fuzzer with fault injection and shrinking

USAGE:
    twostep-fuzz [OPTIONS]

OPTIONS:
    --seed <N>            root seed (default 1); every iteration derives its
                          own stream seed from it
    --iters <N>           schedules per protocol (default 1000)
    --protocol <P>        task | object | paxos | fastpaxos | epaxos | all
                          (default all)
    --e <N>               two-step failure bound e (default 1)
    --f <N>               crash bound f (default 1)
    --n <N>               process count (default: the protocol's minimum for
                          the given e, f)
    --allow-below-bound   accept an --n under the protocol's minimal-process
                          bound (for reproducing the lower-bound scenarios);
                          by default such configurations are rejected
    --ablate <A>          inject a known bug; repeatable. One of:
                          no_max_tiebreak | no_proposer_exclusion |
                          no_object_guard
    --no-shrink           report the raw failing schedule without minimizing
    --shrink-budget <N>   max schedule executions while shrinking (default 2000)
    --liveness            also flag live processes that never decide
                          (heuristic; termination findings are not shrunk)
    --shards <K>          run the sharded campaign instead: K ≥ 2 object-
                          consensus groups on shared nodes, crashing and
                          restarting a shard-leader node mid-load, judged
                          per shard plus a cross-shard leakage check
    --byzantine           run the Byzantine campaign instead: seeded
                          coalitions of equivocating/forging/ballot-lying/
                          silent victims (up to f, never the coordinator)
                          injected into the FaB-style FastBft baseline,
                          judged by honest-only Agreement/Validity/Integrity
                          oracles
    --variant <V>         fab | tight — the fast-quorum sizing for
                          --byzantine (default fab); --f is the Byzantine
                          bound, --n defaults to the variant's minimal
                          fast-live size (5f+1 or 5f−1)
    --replay <SCHEDULE>   run one explicit schedule instead of fuzzing
                          (requires a single --protocol)
    --values <CSV>        initial values for --replay (default all zero)
    --leader <N>          static leader for --replay (default 0)
    -h, --help            this text
";

struct Opts {
    seed: u64,
    iters: u64,
    protocols: Vec<FuzzProtocol>,
    e: usize,
    f: usize,
    n: Option<usize>,
    allow_below_bound: bool,
    ablations: Ablations,
    shrink: bool,
    shrink_budget: usize,
    liveness: bool,
    shards: usize,
    byzantine: bool,
    variant: ByzVariant,
    replay: Option<Schedule>,
    values: Option<Vec<u64>>,
    leader: u32,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        seed: 1,
        iters: 1000,
        protocols: FuzzProtocol::ALL.to_vec(),
        e: 1,
        f: 1,
        n: None,
        allow_below_bound: false,
        ablations: Ablations::NONE,
        shrink: true,
        shrink_budget: 2000,
        liveness: false,
        shards: 1,
        byzantine: false,
        variant: ByzVariant::Fab,
        replay: None,
        values: None,
        leader: 0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--seed" => o.seed = parse_num(&value()?)?,
            "--iters" => o.iters = parse_num(&value()?)?,
            "--protocol" => {
                let v = value()?;
                o.protocols = if v == "all" {
                    FuzzProtocol::ALL.to_vec()
                } else {
                    vec![FuzzProtocol::parse(&v).ok_or_else(|| format!("unknown protocol {v:?}"))?]
                };
            }
            "--e" => o.e = parse_num(&value()?)? as usize,
            "--f" => o.f = parse_num(&value()?)? as usize,
            "--n" => o.n = Some(parse_num(&value()?)? as usize),
            "--allow-below-bound" => o.allow_below_bound = true,
            "--ablate" => match value()?.as_str() {
                "no_max_tiebreak" => o.ablations.no_max_tiebreak = true,
                "no_proposer_exclusion" => o.ablations.no_proposer_exclusion = true,
                "no_object_guard" => o.ablations.no_object_guard = true,
                other => return Err(format!("unknown ablation {other:?}")),
            },
            "--no-shrink" => o.shrink = false,
            "--shrink-budget" => o.shrink_budget = parse_num(&value()?)? as usize,
            "--liveness" => o.liveness = true,
            "--shards" => {
                o.shards = parse_num(&value()?)? as usize;
                if o.shards < 2 {
                    return Err("--shards needs at least 2 (1 is the flat fuzzer)".into());
                }
            }
            "--byzantine" => o.byzantine = true,
            "--variant" => {
                o.variant = match value()?.as_str() {
                    "fab" => ByzVariant::Fab,
                    "tight" => ByzVariant::Tight,
                    other => return Err(format!("unknown variant {other:?} (fab | tight)")),
                };
            }
            "--replay" => {
                let v = value()?;
                o.replay = Some(
                    v.parse()
                        .map_err(|e| format!("bad --replay schedule: {e}"))?,
                );
            }
            "--values" => {
                let v = value()?;
                o.values = Some(
                    v.split(',')
                        .map(|s| s.trim().parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("bad --values {v:?}"))?,
                );
            }
            "--leader" => o.leader = parse_num(&value()?)? as u32,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(o)
}

fn parse_num(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("bad number {s:?}"))
}

fn config_for(p: FuzzProtocol, o: &Opts) -> Result<SystemConfig, String> {
    let n = o.n.unwrap_or_else(|| p.min_processes(o.e, o.f));
    let cfg = if o.allow_below_bound {
        // Deliberately below-bound runs skip the protocol-family check
        // (the standing n ≥ 2f+1 / e ≤ f assumptions still apply).
        SystemConfig::new(n, o.e, o.f)
    } else {
        SystemConfig::for_protocol(p.kind(), n, o.e, o.f)
    };
    cfg.map_err(|e| format!("bad configuration: {e} (see --allow-below-bound)"))
}

fn ablation_flags(a: Ablations) -> String {
    let mut s = String::new();
    if a.no_max_tiebreak {
        s.push_str(" --ablate no_max_tiebreak");
    }
    if a.no_proposer_exclusion {
        s.push_str(" --ablate no_proposer_exclusion");
    }
    if a.no_object_guard {
        s.push_str(" --ablate no_object_guard");
    }
    s
}

fn print_failure(fail: &Failure, liveness: bool) {
    let case = &fail.case;
    let cfg = case.cfg;
    println!(
        "counterexample found: protocol={} n={} e={} f={} iteration={} stream-seed={:#x}",
        case.protocol.name(),
        cfg.n(),
        cfg.e(),
        cfg.f(),
        fail.iteration,
        fail.stream_seed,
    );
    println!(
        "  property violated: {} — {}",
        fail.verdict.property(),
        fail.verdict.detail()
    );
    let values: Vec<String> = case.values.iter().map(u64::to_string).collect();
    println!("  values: {}", values.join(","));
    println!("  leader: {}", case.leader);
    println!(
        "  schedule ({} actions): {}",
        case.schedule.len(),
        case.schedule
    );
    let replayed = match &fail.shrunk {
        Some(shrunk) => {
            println!(
                "  shrunk ({} actions, {} executions): {}",
                shrunk.len(),
                fail.shrink_executions,
                shrunk
            );
            shrunk
        }
        None => &case.schedule,
    };
    println!(
        "  replay: twostep-fuzz --protocol {} --e {} --f {} --n {}{}{} --replay '{}' --values {} --leader {}",
        case.protocol.name(),
        cfg.e(),
        cfg.f(),
        cfg.n(),
        ablation_flags(case.ablations),
        if liveness { " --liveness" } else { "" },
        replayed,
        values.join(","),
        case.leader.as_u32(),
    );
}

fn run_replay(o: &Opts) -> Result<bool, String> {
    let schedule = o.replay.clone().expect("checked by caller");
    if o.protocols.len() != 1 {
        return Err("--replay needs a single --protocol".into());
    }
    let protocol = o.protocols[0];
    let cfg = config_for(protocol, o)?;
    let values = match &o.values {
        Some(v) if v.len() == cfg.n() => v.clone(),
        Some(v) => {
            return Err(format!(
                "--values has {} entries, need n={}",
                v.len(),
                cfg.n()
            ))
        }
        None => vec![0; cfg.n()],
    };
    if o.leader as usize >= cfg.n() {
        return Err(format!(
            "--leader {} out of range for n={}",
            o.leader,
            cfg.n()
        ));
    }
    let case = FuzzCase {
        protocol,
        cfg,
        values,
        leader: ProcessId::new(o.leader),
        ablations: o.ablations,
        schedule,
    };
    let report = run_case(&case);
    let verdict = check_safety(protocol, &report).or_else(|| {
        if o.liveness {
            check_liveness(&report, report.alive)
        } else {
            None
        }
    });
    let decided: Vec<String> = report
        .decide_log
        .iter()
        .map(|(p, v)| format!("{p}:{v}"))
        .collect();
    println!(
        "replayed {} actions: decisions [{}]",
        case.schedule.len(),
        decided.join(" "),
    );
    match verdict {
        Some(v) => {
            println!("property violated: {} — {}", v.property(), v.detail());
            Ok(false)
        }
        None => {
            println!("no violation");
            Ok(true)
        }
    }
}

/// One-line telemetry summary of a campaign: how the executed schedules
/// decided (by path), how often the slow path and the recovery rule
/// fired (by case), and how much ballot/leader churn the faults caused.
fn campaign_summary(snap: &MetricsSnapshot) -> String {
    let paths: Vec<String> = Path::ALL
        .iter()
        .map(|p| snap.decided(*p).to_string())
        .collect();
    let cases: Vec<String> = RecoveryCase::ALL
        .iter()
        .map(|c| format!("{}={}", c.label(), snap.recovery(*c)))
        .collect();
    format!(
        "decisions f/s/gt/eq/l = {}; slow entries {}; recovery {}; ballot advances {}; leader changes {}",
        paths.join("/"),
        snap.slow_entries,
        cases.join(" "),
        snap.ballot_advances,
        snap.leader_changes,
    )
}

/// The sharded campaign: `--shards K` groups of the object protocol on
/// shared nodes, a shard-leader node crashing and restarting mid-load,
/// per-shard safety plus cross-shard leakage as the oracle.
fn run_sharded(o: &Opts) -> Result<bool, String> {
    let cfg = config_for(FuzzProtocol::Object, o)?;
    let fc = ShardFuzzConfig::new(o.shards, cfg, o.seed, o.iters);
    println!(
        "fuzzing sharded object: shards={} n={} e={} f={} seed={} iters={}",
        o.shards,
        cfg.n(),
        cfg.e(),
        cfg.f(),
        o.seed,
        o.iters,
    );
    let out = fuzz_sharded(&fc);
    match &out.failure {
        None => {
            println!(
                "  clean: {} iterations, {} decide events across {} shards, no violation",
                out.iterations_run, out.decisions, o.shards
            );
            Ok(true)
        }
        Some(fail) => {
            println!(
                "counterexample found: shards={} n={} e={} f={} iteration={} stream-seed={:#x}",
                o.shards,
                cfg.n(),
                cfg.e(),
                cfg.f(),
                fail.iteration,
                fail.stream_seed,
            );
            println!(
                "  property violated in shard {}: {} — {}",
                fail.shard,
                fail.verdict.property(),
                fail.verdict.detail()
            );
            println!(
                "  replay: twostep-fuzz --shards {} --e {} --f {} --n {} --seed {} --iters {}",
                o.shards,
                cfg.e(),
                cfg.f(),
                cfg.n(),
                o.seed,
                fail.iteration + 1,
            );
            Ok(false)
        }
    }
}

/// The Byzantine campaign: seeded coalitions drawing from all four
/// malicious behaviors (equivocate, forge, lie-ballot, silence)
/// injected into the FaB-style `FastBft` baseline, judged by
/// honest-only oracles (what the traitors claim to decide is noise).
fn run_byzantine(o: &Opts) -> Result<bool, String> {
    let byz = match o.n {
        Some(n) => ByzConfig::new(n, o.f, o.variant),
        None => ByzConfig::minimal_fast(o.variant, o.f),
    }
    .map_err(|e| format!("bad Byzantine configuration: {e}"))?;
    let (metrics, observer) = Metrics::shared();
    let fc = ByzFuzzConfig {
        byz,
        seed: o.seed,
        iters: o.iters,
    };
    println!(
        "fuzzing byzantine {}: n={} f={} fast-quorum={} seed={} iters={}",
        byz.variant().name(),
        byz.n(),
        byz.f(),
        byz.fast_quorum(),
        o.seed,
        o.iters,
    );
    let out = fuzz_byzantine(&fc, &observer);
    let snap = metrics.snapshot();
    println!(
        "  injections: {} total (equivocate {}, forge {}, lie-ballot {}, silence {})",
        snap.total_injections(),
        snap.injections("equivocate"),
        snap.injections("forge"),
        snap.injections("lie-ballot"),
        snap.injections("silence"),
    );
    match &out.failure {
        None => {
            println!(
                "  clean: {} iterations, {} honest decide events, no violation",
                out.iterations_run, out.decisions
            );
            if out.decisions == 0 {
                println!("  WARNING: campaign never decided — vacuous pass");
                return Ok(false);
            }
            Ok(true)
        }
        Some(fail) => {
            let victims: Vec<String> = fail
                .victims
                .iter()
                .map(|(p, b)| format!("{p}:{b:?}"))
                .collect();
            println!(
                "counterexample found: variant={} n={} f={} iteration={} stream-seed={:#x}",
                byz.variant().name(),
                byz.n(),
                byz.f(),
                fail.iteration,
                fail.stream_seed,
            );
            println!("  victims: {}", victims.join(" "));
            println!(
                "  property violated among honest processes: {} — {}",
                fail.verdict.property(),
                fail.verdict.detail()
            );
            println!(
                "  replay: twostep-fuzz --byzantine --variant {} --f {} --n {} --seed {} --iters {}",
                match o.variant {
                    ByzVariant::Fab => "fab",
                    ByzVariant::Tight => "tight",
                },
                byz.f(),
                byz.n(),
                o.seed,
                fail.iteration + 1,
            );
            Ok(false)
        }
    }
}

fn run_fuzz(o: &Opts) -> Result<bool, String> {
    let mut clean = true;
    for &protocol in &o.protocols {
        let cfg = config_for(protocol, o)?;
        let (metrics, observer) = Metrics::shared();
        let fc = FuzzConfig {
            protocol,
            cfg,
            seed: o.seed,
            iters: o.iters,
            ablations: o.ablations,
            shrink: o.shrink,
            shrink_budget: o.shrink_budget,
            liveness: o.liveness,
            observer,
        };
        println!(
            "fuzzing {}: n={} e={} f={} seed={} iters={}{}",
            protocol.name(),
            cfg.n(),
            cfg.e(),
            cfg.f(),
            o.seed,
            o.iters,
            ablation_flags(o.ablations),
        );
        // Pre-flight: the timed two-step-ness witness (Paxos is exempt —
        // it has no fast path). Ablations only weaken safety, so the
        // witness runs unablated.
        if let Err(err) = two_step_witness(protocol, cfg) {
            println!("  two-step witness FAILED: {err}");
            return Ok(false);
        }
        let outcome = fuzz_with_progress(&fc, |done| {
            println!("  ... {done}/{} schedules", o.iters);
        });
        let summary = campaign_summary(&metrics.snapshot());
        match &outcome.failure {
            None => {
                println!(
                    "  clean: {} schedules, no violation",
                    outcome.iterations_run
                );
                println!("  telemetry: {summary}");
            }
            Some(fail) => {
                print_failure(fail, o.liveness);
                println!("  telemetry: {summary}");
                clean = false;
                if fail.verdict.is_safety() {
                    // Safety bugs stop the campaign; a liveness finding
                    // still lets the remaining protocols run.
                    return Ok(false);
                }
            }
        }
    }
    Ok(clean)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.replay.is_some() {
        run_replay(&opts)
    } else if opts.byzantine {
        run_byzantine(&opts)
    } else if opts.shards >= 2 {
        run_sharded(&opts)
    } else {
        run_fuzz(&opts)
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
