//! The fuzzing loop.
//!
//! Each iteration derives an independent stream seed from the root seed
//! (see [`SplitMix64::stream`]), generates a case, executes it and asks
//! the oracles for a verdict. The first violation stops the loop; safety
//! violations are then minimized by [`shrink`]. Everything is replayable
//! from `(root seed, iteration)` — or, after shrinking, from the printed
//! schedule alone.

use twostep_core::Ablations;
use twostep_telemetry::ObserverHandle;
use twostep_types::SystemConfig;

use crate::case::{run_case_observed, FuzzCase, FuzzProtocol};
use crate::gen::gen_case;
use crate::oracle::{check_liveness, check_safety, Verdict};
use crate::rng::SplitMix64;
use crate::schedule::Schedule;
use crate::shrink::shrink;

/// Parameters of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Protocol under test.
    pub protocol: FuzzProtocol,
    /// System configuration.
    pub cfg: SystemConfig,
    /// Root seed; iteration `i` uses stream seed `stream(seed, i)`.
    pub seed: u64,
    /// Number of schedules to try.
    pub iters: u64,
    /// Ablations to inject (for bug-finding demonstrations).
    pub ablations: Ablations,
    /// Whether to minimize counterexamples.
    pub shrink: bool,
    /// Execution budget for the shrinker.
    pub shrink_budget: usize,
    /// Also flag runs where a live process failed to decide after the
    /// schedule's drain phase. Off by default: a generated schedule does
    /// not *guarantee* a full drain, so this is a heuristic lens, and
    /// termination verdicts are never shrunk (the empty schedule
    /// trivially "fails" termination).
    pub liveness: bool,
    /// Telemetry hooks attached to every protocol instance the campaign
    /// spawns (detached by default). Aggregates decision paths, recovery
    /// cases and ballot churn across all executed schedules — shrinker
    /// replays are *not* observed, so the numbers describe the campaign
    /// itself.
    pub observer: ObserverHandle,
}

impl FuzzConfig {
    /// A campaign with the default knobs: shrinking on (budget 2000
    /// executions), liveness off.
    pub fn new(protocol: FuzzProtocol, cfg: SystemConfig, seed: u64, iters: u64) -> Self {
        FuzzConfig {
            protocol,
            cfg,
            seed,
            iters,
            ablations: Ablations::NONE,
            shrink: true,
            shrink_budget: 2000,
            liveness: false,
            observer: ObserverHandle::none(),
        }
    }
}

/// A violation found by a campaign.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The iteration (0-based) that failed.
    pub iteration: u64,
    /// The stream seed of that iteration.
    pub stream_seed: u64,
    /// The complete failing case.
    pub case: FuzzCase,
    /// What the oracle flagged.
    pub verdict: Verdict,
    /// The minimized schedule, if shrinking ran.
    pub shrunk: Option<Schedule>,
    /// Executions the shrinker used.
    pub shrink_executions: usize,
}

/// The result of a campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Iterations actually executed (equals `iters` on a clean run).
    pub iterations_run: u64,
    /// The first violation, if any.
    pub failure: Option<Failure>,
}

impl FuzzOutcome {
    /// True if no violation was found.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs a fuzzing campaign, stopping at the first violation.
pub fn fuzz(fc: &FuzzConfig) -> FuzzOutcome {
    fuzz_with_progress(fc, |_| {})
}

/// Like [`fuzz`], invoking `progress(iterations_done)` periodically.
pub fn fuzz_with_progress(fc: &FuzzConfig, mut progress: impl FnMut(u64)) -> FuzzOutcome {
    for i in 0..fc.iters {
        if i > 0 && i % 1000 == 0 {
            progress(i);
        }
        let stream_seed = SplitMix64::stream(fc.seed, i);
        let case = gen_case(fc.protocol, fc.cfg, fc.ablations, stream_seed);
        let report = run_case_observed(&case, fc.observer.clone());
        let verdict = check_safety(fc.protocol, &report).or_else(|| {
            if fc.liveness {
                check_liveness(&report, report.alive)
            } else {
                None
            }
        });
        if let Some(verdict) = verdict {
            let (shrunk, shrink_executions) = if fc.shrink && verdict.is_safety() {
                let out = shrink(&case, fc.shrink_budget);
                (Some(out.schedule), out.executions)
            } else {
                (None, 0)
            };
            return FuzzOutcome {
                iterations_run: i + 1,
                failure: Some(Failure {
                    iteration: i,
                    stream_seed,
                    case,
                    verdict,
                    shrunk,
                    shrink_executions,
                }),
            };
        }
    }
    FuzzOutcome {
        iterations_run: fc.iters,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_task_protocol_survives_a_small_campaign() {
        let cfg = SystemConfig::new(3, 1, 1).unwrap();
        let fc = FuzzConfig::new(FuzzProtocol::Task, cfg, 7, 50);
        let out = fuzz(&fc);
        assert!(out.is_clean(), "unexpected violation: {:?}", out.failure);
        assert_eq!(out.iterations_run, 50);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = SystemConfig::new(6, 2, 2).unwrap();
        let mut fc = FuzzConfig::new(FuzzProtocol::Task, cfg, 42, 20);
        fc.ablations = Ablations {
            no_max_tiebreak: true,
            ..Ablations::NONE
        };
        let a = fuzz(&fc);
        let b = fuzz(&fc);
        assert_eq!(a.iterations_run, b.iterations_run);
        assert_eq!(
            a.failure
                .as_ref()
                .map(|x| (x.iteration, x.case.schedule.clone())),
            b.failure
                .as_ref()
                .map(|x| (x.iteration, x.case.schedule.clone())),
        );
    }
}
