//! The fuzzer's schedule language.
//!
//! A [`Schedule`] is a flat list of [`Action`]s interpreted against a
//! [`twostep_sim::ManualExecutor`]. Every action is *total*: it decodes
//! against whatever the executor currently offers (pending messages,
//! armed timers, alive processes) and becomes a no-op when nothing
//! matches. Totality is what makes delta-debugging trivial — deleting
//! any subsequence of a schedule yields another valid schedule — and is
//! the standard trick for shrinkable schedule fuzzing.
//!
//! Process operands are raw `u8` indices reduced modulo `n` at decode
//! time; message/timer operands are reduced modulo the number of
//! currently matching candidates.

use std::fmt;
use std::str::FromStr;

/// One step of a fuzzed interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Deliver the oldest pending message `from → to`.
    DeliverFromTo(u8, u8),
    /// Deliver every pending message addressed to the process, in send
    /// order.
    DeliverAllTo(u8),
    /// Deliver the pending message at this index (mod the pending count).
    DeliverIdx(u16),
    /// Drop (lose) the oldest pending message `from → to`.
    DropFromTo(u8, u8),
    /// Drop the pending message at this index (mod the pending count).
    DropIdx(u16),
    /// Crash the process. Respects the crash budget: decodes to a no-op
    /// once `f` processes are simultaneously down.
    Crash(u8),
    /// Restart a crashed process with its pre-crash state.
    Restart(u8),
    /// Fire the armed timer at this index (mod the armed count) at the
    /// process.
    FireTimer(u8, u16),
    /// Fire every timer currently armed at the process.
    FireAllTimers(u8),
    /// Submit a client proposal of the value at the process
    /// (object-style protocols only; no-op for task-style).
    Propose(u8, u8),
}

/// An ordered sequence of actions — one fuzzed execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// The actions, executed front to back.
    pub actions: Vec<Action>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule {
            actions: Vec::new(),
        }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the schedule has no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl From<Vec<Action>> for Schedule {
    fn from(actions: Vec<Action>) -> Self {
        Schedule { actions }
    }
}

// The compact wire format, used to print counterexamples and replay
// them via `--replay`:
//   d:A>B   DeliverFromTo     D:A     DeliverAllTo    i:K  DeliverIdx
//   x:A>B   DropFromTo        X:K     DropIdx
//   c:A     Crash             r:A     Restart
//   t:A.K   FireTimer         T:A     FireAllTimers
//   p:A=V   Propose
// Actions are space-separated.

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::DeliverFromTo(a, b) => write!(f, "d:{a}>{b}"),
            Action::DeliverAllTo(a) => write!(f, "D:{a}"),
            Action::DeliverIdx(k) => write!(f, "i:{k}"),
            Action::DropFromTo(a, b) => write!(f, "x:{a}>{b}"),
            Action::DropIdx(k) => write!(f, "X:{k}"),
            Action::Crash(a) => write!(f, "c:{a}"),
            Action::Restart(a) => write!(f, "r:{a}"),
            Action::FireTimer(a, k) => write!(f, "t:{a}.{k}"),
            Action::FireAllTimers(a) => write!(f, "T:{a}"),
            Action::Propose(a, v) => write!(f, "p:{a}={v}"),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Error parsing the compact schedule format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad schedule token: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FromStr for Action {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError(s.to_string());
        let (tag, rest) = s.split_once(':').ok_or_else(bad)?;
        let two = |sep: char| -> Result<(u8, u8), ParseError> {
            let (a, b) = rest.split_once(sep).ok_or_else(bad)?;
            Ok((a.parse().map_err(|_| bad())?, b.parse().map_err(|_| bad())?))
        };
        match tag {
            "d" => two('>').map(|(a, b)| Action::DeliverFromTo(a, b)),
            "D" => Ok(Action::DeliverAllTo(rest.parse().map_err(|_| bad())?)),
            "i" => Ok(Action::DeliverIdx(rest.parse().map_err(|_| bad())?)),
            "x" => two('>').map(|(a, b)| Action::DropFromTo(a, b)),
            "X" => Ok(Action::DropIdx(rest.parse().map_err(|_| bad())?)),
            "c" => Ok(Action::Crash(rest.parse().map_err(|_| bad())?)),
            "r" => Ok(Action::Restart(rest.parse().map_err(|_| bad())?)),
            "t" => {
                let (a, k) = rest.split_once('.').ok_or_else(bad)?;
                Ok(Action::FireTimer(
                    a.parse().map_err(|_| bad())?,
                    k.parse().map_err(|_| bad())?,
                ))
            }
            "T" => Ok(Action::FireAllTimers(rest.parse().map_err(|_| bad())?)),
            "p" => two('=').map(|(a, v)| Action::Propose(a, v)),
            _ => Err(bad()),
        }
    }
}

impl FromStr for Schedule {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let actions = s
            .split_whitespace()
            .map(Action::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Schedule { actions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_compact_format() {
        let sched = Schedule::from(vec![
            Action::DeliverFromTo(5, 3),
            Action::DeliverAllTo(0),
            Action::DeliverIdx(17),
            Action::DropFromTo(1, 2),
            Action::DropIdx(4),
            Action::Crash(5),
            Action::Restart(5),
            Action::FireTimer(0, 2),
            Action::FireAllTimers(3),
            Action::Propose(1, 7),
        ]);
        let text = sched.to_string();
        assert_eq!(text, "d:5>3 D:0 i:17 x:1>2 X:4 c:5 r:5 t:0.2 T:3 p:1=7");
        assert_eq!(text.parse::<Schedule>().unwrap(), sched);
    }

    #[test]
    fn rejects_garbage() {
        assert!("q:1".parse::<Action>().is_err());
        assert!("d:1".parse::<Action>().is_err());
        assert!("d:a>b".parse::<Action>().is_err());
        assert!("".parse::<Schedule>().unwrap().is_empty());
    }
}
