//! Sharded campaigns: `k` independent consensus groups on shared nodes,
//! with a shard-leader node crash/restart injected mid-load.
//!
//! The sharded runtime multiplexes every consensus group over the same
//! physical nodes, so its failure model is *correlated*: a node crash
//! removes one replica from **every** group at once, and the crashed
//! node leads at least one of them (leaders rotate `s mod n`). This
//! campaign fuzzes exactly that scenario, which the single-group fuzzer
//! cannot express: per-iteration it spawns one [`ManualExecutor`] per
//! shard, injects shard-encoded load, interleaves deliveries across the
//! groups, crashes the leader node of a seeded shard in all groups at
//! once, keeps delivering and firing timers while it is down, restarts
//! it (state intact, as a real process restart would be), and drains.
//!
//! The oracle is per shard: each group's decide log is judged by the
//! same `twostep-verify` checkers the flat fuzzer uses — Agreement,
//! Validity (against that shard's own proposal pool) and Integrity —
//! plus an explicit cross-shard leakage check made possible by encoding
//! the owning shard into every proposed value. Everything is
//! deterministic: an iteration is fully described by `(root seed,
//! iteration index)`, which is what a failure reports.

use twostep_core::{OmegaMode, TwoStepBuilder};
use twostep_sim::ManualExecutor;
use twostep_types::{ProcessId, SystemConfig};

use crate::case::{FuzzProtocol, RunReport};
use crate::oracle::{check_safety, Verdict};
use crate::rng::SplitMix64;

/// Shard `s` proposes values in `[s * STRIDE, (s+1) * STRIDE)`, so a
/// decided value names its owning shard — the leakage oracle's handle.
pub const SHARD_STRIDE: u64 = 1_000_000;

/// Encodes `payload` as a value owned by `shard`.
pub fn shard_value(shard: usize, payload: u64) -> u64 {
    debug_assert!(payload < SHARD_STRIDE);
    shard as u64 * SHARD_STRIDE + payload
}

/// The shard a decided value belongs to, per the encoding.
pub fn shard_of_value(value: u64) -> usize {
    (value / SHARD_STRIDE) as usize
}

/// Parameters of one sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardFuzzConfig {
    /// Number of consensus groups (≥ 2 — one group is the flat fuzzer).
    pub shards: usize,
    /// Per-group system configuration (groups share nodes, so also the
    /// physical node count).
    pub cfg: SystemConfig,
    /// Root seed; iteration `i` uses stream seed `stream(seed, i)`.
    pub seed: u64,
    /// Number of iterations to run.
    pub iters: u64,
}

impl ShardFuzzConfig {
    /// A campaign over `shards` groups with the given root seed.
    ///
    /// # Panics
    ///
    /// Panics if `shards < 2`.
    pub fn new(shards: usize, cfg: SystemConfig, seed: u64, iters: u64) -> Self {
        assert!(shards >= 2, "a sharded campaign needs at least 2 shards");
        ShardFuzzConfig {
            shards,
            cfg,
            seed,
            iters,
        }
    }

    /// The node leading shard `s`: the runtime's round-robin `s mod n`.
    pub fn leader_of(&self, shard: usize) -> ProcessId {
        ProcessId::new((shard % self.cfg.n()) as u32)
    }
}

/// A violation found by a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// The iteration (0-based) that failed.
    pub iteration: u64,
    /// Its stream seed — together with the campaign parameters this
    /// replays the iteration exactly.
    pub stream_seed: u64,
    /// The shard whose oracle flagged the run.
    pub shard: u32,
    /// What was violated.
    pub verdict: Verdict,
}

/// The result of a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardFuzzOutcome {
    /// Iterations actually executed (equals `iters` on a clean run).
    pub iterations_run: u64,
    /// Decide events observed across all iterations and shards — a
    /// clean pass with zero decisions would be vacuous, so callers
    /// should insist this is positive.
    pub decisions: u64,
    /// The first violation, if any.
    pub failure: Option<ShardFailure>,
}

impl ShardFuzzOutcome {
    /// True if no violation was found.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Judges one iteration's per-shard reports: leakage first (a value
/// decided outside its owning shard), then the standard safety oracle
/// per shard.
pub fn check_sharded(reports: &[RunReport]) -> Option<(u32, Verdict)> {
    for (s, report) in reports.iter().enumerate() {
        for &(p, v) in &report.decide_log {
            if shard_of_value(v) != s {
                return Some((
                    s as u32,
                    Verdict::Agreement(format!(
                        "{p} in shard {s} decided {v}, which belongs to shard {} — \
                         cross-shard leakage",
                        shard_of_value(v)
                    )),
                ));
            }
        }
        if let Some(verdict) = check_safety(FuzzProtocol::Object, report) {
            return Some((s as u32, verdict));
        }
    }
    None
}

/// Executes one seeded iteration and reports per shard. Deterministic:
/// the same `(config, stream_seed)` always yields the same reports.
pub fn run_sharded_iteration(fc: &ShardFuzzConfig, stream_seed: u64) -> Vec<RunReport> {
    let cfg = fc.cfg;
    let n = cfg.n();
    let k = fc.shards;
    let mut rng = SplitMix64::new(stream_seed);

    // One executor per group; shard s's Ω statically trusts the node
    // the runtime's rotation assigns it (s mod n), so the crash below
    // hits a real group leader.
    let mut groups: Vec<ManualExecutor<u64, _>> = (0..k)
        .map(|s| {
            let leader = fc.leader_of(s);
            ManualExecutor::new(cfg, move |q| {
                TwoStepBuilder::new(cfg)
                    .omega(OmegaMode::Static(leader))
                    .object::<u64>(q)
            })
        })
        .collect();
    for g in &mut groups {
        g.start_all();
    }

    // Load: each shard gets 1–3 proposals of shard-encoded values from
    // seeded proposers. Concurrent proposers within a group are the
    // interesting case — the fast path must arbitrate them.
    let mut proposed: Vec<Vec<u64>> = vec![Vec::new(); k];
    for (s, pool) in proposed.iter_mut().enumerate() {
        let count = 1 + rng.below(3);
        for _ in 0..count {
            let proposer = ProcessId::new(rng.below(n as u64) as u32);
            let value = shard_value(s, 1 + rng.below(99));
            if groups[s].propose(proposer, value) {
                pool.push(value);
            }
        }
    }

    // Mid-load: interleave a seeded prefix of deliveries across groups,
    // so the crash lands while commits are in flight.
    let pre = 4 + rng.below(10);
    for _ in 0..pre {
        step_random(&mut groups, &mut rng);
    }

    // The correlated fault: the leader node of a seeded shard crashes —
    // in every group at once, because groups share physical nodes.
    let victim = fc.leader_of(rng.below(k as u64) as usize);
    for g in &mut groups {
        g.crash(victim);
    }

    // Chaos while the node is down: deliveries plus seeded timer fires
    // (retry/recovery paths) in the surviving replicas.
    let mid = 4 + rng.below(10);
    for _ in 0..mid {
        step_random(&mut groups, &mut rng);
        if rng.chance(1, 3) {
            fire_random_timer(&mut groups, &mut rng, victim);
        }
    }

    // The node restarts with its pre-crash state (a process restart,
    // not a fresh replica) and the system drains to quiescence.
    for g in &mut groups {
        g.restart(victim);
    }
    for g in &mut groups {
        drain(g);
    }

    groups
        .iter()
        .zip(&proposed)
        .map(|(g, pool)| RunReport {
            decide_log: g.decide_log().to_vec(),
            decisions: g.decisions().to_vec(),
            proposed: pool.clone(),
            alive: g.alive(),
        })
        .collect()
}

/// Delivers one seeded pending message in one seeded group (no-op if
/// that group is quiescent — mirroring `Action::DeliverIdx`).
fn step_random<P: twostep_types::protocol::Protocol<u64>>(
    groups: &mut [ManualExecutor<u64, P>],
    rng: &mut SplitMix64,
) {
    let g = &mut groups[rng.below(groups.len() as u64) as usize];
    let ids: Vec<_> = g.pending().iter().map(|m| m.id).collect();
    if !ids.is_empty() {
        g.deliver(ids[rng.below(ids.len() as u64) as usize]);
    }
}

/// Fires one seeded armed timer at one seeded surviving replica.
fn fire_random_timer<P: twostep_types::protocol::Protocol<u64>>(
    groups: &mut [ManualExecutor<u64, P>],
    rng: &mut SplitMix64,
    down: ProcessId,
) {
    let g = &mut groups[rng.below(groups.len() as u64) as usize];
    let p = ProcessId::new(rng.below(g.config().n() as u64) as u32);
    if p == down {
        return;
    }
    let timers = g.armed_timers(p);
    if !timers.is_empty() {
        g.fire_timer(p, timers[rng.below(timers.len() as u64) as usize]);
    }
}

/// Delivers every pending message, repeatedly, until the group is
/// quiescent (bounded — a protocol that floods forever is a bug this
/// would surface as non-quiescence, not a hang).
fn drain<P: twostep_types::protocol::Protocol<u64>>(g: &mut ManualExecutor<u64, P>) {
    for _ in 0..64 {
        let pending = g.pending_matching(|_| true);
        if pending.is_empty() {
            break;
        }
        for id in pending {
            g.deliver(id);
        }
    }
}

/// Runs a sharded campaign, stopping at the first violation.
pub fn fuzz_sharded(fc: &ShardFuzzConfig) -> ShardFuzzOutcome {
    let mut decisions = 0u64;
    for i in 0..fc.iters {
        let stream_seed = SplitMix64::stream(fc.seed, i);
        let reports = run_sharded_iteration(fc, stream_seed);
        decisions += reports
            .iter()
            .map(|r| r.decide_log.len() as u64)
            .sum::<u64>();
        if let Some((shard, verdict)) = check_sharded(&reports) {
            return ShardFuzzOutcome {
                iterations_run: i + 1,
                decisions,
                failure: Some(ShardFailure {
                    iteration: i,
                    stream_seed,
                    shard,
                    verdict,
                }),
            };
        }
    }
    ShardFuzzOutcome {
        iterations_run: fc.iters,
        decisions,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> SystemConfig {
        SystemConfig::minimal_object(1, 1).unwrap()
    }

    #[test]
    fn value_encoding_roundtrips() {
        for shard in 0..8 {
            let v = shard_value(shard, 42);
            assert_eq!(shard_of_value(v), shard);
        }
    }

    #[test]
    fn iterations_are_deterministic() {
        let fc = ShardFuzzConfig::new(4, minimal(), 11, 1);
        let seed = SplitMix64::stream(fc.seed, 0);
        let a = run_sharded_iteration(&fc, seed);
        let b = run_sharded_iteration(&fc, seed);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.decide_log, rb.decide_log);
            assert_eq!(ra.proposed, rb.proposed);
            assert_eq!(ra.alive, rb.alive);
        }
    }

    #[test]
    fn leaked_value_is_flagged() {
        let fc = ShardFuzzConfig::new(2, minimal(), 1, 1);
        let mut reports = run_sharded_iteration(&fc, SplitMix64::stream(1, 0));
        // Forge a decide of a shard-1 value inside shard 0.
        reports[0]
            .decide_log
            .push((ProcessId::new(0), shard_value(1, 5)));
        let (shard, verdict) = check_sharded(&reports).expect("leak must be flagged");
        assert_eq!(shard, 0);
        assert!(verdict.detail().contains("cross-shard leakage"));
    }

    #[test]
    fn small_campaign_is_clean_and_decides() {
        let fc = ShardFuzzConfig::new(3, minimal(), 5, 25);
        let out = fuzz_sharded(&fc);
        assert!(out.is_clean(), "unexpected violation: {:?}", out.failure);
        assert_eq!(out.iterations_run, 25);
        assert!(out.decisions > 0, "campaign never committed anything");
    }
}
