//! Bounded deterministic fuzz runs, wired into `cargo test`.
//!
//! Every test derives its root seed from [`seed`], which honours the
//! `TWOSTEP_SEED` environment variable and embeds the seed in every
//! assertion message, so a failure is reproducible by exporting the
//! printed seed.

use twostep_core::Ablations;
use twostep_fuzz::{fuzz, run_case, FuzzConfig, FuzzProtocol};
use twostep_types::SystemConfig;

/// The test's root seed: `TWOSTEP_SEED` if set, else `default`.
fn seed(default: u64) -> u64 {
    match std::env::var("TWOSTEP_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("TWOSTEP_SEED must be a u64, got {s:?}")),
        Err(_) => default,
    }
}

#[test]
fn every_protocol_survives_a_bounded_campaign_at_its_minimum() {
    let seed = seed(42);
    for protocol in FuzzProtocol::ALL {
        let cfg = SystemConfig::new(protocol.min_processes(1, 1), 1, 1).unwrap();
        let out = fuzz(&FuzzConfig::new(protocol, cfg, seed, 500));
        assert!(
            out.is_clean(),
            "[seed={seed}] {} violated safety: {:?}",
            protocol.name(),
            out.failure
        );
    }
}

#[test]
fn two_step_variants_survive_the_tiebreak_prone_configuration() {
    // (e, f) = (2, 2) is the first configuration where the recovery
    // rule's exact-threshold tie-break can fire at all; the correct
    // protocol must still survive the adversarially biased generator.
    let seed = seed(7);
    for (protocol, n) in [(FuzzProtocol::Task, 6), (FuzzProtocol::Object, 5)] {
        let cfg = SystemConfig::new(n, 2, 2).unwrap();
        let out = fuzz(&FuzzConfig::new(protocol, cfg, seed, 2000));
        assert!(
            out.is_clean(),
            "[seed={seed}] {} violated safety: {:?}",
            protocol.name(),
            out.failure
        );
    }
}

#[test]
fn ablated_recovery_tiebreak_is_caught_and_shrunk() {
    // The deliberately injected bug: `no_max_tiebreak` replaces the
    // recovery rule's max-value tie-break with min. It is only reachable
    // with two proposers outside the 1B quorum splitting a recovery
    // quorum at exactly the n-f-e threshold, i.e. n = 2e+f with e,f ≥ 2;
    // (2, 2) at n = 6 is minimal. Across 10 sampled seeds the generator
    // hit it within 536 iterations, so 5000 leaves a wide margin for
    // TWOSTEP_SEED overrides.
    let seed = seed(1);
    let cfg = SystemConfig::new(6, 2, 2).unwrap();
    let mut fc = FuzzConfig::new(FuzzProtocol::Task, cfg, seed, 5000);
    fc.ablations = Ablations {
        no_max_tiebreak: true,
        ..Ablations::NONE
    };
    let out = fuzz(&fc);
    let fail = out
        .failure
        .unwrap_or_else(|| panic!("[seed={seed}] ablated tie-break not caught in 5000 iters"));
    assert_eq!(
        fail.verdict.property(),
        "agreement",
        "[seed={seed}] expected an agreement violation, got {:?}",
        fail.verdict
    );

    // The counterexample was shrunk and the minimized schedule still
    // reproduces a violation when replayed from scratch.
    let shrunk = fail
        .shrunk
        .as_ref()
        .unwrap_or_else(|| panic!("[seed={seed}] no shrunk schedule"));
    assert!(
        shrunk.len() <= fail.case.schedule.len(),
        "[seed={seed}] shrinking must not grow the schedule"
    );
    let replay = fail.case.with_schedule(shrunk.actions.clone());
    let verdict = twostep_fuzz::check_safety(replay.protocol, &run_case(&replay));
    assert!(
        verdict.is_some(),
        "[seed={seed}] shrunk schedule {shrunk} does not replay to a violation"
    );

    // Shrinking is also effective: a phase-structured schedule carries
    // dozens of actions, the minimal witness needs well under half.
    assert!(
        shrunk.len() * 2 < fail.case.schedule.len(),
        "[seed={seed}] shrunk {} of {} actions — shrinker did nothing useful",
        shrunk.len(),
        fail.case.schedule.len()
    );
}

#[test]
fn ablated_proposer_exclusion_is_caught() {
    // The companion ablation: counting recovery votes over the whole 1B
    // quorum instead of R = {q ∈ Q | proposer_q ∉ Q}. Empirically caught
    // within ~2200 iterations at seed 1; bound it generously. Skip the
    // shrink-quality assertions here — one thorough shrink check above
    // keeps the suite fast.
    let seed = seed(1);
    let cfg = SystemConfig::new(6, 2, 2).unwrap();
    let mut fc = FuzzConfig::new(FuzzProtocol::Task, cfg, seed, 20000);
    fc.ablations = Ablations {
        no_proposer_exclusion: true,
        ..Ablations::NONE
    };
    fc.shrink = false;
    let out = fuzz(&fc);
    assert!(
        out.failure.is_some(),
        "[seed={seed}] ablated proposer exclusion not caught in 20000 iters"
    );
}

#[test]
fn ablated_object_guard_is_caught() {
    let seed = seed(1);
    let cfg = SystemConfig::new(5, 2, 2).unwrap();
    let mut fc = FuzzConfig::new(FuzzProtocol::Object, cfg, seed, 20000);
    fc.ablations = Ablations {
        no_object_guard: true,
        ..Ablations::NONE
    };
    fc.shrink = false;
    let out = fuzz(&fc);
    assert!(
        out.failure.is_some(),
        "[seed={seed}] ablated object guard not caught in 20000 iters"
    );
}
