//! Realistic wide-area latency presets.
//!
//! The paper's introduction motivates the lower bounds practically:
//! *"contacting an additional process may incur a cost of hundreds of
//! milliseconds per command"* in wide-area deployments. Experiment E7
//! quantifies this with a synthetic but realistic 5-region latency
//! matrix modelled on public-cloud inter-region RTTs (one virtual time
//! unit = 1 ms).
//!
//! These numbers are a *substitution* for a real geo-distributed
//! deployment (documented in `DESIGN.md`): decision latency depends only
//! on pairwise latencies and quorum geometry, both captured here.

use twostep_types::{Duration, ProcessId};

use crate::delay::WanMatrix;

/// A named deployment region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// N. Virginia.
    UsEast,
    /// Oregon.
    UsWest,
    /// Ireland.
    EuWest,
    /// Tokyo.
    ApNortheast,
    /// São Paulo.
    SaEast,
    /// Mumbai.
    ApSouth,
    /// Sydney.
    ApSoutheast,
}

impl Region {
    /// The five core regions, in canonical order.
    pub const ALL: [Region; 5] = [
        Region::UsEast,
        Region::UsWest,
        Region::EuWest,
        Region::ApNortheast,
        Region::SaEast,
    ];

    /// All seven regions — used when a protocol needs more processes
    /// than the core five regions offer and failure independence forbids
    /// co-location (experiment E7).
    pub const ALL7: [Region; 7] = [
        Region::UsEast,
        Region::UsWest,
        Region::EuWest,
        Region::ApNortheast,
        Region::SaEast,
        Region::ApSouth,
        Region::ApSoutheast,
    ];

    /// Short region label.
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast => "us-east",
            Region::UsWest => "us-west",
            Region::EuWest => "eu-west",
            Region::ApNortheast => "ap-northeast",
            Region::SaEast => "sa-east",
            Region::ApSouth => "ap-south",
            Region::ApSoutheast => "ap-southeast",
        }
    }

    fn index(self) -> usize {
        match self {
            Region::UsEast => 0,
            Region::UsWest => 1,
            Region::EuWest => 2,
            Region::ApNortheast => 3,
            Region::SaEast => 4,
            Region::ApSouth => 5,
            Region::ApSoutheast => 6,
        }
    }
}

/// One-way latency between two regions, in milliseconds (≈ half the
/// typical public-cloud RTT).
pub fn one_way_ms(a: Region, b: Region) -> u64 {
    // Symmetric matrix; diagonal ≈ intra-region.
    const MS: [[u64; 7]; 7] = [
        //          ue   uw   euw  apne  sae  aps  apse
        /* ue  */
        [1, 35, 40, 75, 60, 95, 100],
        /* uw  */ [35, 1, 70, 55, 85, 110, 70],
        /* euw */ [40, 70, 1, 110, 95, 60, 125],
        /* apne*/ [75, 55, 110, 1, 130, 65, 55],
        /* sae */ [60, 85, 95, 130, 1, 150, 160],
        /* aps */ [95, 110, 60, 65, 150, 1, 75],
        /* apse*/ [100, 70, 125, 55, 160, 75, 1],
    ];
    MS[a.index()][b.index()]
}

/// Builds a [`WanMatrix`] for `n` processes assigned to `regions`
/// round-robin (process `p_i` lives in `regions[i % regions.len()]`).
///
/// # Example
///
/// ```rust
/// use twostep_sim::wan::{wan_matrix, Region};
/// use twostep_types::ProcessId;
///
/// let m = wan_matrix(5, &Region::ALL);
/// // p0 (us-east) → p3 (ap-northeast): 75 ms one way.
/// assert_eq!(m.latency(ProcessId::new(0), ProcessId::new(3)).units(), 75);
/// ```
///
/// # Panics
///
/// Panics if `regions` is empty.
pub fn wan_matrix(n: usize, regions: &[Region]) -> WanMatrix {
    assert!(!regions.is_empty(), "at least one region required");
    let region_of = |i: usize| regions[i % regions.len()];
    let matrix = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| Duration::from_units(one_way_ms(region_of(i), region_of(j))))
                .collect()
        })
        .collect();
    WanMatrix::new(matrix)
}

/// The region hosting process `p` under the round-robin assignment used
/// by [`wan_matrix`].
pub fn region_of(p: ProcessId, regions: &[Region]) -> Region {
    regions[p.index() % regions.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        for a in Region::ALL7 {
            for b in Region::ALL7 {
                assert_eq!(one_way_ms(a, b), one_way_ms(b, a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn intra_region_is_fast() {
        for r in Region::ALL {
            assert_eq!(one_way_ms(r, r), 1);
        }
    }

    #[test]
    fn cross_region_is_hundreds_of_ms_round_trip() {
        // The paper's "hundreds of milliseconds" claim needs at least one
        // pair whose RTT exceeds 200ms.
        let worst = Region::ALL
            .iter()
            .flat_map(|&a| Region::ALL.iter().map(move |&b| 2 * one_way_ms(a, b)))
            .max()
            .unwrap();
        assert!(worst >= 200, "worst RTT {worst}ms");
    }

    #[test]
    fn round_robin_assignment() {
        let m = wan_matrix(7, &Region::ALL);
        assert_eq!(m.len(), 7);
        // p5 wraps to us-east, p6 to us-west.
        assert_eq!(region_of(ProcessId::new(5), &Region::ALL), Region::UsEast);
        assert_eq!(region_of(ProcessId::new(6), &Region::ALL), Region::UsWest);
        assert_eq!(
            m.latency(ProcessId::new(0), ProcessId::new(5)).units(),
            1,
            "p0 and p5 are co-located"
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = Region::ALL.iter().map(|r| r.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
