//! Structured execution traces.

use std::fmt::Debug;

use twostep_types::protocol::TimerId;
use twostep_types::{ProcessId, Time, Value};

/// Extracts a short message-kind label from a message's `Debug`
/// rendering (the enum variant name), used to keep traces readable and
/// non-generic over the message type.
pub fn msg_kind<M: Debug>(msg: &M) -> String {
    let full = format!("{msg:?}");
    full.split(['(', '{', ' '])
        .next()
        .unwrap_or("?")
        .to_string()
}

/// One observable event in a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent<V> {
    /// A message left a process.
    MessageSent {
        /// Virtual time of the send.
        time: Time,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Message kind label (enum variant name).
        kind: String,
    },
    /// A message was handed to its receiver.
    MessageDelivered {
        /// Virtual time of the delivery.
        time: Time,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Message kind label.
        kind: String,
    },
    /// The network dropped a message (pre-GST only).
    MessageDropped {
        /// Virtual time of the send.
        time: Time,
        /// Sender.
        from: ProcessId,
        /// Intended receiver.
        to: ProcessId,
        /// Message kind label.
        kind: String,
    },
    /// A process crashed.
    Crashed {
        /// Virtual time of the crash.
        time: Time,
        /// The crashed process.
        process: ProcessId,
    },
    /// A crashed process rejoined with its pre-crash protocol state.
    Restarted {
        /// Virtual time of the restart.
        time: Time,
        /// The restarted process.
        process: ProcessId,
    },
    /// A timer fired at a process.
    TimerFired {
        /// Virtual time of expiry.
        time: Time,
        /// The process whose timer fired.
        process: ProcessId,
        /// Which timer.
        timer: TimerId,
    },
    /// A client proposal arrived at a process.
    Proposed {
        /// Virtual time of the proposal.
        time: Time,
        /// The proposing process.
        process: ProcessId,
        /// The proposed value.
        value: V,
    },
    /// A process decided.
    Decided {
        /// Virtual time of the decision.
        time: Time,
        /// The deciding process.
        process: ProcessId,
        /// The decided value.
        value: V,
    },
}

impl<V> TraceEvent<V> {
    /// The virtual time at which the event occurred.
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::MessageSent { time, .. }
            | TraceEvent::MessageDelivered { time, .. }
            | TraceEvent::MessageDropped { time, .. }
            | TraceEvent::Crashed { time, .. }
            | TraceEvent::Restarted { time, .. }
            | TraceEvent::TimerFired { time, .. }
            | TraceEvent::Proposed { time, .. }
            | TraceEvent::Decided { time, .. } => *time,
        }
    }
}

/// A chronological record of everything that happened in a run.
///
/// The verification crate consumes traces to check Agreement, Validity,
/// Integrity and two-step-ness; the benchmark crate consumes them for
/// message counts and latency distributions.
#[derive(Debug, Clone, Default)]
pub struct Trace<V> {
    events: Vec<TraceEvent<V>>,
}

impl<V: Value> Trace<V> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends an event. Events must be pushed in nondecreasing time
    /// order; this is checked in debug builds.
    pub fn push(&mut self, event: TraceEvent<V>) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.time() <= event.time()),
            "trace events must be chronological"
        );
        self.events.push(event);
    }

    /// All events, chronologically.
    pub fn events(&self) -> &[TraceEvent<V>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All `(process, value, time)` decision events, in order.
    pub fn decisions(&self) -> Vec<(ProcessId, V, Time)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Decided {
                    time,
                    process,
                    value,
                } => Some((*process, value.clone(), *time)),
                _ => None,
            })
            .collect()
    }

    /// All `(process, value)` proposal events, in order.
    pub fn proposals(&self) -> Vec<(ProcessId, V)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Proposed { process, value, .. } => Some((*process, value.clone())),
                _ => None,
            })
            .collect()
    }

    /// The first decision of `p`, if any.
    pub fn first_decision(&self, p: ProcessId) -> Option<(V, Time)> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Decided {
                time,
                process,
                value,
            } if *process == p => Some((value.clone(), *time)),
            _ => None,
        })
    }

    /// Total number of messages sent.
    pub fn messages_sent(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MessageSent { .. }))
            .count()
    }

    /// Number of messages sent whose kind label equals `kind`.
    pub fn messages_sent_of_kind(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MessageSent { kind: k, .. } if k == kind))
            .count()
    }

    /// Total number of messages dropped.
    pub fn messages_dropped(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MessageDropped { .. }))
            .count()
    }

    /// The crash events `(process, time)`, in order.
    pub fn crashes(&self) -> Vec<(ProcessId, Time)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Crashed { time, process } => Some((*process, *time)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_types::Duration;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn msg_kind_extracts_variant_names() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum M {
            Propose(u64),
            TwoB { bal: u64, val: u64 },
            Ping,
        }
        assert_eq!(msg_kind(&M::Propose(3)), "Propose");
        assert_eq!(msg_kind(&M::TwoB { bal: 1, val: 2 }), "TwoB");
        assert_eq!(msg_kind(&M::Ping), "Ping");
    }

    #[test]
    fn trace_queries() {
        let mut t: Trace<u64> = Trace::new();
        t.push(TraceEvent::Proposed {
            time: Time::ZERO,
            process: p(0),
            value: 5,
        });
        t.push(TraceEvent::MessageSent {
            time: Time::ZERO,
            from: p(0),
            to: p(1),
            kind: "Propose".into(),
        });
        t.push(TraceEvent::Crashed {
            time: Time::ZERO,
            process: p(2),
        });
        t.push(TraceEvent::MessageDelivered {
            time: Time::ZERO + Duration::deltas(1),
            from: p(0),
            to: p(1),
            kind: "Propose".into(),
        });
        t.push(TraceEvent::Decided {
            time: Time::ZERO + Duration::deltas(2),
            process: p(0),
            value: 5,
        });

        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(
            t.decisions(),
            vec![(p(0), 5, Time::ZERO + Duration::deltas(2))]
        );
        assert_eq!(t.proposals(), vec![(p(0), 5)]);
        assert_eq!(
            t.first_decision(p(0)),
            Some((5, Time::ZERO + Duration::deltas(2)))
        );
        assert_eq!(t.first_decision(p(1)), None);
        assert_eq!(t.messages_sent(), 1);
        assert_eq!(t.messages_sent_of_kind("Propose"), 1);
        assert_eq!(t.messages_sent_of_kind("TwoB"), 0);
        assert_eq!(t.messages_dropped(), 0);
        assert_eq!(t.crashes(), vec![(p(2), Time::ZERO)]);
    }

    // The guard is a debug_assert, so the panic only exists in debug
    // builds; in release this test would fail for the wrong reason.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "chronological")]
    fn trace_rejects_time_travel_in_debug() {
        let mut t: Trace<u64> = Trace::new();
        t.push(TraceEvent::Crashed {
            time: Time::from_units(10),
            process: p(0),
        });
        t.push(TraceEvent::Crashed {
            time: Time::from_units(5),
            process: p(1),
        });
    }
}
