//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use twostep_telemetry::ObserverHandle;
use twostep_types::protocol::{Effects, Protocol, TimerId};
use twostep_types::{Duration, ProcessId, ProcessSet, SystemConfig, Time, Value};

use crate::delay::{DelayModel, LinkBehavior};
use crate::event::{EventKind, QueuedEvent};
use crate::trace::{msg_kind, Trace, TraceEvent};

/// Policy deciding the relative order of messages delivered at the same
/// virtual time.
///
/// The paper's definitions quantify existentially over runs ("there
/// exists an E-faulty synchronous run …"); delivery order is the main
/// remaining degree of freedom in a synchronous run, so experiments pick
/// the order that witnesses the claim, and stress tests randomize it.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // StdRng is big; DeliveryOrder is held once per simulation
pub enum DeliveryOrder {
    /// First-sent, first-delivered (deterministic default).
    SendOrder,
    /// Messages from the given process are delivered before any other
    /// message arriving at the same time.
    Favor(ProcessId),
    /// Uniformly random order, deterministic for the seed.
    Randomized(StdRng),
}

impl DeliveryOrder {
    /// Randomized ordering with the given seed.
    pub fn randomized(seed: u64) -> Self {
        DeliveryOrder::Randomized(StdRng::seed_from_u64(seed))
    }

    fn key(&mut self, from: ProcessId) -> u64 {
        match self {
            DeliveryOrder::SendOrder => 0,
            DeliveryOrder::Favor(p) => {
                if from == *p {
                    0
                } else {
                    1 + u64::from(from.as_u32())
                }
            }
            DeliveryOrder::Randomized(rng) => rng.gen(),
        }
    }
}

/// Builder for a [`Simulation`].
///
/// # Example
///
/// ```rust
/// use twostep_sim::{SimulationBuilder, SynchronousRounds};
/// use twostep_types::{SystemConfig, Time, Duration, ProcessId};
/// # use twostep_types::protocol::{Effects, Protocol, TimerId};
/// # #[derive(Debug, Clone)] struct Noop(ProcessId);
/// # impl Protocol<u64> for Noop {
/// #     type Message = u8;
/// #     fn id(&self) -> ProcessId { self.0 }
/// #     fn on_start(&mut self, _: &mut Effects<u64, u8>) {}
/// #     fn on_propose(&mut self, _: u64, _: &mut Effects<u64, u8>) {}
/// #     fn on_message(&mut self, _: ProcessId, _: u8, _: &mut Effects<u64, u8>) {}
/// #     fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, u8>) {}
/// #     fn decision(&self) -> Option<u64> { None }
/// # }
///
/// let cfg = SystemConfig::for_protocol(twostep_types::ProtocolKind::TaskTwoStep, 3, 1, 1)?;
/// let outcome = SimulationBuilder::new(cfg)
///     .delay_model(SynchronousRounds)
///     .crash_at(ProcessId::new(2), Time::ZERO)
///     .build(|p| Noop(p))
///     .run(Time::ZERO + Duration::deltas(10));
/// assert!(outcome.crashed.contains(ProcessId::new(2)));
/// # Ok::<(), twostep_types::ConfigError>(())
/// ```
pub struct SimulationBuilder {
    cfg: SystemConfig,
    delay_model: Box<dyn DelayModel>,
    order: DeliveryOrder,
    crashes: Vec<(ProcessId, Time)>,
    restarts: Vec<(ProcessId, Time)>,
    topology_changes: Vec<(Time, Option<Vec<ProcessSet>>)>,
    proposals_by_time: Vec<(ProcessId, u64)>, // (process, time units); values added at build
    obs: ObserverHandle,
}

impl SimulationBuilder {
    /// Starts building a simulation over `cfg`, defaulting to
    /// [`crate::SynchronousRounds`] delays and send-order delivery.
    pub fn new(cfg: SystemConfig) -> Self {
        SimulationBuilder {
            cfg,
            delay_model: Box::new(crate::SynchronousRounds),
            order: DeliveryOrder::SendOrder,
            crashes: Vec::new(),
            restarts: Vec::new(),
            topology_changes: Vec::new(),
            proposals_by_time: Vec::new(),
            obs: ObserverHandle::none(),
        }
    }

    /// Attaches telemetry hooks to the *engine*: decision latencies (in
    /// virtual time units, so `2Δ = 2000`) and partition/link message
    /// drops are reported to `obs`. Protocol-level events (paths,
    /// recovery cases, …) are reported by the protocol instances
    /// themselves — pass the same handle to their `observed` builders.
    pub fn observed(mut self, obs: ObserverHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the network delay model.
    pub fn delay_model(mut self, model: impl DelayModel + 'static) -> Self {
        self.delay_model = Box::new(model);
        self
    }

    /// Sets the same-time delivery ordering policy.
    pub fn delivery_order(mut self, order: DeliveryOrder) -> Self {
        self.order = order;
        self
    }

    /// Schedules `p` to crash at `time` (before taking any step at that
    /// time).
    pub fn crash_at(mut self, p: ProcessId, time: Time) -> Self {
        self.crashes.push((p, time));
        self
    }

    /// Schedules `p` to restart at `time` with its pre-crash protocol
    /// state intact. A restart of a process that is not crashed at
    /// `time` is a no-op.
    pub fn restart_at(mut self, p: ProcessId, time: Time) -> Self {
        self.restarts.push((p, time));
        self
    }

    /// Partitions the network into `groups` from `time` onwards:
    /// messages *sent* between different groups are dropped. Messages
    /// already in flight when the partition starts still arrive, and
    /// self-addressed messages always get through. A process appearing
    /// in no group is isolated.
    pub fn partition_at(mut self, time: Time, groups: Vec<ProcessSet>) -> Self {
        self.topology_changes.push((time, Some(groups)));
        self
    }

    /// Heals any partition from `time` onwards: the network is fully
    /// connected again for messages sent at or after `time`.
    pub fn heal_at(mut self, time: Time) -> Self {
        self.topology_changes.push((time, None));
        self
    }

    /// Finishes the builder, constructing each process with `make`.
    pub fn build<V, P, F>(self, make: F) -> Simulation<V, P>
    where
        V: Value,
        P: Protocol<V>,
        F: FnMut(ProcessId) -> P,
    {
        let _ = self.proposals_by_time;
        let mut sim = Simulation::new(self.cfg, make, self.delay_model, self.order);
        sim.observe(self.obs);
        for (p, t) in self.crashes {
            sim.schedule_crash(p, t);
        }
        for (p, t) in self.restarts {
            sim.schedule_restart(p, t);
        }
        for (t, groups) in self.topology_changes {
            match groups {
                Some(g) => sim.partition_at(t, g),
                None => sim.heal_at(t),
            }
        }
        sim
    }
}

/// A deterministic discrete-event simulation of `n` protocol instances.
pub struct Simulation<V: Value, P: Protocol<V>> {
    cfg: SystemConfig,
    procs: Vec<P>,
    alive: ProcessSet,
    now: Time,
    queue: BinaryHeap<Reverse<QueuedEvent<V, P::Message>>>,
    seq: u64,
    // Per process: armed timers, each with the generation that guards
    // against stale queued expirations and the delay it was set with
    // (needed to re-arm after a crash-restart).
    timers: Vec<HashMap<TimerId, (u64, Duration)>>,
    timer_generation: u64,
    // Network topology changes, sorted by time: `Some(groups)` installs
    // a partition, `None` heals it. The last entry at or before `now`
    // governs which sends get through.
    topology_changes: Vec<(Time, Option<Vec<ProcessSet>>)>,
    delay_model: Box<dyn DelayModel>,
    order: DeliveryOrder,
    trace: Trace<V>,
    decisions: Vec<Option<(V, Time)>>,
    events_executed: u64,
    obs: ObserverHandle,
}

impl<V: Value, P: Protocol<V>> Simulation<V, P> {
    /// Creates a simulation; every process's `on_start` is scheduled at
    /// time 0.
    pub fn new<F>(
        cfg: SystemConfig,
        mut make: F,
        delay_model: Box<dyn DelayModel>,
        order: DeliveryOrder,
    ) -> Self
    where
        F: FnMut(ProcessId) -> P,
    {
        let n = cfg.n();
        let procs: Vec<P> = (0..n as u32).map(|i| make(ProcessId::new(i))).collect();
        let mut sim = Simulation {
            cfg,
            procs,
            alive: ProcessSet::full(n),
            now: Time::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            timers: vec![HashMap::new(); n],
            timer_generation: 0,
            topology_changes: Vec::new(),
            delay_model,
            order,
            trace: Trace::new(),
            decisions: vec![None; n],
            events_executed: 0,
            obs: ObserverHandle::none(),
        };
        for i in 0..n as u32 {
            let p = ProcessId::new(i);
            sim.enqueue(Time::ZERO, 0, EventKind::Start(p));
        }
        sim
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Attaches telemetry hooks; see [`SimulationBuilder::observed`].
    pub fn observe(&mut self, obs: ObserverHandle) {
        self.obs = obs;
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Processes still alive.
    pub fn alive(&self) -> ProcessSet {
        self.alive
    }

    /// Read access to a protocol instance (e.g. for assertions).
    pub fn process(&self, p: ProcessId) -> &P {
        &self.procs[p.index()]
    }

    /// The decisions made so far: `decision[i]` is `Some((v, t))` once
    /// `p_i` first decided `v` at time `t`.
    pub fn decisions(&self) -> &[Option<(V, Time)>] {
        &self.decisions
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<V> {
        &self.trace
    }

    /// Schedules `p` to crash at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_crash(&mut self, p: ProcessId, time: Time) {
        assert!(time >= self.now, "cannot schedule a crash in the past");
        self.enqueue(time, 0, EventKind::Crash(p));
    }

    /// Schedules `p` to restart at `time`. The process rejoins with the
    /// protocol state it had when it crashed; timers that were armed at
    /// the crash are re-armed with their full original delay measured
    /// from the restart. Restarting a process that is alive at `time`
    /// is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_restart(&mut self, p: ProcessId, time: Time) {
        assert!(time >= self.now, "cannot schedule a restart in the past");
        self.enqueue(time, 0, EventKind::Restart(p));
    }

    /// Schedules a client proposal of `value` at process `p` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_propose(&mut self, p: ProcessId, value: V, time: Time) {
        assert!(time >= self.now, "cannot schedule a proposal in the past");
        self.enqueue(time, 0, EventKind::Propose(p, value));
    }

    /// Partitions the network into `groups` for messages sent at or
    /// after `time`: a message whose sender and receiver share no group
    /// is dropped at send time (traced as [`TraceEvent::MessageDropped`]).
    /// Messages already in flight are unaffected, and self-addressed
    /// messages always get through. A process in no group is isolated.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn partition_at(&mut self, time: Time, groups: Vec<ProcessSet>) {
        assert!(time >= self.now, "cannot schedule a partition in the past");
        self.push_topology_change(time, Some(groups));
    }

    /// Removes any partition for messages sent at or after `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn heal_at(&mut self, time: Time) {
        assert!(time >= self.now, "cannot schedule a heal in the past");
        self.push_topology_change(time, None);
    }

    fn push_topology_change(&mut self, time: Time, groups: Option<Vec<ProcessSet>>) {
        // Keep the schedule sorted; later insertions at the same time
        // win (partition_point lands after equal-time entries).
        let idx = self.topology_changes.partition_point(|(t, _)| *t <= time);
        self.topology_changes.insert(idx, (time, groups));
    }

    /// Whether a message sent now from `from` to `to` crosses a
    /// partition cut.
    fn connected(&self, from: ProcessId, to: ProcessId) -> bool {
        match self
            .topology_changes
            .iter()
            .rev()
            .find(|(t, _)| *t <= self.now)
        {
            None | Some((_, None)) => true,
            Some((_, Some(groups))) => {
                from == to || groups.iter().any(|g| g.contains(from) && g.contains(to))
            }
        }
    }

    fn enqueue(&mut self, time: Time, order_key: u64, kind: EventKind<V, P::Message>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            order_key,
            seq,
            kind,
        }));
    }

    /// Executes the next event, if any; returns whether one was executed.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "event queue went backwards");
        self.now = event.time;
        self.events_executed += 1;
        match event.kind {
            EventKind::Crash(p) => {
                if self.alive.remove(p) {
                    self.trace.push(TraceEvent::Crashed {
                        time: self.now,
                        process: p,
                    });
                }
            }
            EventKind::Restart(p) => {
                if self.alive.insert(p) {
                    self.trace.push(TraceEvent::Restarted {
                        time: self.now,
                        process: p,
                    });
                    // Timers armed at crash time re-arm with their full
                    // original delay from now. Expirations consumed while
                    // the process was down kept their map entry, so
                    // re-enqueueing under the same generation either
                    // fires exactly once or is superseded by the
                    // original event if that has not popped yet.
                    let rearm: Vec<(TimerId, u64, Duration)> = self.timers[p.index()]
                        .iter()
                        .map(|(&timer, &(generation, delay))| (timer, generation, delay))
                        .collect();
                    for (timer, generation, delay) in rearm {
                        self.enqueue(
                            self.now + delay,
                            0,
                            EventKind::Timer {
                                at: p,
                                timer,
                                generation,
                            },
                        );
                    }
                }
            }
            EventKind::Start(p) => {
                if self.alive.contains(p) {
                    let mut eff = Effects::new();
                    self.procs[p.index()].on_start(&mut eff);
                    self.apply_effects(p, eff);
                }
            }
            EventKind::Propose(p, v) => {
                if self.alive.contains(p) {
                    self.trace.push(TraceEvent::Proposed {
                        time: self.now,
                        process: p,
                        value: v.clone(),
                    });
                    let mut eff = Effects::new();
                    self.procs[p.index()].on_propose(v, &mut eff);
                    self.apply_effects(p, eff);
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if self.alive.contains(to) {
                    self.trace.push(TraceEvent::MessageDelivered {
                        time: self.now,
                        from,
                        to,
                        kind: msg_kind(&msg),
                    });
                    let mut eff = Effects::new();
                    self.procs[to.index()].on_message(from, msg, &mut eff);
                    self.apply_effects(to, eff);
                }
            }
            EventKind::Timer {
                at,
                timer,
                generation,
            } => {
                let armed =
                    self.timers[at.index()].get(&timer).map(|&(g, _)| g) == Some(generation);
                if armed && self.alive.contains(at) {
                    self.timers[at.index()].remove(&timer);
                    self.trace.push(TraceEvent::TimerFired {
                        time: self.now,
                        process: at,
                        timer,
                    });
                    let mut eff = Effects::new();
                    self.procs[at.index()].on_timer(timer, &mut eff);
                    self.apply_effects(at, eff);
                }
            }
        }
        true
    }

    fn apply_effects(&mut self, p: ProcessId, eff: Effects<V, P::Message>) {
        for v in eff.decisions {
            self.trace.push(TraceEvent::Decided {
                time: self.now,
                process: p,
                value: v.clone(),
            });
            if self.decisions[p.index()].is_none() {
                // Latency in virtual time units since time 0 (2Δ = 2000).
                self.obs.decision_latency(p, self.now.units());
                self.decisions[p.index()] = Some((v, self.now));
            }
        }
        for (to, msg) in eff.sends {
            self.trace.push(TraceEvent::MessageSent {
                time: self.now,
                from: p,
                to,
                kind: msg_kind(&msg),
            });
            // A partition cut drops the message before the delay model
            // even sees it: the link is down, not slow.
            if !self.connected(p, to) {
                self.obs.message_dropped(p, to);
                self.trace.push(TraceEvent::MessageDropped {
                    time: self.now,
                    from: p,
                    to,
                    kind: msg_kind(&msg),
                });
                continue;
            }
            // Self-addressed messages go through the delay model like any
            // other message: in the paper's round model a process's
            // message to itself arrives next round, and the existential
            // two-step runs of e.g. Fast Paxos rely on self-deliveries
            // being ordered alongside peers' messages.
            match self.delay_model.delay(p, to, self.now) {
                LinkBehavior::Drop => {
                    self.obs.message_dropped(p, to);
                    self.trace.push(TraceEvent::MessageDropped {
                        time: self.now,
                        from: p,
                        to,
                        kind: msg_kind(&msg),
                    });
                }
                LinkBehavior::Deliver(d) => {
                    let key = self.order.key(p);
                    self.enqueue(self.now + d, key, EventKind::Deliver { from: p, to, msg });
                }
            }
        }
        for (timer, delay) in eff.timer_sets {
            self.timer_generation += 1;
            let generation = self.timer_generation;
            self.timers[p.index()].insert(timer, (generation, delay));
            self.enqueue(
                self.now + delay,
                0,
                EventKind::Timer {
                    at: p,
                    timer,
                    generation,
                },
            );
        }
        for timer in eff.timer_cancels {
            self.timers[p.index()].remove(&timer);
        }
    }

    /// Runs until the queue is exhausted or virtual time would exceed
    /// `limit`, then returns the outcome.
    pub fn run(self, limit: Time) -> RunOutcome<V, P> {
        self.run_until(limit, |_| false)
    }

    /// Runs until the queue is exhausted, virtual time would exceed
    /// `limit`, or `stop` returns true (checked after each event).
    pub fn run_until<F>(mut self, limit: Time, mut stop: F) -> RunOutcome<V, P>
    where
        F: FnMut(&Self) -> bool,
    {
        loop {
            match self.queue.peek() {
                None => break,
                Some(Reverse(e)) if e.time > limit => break,
                Some(_) => {}
            }
            self.step();
            if stop(&self) {
                break;
            }
        }
        self.finish()
    }

    /// Runs until every live process has decided (or `limit`/quiescence).
    pub fn run_until_all_decided(self, limit: Time) -> RunOutcome<V, P> {
        self.run_until(limit, |sim| {
            sim.alive.iter().all(|p| sim.decisions[p.index()].is_some())
        })
    }

    fn finish(self) -> RunOutcome<V, P> {
        RunOutcome {
            cfg: self.cfg,
            decisions: self.decisions,
            crashed: self.alive.complement(self.cfg.n()),
            trace: self.trace,
            end_time: self.now,
            events_executed: self.events_executed,
            procs: self.procs,
        }
    }
}

/// The result of a completed simulation run.
#[derive(Debug)]
pub struct RunOutcome<V: Value, P> {
    /// The configuration that was simulated.
    pub cfg: SystemConfig,
    /// `decisions[i]` is `Some((v, t))` if `p_i` first decided `v` at `t`.
    pub decisions: Vec<Option<(V, Time)>>,
    /// Processes that crashed during the run.
    pub crashed: ProcessSet,
    /// Full event trace.
    pub trace: Trace<V>,
    /// Virtual time when the run stopped.
    pub end_time: Time,
    /// Number of events executed.
    pub events_executed: u64,
    /// The final protocol states (for white-box assertions).
    pub procs: Vec<P>,
}

impl<V: Value, P> RunOutcome<V, P> {
    /// The decision of `p`, if it decided.
    pub fn decision_of(&self, p: ProcessId) -> Option<&V> {
        self.decisions[p.index()].as_ref().map(|(v, _)| v)
    }

    /// The time at which `p` first decided.
    pub fn decision_time_of(&self, p: ProcessId) -> Option<Time> {
        self.decisions[p.index()].as_ref().map(|(_, t)| *t)
    }

    /// All distinct decided values.
    pub fn decided_values(&self) -> Vec<&V> {
        let mut vals: Vec<&V> = self.decisions.iter().flatten().map(|(v, _)| v).collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Whether Agreement holds over first decisions: at most one distinct
    /// decided value. (The verification crate additionally checks *every*
    /// decide event in the trace.)
    pub fn agreement(&self) -> bool {
        self.decided_values().len() <= 1
    }

    /// Whether every process outside `crashed` decided.
    pub fn all_correct_decided(&self) -> bool {
        self.crashed
            .complement(self.cfg.n())
            .iter()
            .all(|p| self.decisions[p.index()].is_some())
    }

    /// Processes whose run was *two-step* (Definition 3: decided by `2Δ`),
    /// with the single decided value among them if any.
    pub fn fast_deciders(&self) -> (ProcessSet, Option<V>)
    where
        V: Clone,
    {
        let deadline = Time::ZERO + Duration::deltas(2);
        let mut set = ProcessSet::new();
        let mut value = None;
        for (i, d) in self.decisions.iter().enumerate() {
            if let Some((v, t)) = d {
                if *t <= deadline {
                    set.insert(ProcessId::new(i as u32));
                    value.get_or_insert_with(|| v.clone());
                }
            }
        }
        (set, value)
    }

    /// Latency (time from 0) of `p`'s decision, in `Δ` units.
    pub fn latency_in_deltas(&self, p: ProcessId) -> Option<f64> {
        self.decision_time_of(p).map(|t| t.as_deltas())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    /// A trivial flooding protocol used to exercise the engine: every
    /// process broadcasts its value at start and decides the max of all
    /// values seen once it has heard from everyone alive... simplified:
    /// decides its own value on a timer.
    #[derive(Debug, Clone)]
    struct Flood {
        me: ProcessId,
        n: usize,
        value: u64,
        best: u64,
        heard: ProcessSet,
        decided: Option<u64>,
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Share(u64);

    const DECIDE_TIMER: TimerId = TimerId(10);

    impl Protocol<u64> for Flood {
        type Message = Share;

        fn id(&self) -> ProcessId {
            self.me
        }

        fn on_start(&mut self, eff: &mut Effects<u64, Share>) {
            self.best = self.value;
            self.heard.insert(self.me);
            eff.broadcast_others(Share(self.value), self.n, self.me);
            eff.set_timer(DECIDE_TIMER, Duration::deltas(2));
        }

        fn on_propose(&mut self, _value: u64, _eff: &mut Effects<u64, Share>) {}

        fn on_message(&mut self, from: ProcessId, msg: Share, eff: &mut Effects<u64, Share>) {
            self.heard.insert(from);
            self.best = self.best.max(msg.0);
            if self.heard.len() == self.n && self.decided.is_none() {
                self.decided = Some(self.best);
                eff.decide(self.best);
            }
        }

        fn on_timer(&mut self, timer: TimerId, eff: &mut Effects<u64, Share>) {
            if timer == DECIDE_TIMER && self.decided.is_none() {
                self.decided = Some(self.best);
                eff.decide(self.best);
            }
        }

        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    fn flood(cfg: SystemConfig) -> impl FnMut(ProcessId) -> Flood {
        move |p| Flood {
            me: p,
            n: cfg.n(),
            value: 10 * (u64::from(p.as_u32()) + 1),
            best: 0,
            heard: ProcessSet::new(),
            decided: None,
        }
    }

    fn cfg3() -> SystemConfig {
        SystemConfig::new(3, 1, 1).unwrap()
    }

    #[test]
    fn all_correct_flood_decides_max_in_one_round() {
        let cfg = cfg3();
        let outcome = SimulationBuilder::new(cfg)
            .build(flood(cfg))
            .run(Time::ZERO + Duration::deltas(5));
        assert!(outcome.all_correct_decided());
        assert!(outcome.agreement());
        assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&30));
        // Shares sent at t=0 arrive at Δ; everyone decides at Δ.
        assert_eq!(
            outcome.decision_time_of(ProcessId::new(1)),
            Some(Time::ZERO + Duration::deltas(1))
        );
        let (fast, v) = outcome.fast_deciders();
        assert_eq!(fast.len(), 3);
        assert_eq!(v, Some(30));
    }

    #[test]
    fn crashed_process_takes_no_steps() {
        let cfg = cfg3();
        let p2 = ProcessId::new(2);
        let outcome = SimulationBuilder::new(cfg)
            .crash_at(p2, Time::ZERO)
            .build(flood(cfg))
            .run(Time::ZERO + Duration::deltas(5));
        // p2 crashed before start: its Share was never sent; the others
        // fall back to the 2Δ timer and decide max(10, 20) = 20.
        assert_eq!(outcome.decision_of(p2), None);
        assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&20));
        assert_eq!(outcome.decision_of(ProcessId::new(1)), Some(&20));
        assert!(outcome.crashed.contains(p2));
        assert_eq!(outcome.trace.crashes().len(), 1);
        // p2 sent nothing.
        assert_eq!(outcome.trace.messages_sent(), 4); // 2 procs × 2 peers
    }

    #[test]
    fn late_crash_after_send_still_delivers() {
        let cfg = cfg3();
        let p2 = ProcessId::new(2);
        let mid_round = Time::from_units(1);
        let outcome = SimulationBuilder::new(cfg)
            .crash_at(p2, mid_round)
            .build(flood(cfg))
            .run(Time::ZERO + Duration::deltas(5));
        // p2 started (t=0) and sent Share(30) before crashing at t=1:
        // messages already in flight are delivered.
        assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&30));
        assert_eq!(outcome.decision_of(p2), None);
    }

    #[test]
    fn partition_drops_cross_group_sends() {
        let cfg = cfg3();
        let majority: ProcessSet = [ProcessId::new(0), ProcessId::new(1)].into_iter().collect();
        let minority: ProcessSet = [ProcessId::new(2)].into_iter().collect();
        let outcome = SimulationBuilder::new(cfg)
            .partition_at(Time::ZERO, vec![majority, minority])
            .build(flood(cfg))
            .run(Time::ZERO + Duration::deltas(5));
        // The four cross-cut shares (p0↔p2, p1↔p2) are dropped; everyone
        // falls back to the 2Δ timer and decides the best value heard on
        // their own side of the cut.
        assert_eq!(outcome.trace.messages_dropped(), 4);
        assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&20));
        assert_eq!(outcome.decision_of(ProcessId::new(1)), Some(&20));
        assert_eq!(outcome.decision_of(ProcessId::new(2)), Some(&30));
        assert!(!outcome.agreement(), "a split brain diverges under Flood");
    }

    #[test]
    fn heal_restores_connectivity_for_later_sends() {
        // p0 sends to p2 at start (cut) and retries on a 3Δ timer
        // (after the heal at 2Δ): the retry must get through.
        #[derive(Debug)]
        struct Retry {
            me: ProcessId,
            decided: Option<u64>,
        }
        impl Protocol<u64> for Retry {
            type Message = Share;
            fn id(&self) -> ProcessId {
                self.me
            }
            fn on_start(&mut self, eff: &mut Effects<u64, Share>) {
                if self.me == ProcessId::new(0) {
                    eff.send(ProcessId::new(2), Share(7));
                    eff.set_timer(TimerId(0), Duration::deltas(3));
                }
            }
            fn on_propose(&mut self, _: u64, _: &mut Effects<u64, Share>) {}
            fn on_message(&mut self, _: ProcessId, m: Share, eff: &mut Effects<u64, Share>) {
                if self.decided.is_none() {
                    self.decided = Some(m.0);
                    eff.decide(m.0);
                }
            }
            fn on_timer(&mut self, _: TimerId, eff: &mut Effects<u64, Share>) {
                eff.send(ProcessId::new(2), Share(7));
            }
            fn decision(&self) -> Option<u64> {
                self.decided
            }
        }

        let cfg = cfg3();
        let majority: ProcessSet = [ProcessId::new(0), ProcessId::new(1)].into_iter().collect();
        let minority: ProcessSet = [ProcessId::new(2)].into_iter().collect();
        let outcome = SimulationBuilder::new(cfg)
            .partition_at(Time::ZERO, vec![majority, minority])
            .heal_at(Time::ZERO + Duration::deltas(2))
            .build(|p| Retry {
                me: p,
                decided: None,
            })
            .run(Time::ZERO + Duration::deltas(8));
        assert_eq!(
            outcome.trace.messages_dropped(),
            1,
            "only the pre-heal send is cut"
        );
        // Retry sent at 3Δ lands on the next round boundary, 4Δ.
        assert_eq!(outcome.decision_of(ProcessId::new(2)), Some(&7));
        assert_eq!(
            outcome.decision_time_of(ProcessId::new(2)),
            Some(Time::ZERO + Duration::deltas(4))
        );
    }

    #[test]
    fn restart_rejoins_and_rearms_timers() {
        let cfg = cfg3();
        let p2 = ProcessId::new(2);
        let outcome = SimulationBuilder::new(cfg)
            .crash_at(p2, Time::from_units(1))
            .restart_at(p2, Time::ZERO + Duration::deltas(3))
            .build(flood(cfg))
            .run(Time::ZERO + Duration::deltas(8));
        // p2 started and broadcast Share(30) before crashing at t=1, so
        // p0/p1 decide 30 when all shares arrive at Δ.
        assert_eq!(outcome.decision_of(ProcessId::new(0)), Some(&30));
        // The shares addressed to p2 arrived at Δ while it was down and
        // were lost; its 2Δ decide timer expired unnoticed at 2Δ. After
        // the restart at 3Δ the timer re-arms with its full 2Δ delay and
        // fires at 5Δ, deciding p2's own best value.
        assert_eq!(outcome.decision_of(p2), Some(&30));
        assert_eq!(
            outcome.decision_time_of(p2),
            Some(Time::ZERO + Duration::deltas(5))
        );
        assert!(outcome.agreement());
        // A restarted process is not counted as crashed at the end.
        assert!(outcome.crashed.is_empty());
        assert!(outcome
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Restarted { process, .. } if *process == p2)));
    }

    #[test]
    fn restart_of_alive_process_is_noop() {
        let cfg = cfg3();
        let outcome = SimulationBuilder::new(cfg)
            .restart_at(ProcessId::new(1), Time::from_units(1))
            .build(flood(cfg))
            .run(Time::ZERO + Duration::deltas(5));
        assert!(outcome
            .trace
            .events()
            .iter()
            .all(|e| !matches!(e, TraceEvent::Restarted { .. })));
        assert!(outcome.agreement());
    }

    #[test]
    fn timer_reset_supersedes_old_deadline() {
        // A protocol that re-arms its timer at startup; the timer must
        // fire only at the final deadline.
        #[derive(Debug)]
        struct Resetter2 {
            me: ProcessId,
            decided: Option<u64>,
        }
        impl Protocol<u64> for Resetter2 {
            type Message = Share;
            fn id(&self) -> ProcessId {
                self.me
            }
            fn on_start(&mut self, eff: &mut Effects<u64, Share>) {
                eff.set_timer(TimerId(0), Duration::deltas(1));
                eff.set_timer(TimerId(0), Duration::deltas(3));
            }
            fn on_propose(&mut self, _: u64, _: &mut Effects<u64, Share>) {}
            fn on_message(&mut self, _: ProcessId, _: Share, _: &mut Effects<u64, Share>) {}
            fn on_timer(&mut self, _: TimerId, eff: &mut Effects<u64, Share>) {
                self.decided = Some(1);
                eff.decide(1);
            }
            fn decision(&self) -> Option<u64> {
                self.decided
            }
        }

        let cfg = cfg3();
        let outcome = SimulationBuilder::new(cfg)
            .build(|p| Resetter2 {
                me: p,
                decided: None,
            })
            .run(Time::ZERO + Duration::deltas(10));
        // One firing per process, at 3Δ (the reset deadline), not 1Δ.
        for i in 0..3 {
            assert_eq!(
                outcome.decision_time_of(ProcessId::new(i)),
                Some(Time::ZERO + Duration::deltas(3))
            );
        }
        let firings = outcome
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::TimerFired { .. }))
            .count();
        assert_eq!(firings, 3);
    }

    #[test]
    fn favored_delivery_order_comes_first() {
        // Two processes send to p2 at the same time; Favor(p1) must make
        // p1's message arrive first even though p0 sent first.
        #[derive(Debug)]
        struct FirstWins {
            me: ProcessId,
            n: usize,
            first: Option<u64>,
        }
        impl Protocol<u64> for FirstWins {
            type Message = Share;
            fn id(&self) -> ProcessId {
                self.me
            }
            fn on_start(&mut self, eff: &mut Effects<u64, Share>) {
                if self.me != ProcessId::new(2) {
                    eff.broadcast_others(Share(u64::from(self.me.as_u32())), self.n, self.me);
                }
            }
            fn on_propose(&mut self, _: u64, _: &mut Effects<u64, Share>) {}
            fn on_message(&mut self, _: ProcessId, m: Share, eff: &mut Effects<u64, Share>) {
                if self.me == ProcessId::new(2) && self.first.is_none() {
                    self.first = Some(m.0);
                    eff.decide(m.0);
                }
            }
            fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, Share>) {}
            fn decision(&self) -> Option<u64> {
                self.first
            }
        }
        let cfg = cfg3();
        let outcome = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::Favor(ProcessId::new(1)))
            .build(|p| FirstWins {
                me: p,
                n: 3,
                first: None,
            })
            .run(Time::ZERO + Duration::deltas(3));
        assert_eq!(outcome.decision_of(ProcessId::new(2)), Some(&1));

        let outcome = SimulationBuilder::new(cfg)
            .delivery_order(DeliveryOrder::SendOrder)
            .build(|p| FirstWins {
                me: p,
                n: 3,
                first: None,
            })
            .run(Time::ZERO + Duration::deltas(3));
        assert_eq!(outcome.decision_of(ProcessId::new(2)), Some(&0));
    }

    #[test]
    fn randomized_order_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = cfg3();
            let outcome = SimulationBuilder::new(cfg)
                .delivery_order(DeliveryOrder::randomized(seed))
                .build(flood(cfg))
                .run(Time::ZERO + Duration::deltas(5));
            outcome.events_executed
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn scheduled_proposal_reaches_protocol() {
        #[derive(Debug)]
        struct Echo {
            me: ProcessId,
            got: Option<u64>,
        }
        impl Protocol<u64> for Echo {
            type Message = Share;
            fn id(&self) -> ProcessId {
                self.me
            }
            fn on_start(&mut self, _: &mut Effects<u64, Share>) {}
            fn on_propose(&mut self, v: u64, eff: &mut Effects<u64, Share>) {
                self.got = Some(v);
                eff.decide(v);
            }
            fn on_message(&mut self, _: ProcessId, _: Share, _: &mut Effects<u64, Share>) {}
            fn on_timer(&mut self, _: TimerId, _: &mut Effects<u64, Share>) {}
            fn decision(&self) -> Option<u64> {
                self.got
            }
        }
        let cfg = cfg3();
        let mut sim = SimulationBuilder::new(cfg).build(|p| Echo { me: p, got: None });
        sim.schedule_propose(ProcessId::new(1), 77, Time::ZERO + Duration::deltas(1));
        let outcome = sim.run(Time::ZERO + Duration::deltas(2));
        assert_eq!(outcome.decision_of(ProcessId::new(1)), Some(&77));
        assert_eq!(outcome.trace.proposals(), vec![(ProcessId::new(1), 77)]);
    }

    #[test]
    fn run_until_stops_early() {
        let cfg = cfg3();
        let outcome = SimulationBuilder::new(cfg)
            .build(flood(cfg))
            .run_until(Time::ZERO + Duration::deltas(50), |sim| {
                sim.decisions().iter().any(|d| d.is_some())
            });
        // Stopped as soon as the first decision landed.
        assert!(outcome.decisions.iter().any(|d| d.is_some()));
        assert!(outcome.end_time <= Time::ZERO + Duration::deltas(1));
    }

    #[test]
    fn time_limit_respected() {
        let cfg = cfg3();
        let outcome = SimulationBuilder::new(cfg)
            .build(flood(cfg))
            .run(Time::from_units(1)); // before the Δ deliveries
        assert!(outcome.decisions.iter().all(|d| d.is_none()));
        assert!(outcome.end_time <= Time::from_units(1));
    }
}
